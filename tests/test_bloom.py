"""Tests for the Bloom filter (DDFS summary vector)."""

import pytest

from repro.baselines import BloomFilter, bloom_false_positive_rate, optimal_hash_count
from tests.conftest import make_fps


class TestMath:
    def test_empty_filter_never_false_positive(self):
        assert bloom_false_positive_rate(1024, 0, 4) == 0.0

    def test_paper_2_percent_at_mn8(self):
        # Section 6.1.3: m/n = 8, optimal k -> ~2 % false positives.
        n = 1_000_000
        m = 8 * n
        k = optimal_hash_count(m, n)
        rate = bloom_false_positive_rate(m, n, k)
        assert 0.015 < rate < 0.03

    def test_paper_14_6_percent_at_mn4(self):
        # Doubling stored data on the same filter: m/n = 4 -> ~14.6 %.
        n = 1_000_000
        m = 4 * n
        k = optimal_hash_count(m, n)
        rate = bloom_false_positive_rate(m, n, k)
        assert 0.12 < rate < 0.18

    def test_rate_monotone_in_load(self):
        rates = [bloom_false_positive_rate(1 << 20, n, 4) for n in (1000, 10_000, 100_000)]
        assert rates == sorted(rates)

    def test_optimal_k_formula(self):
        assert optimal_hash_count(8_000_000, 1_000_000) == round(8 * 0.6931)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bloom_false_positive_rate(0, 10, 4)
        with pytest.raises(ValueError):
            bloom_false_positive_rate(100, -1, 4)
        with pytest.raises(ValueError):
            optimal_hash_count(0, 10)


class TestFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1 << 16, k_hashes=4)
        fps = make_fps(2000)
        bloom.add_many(fps)
        assert all(fp in bloom for fp in fps)

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(1 << 16, k_hashes=4)
        assert not any(fp in bloom for fp in make_fps(100))

    def test_false_positive_rate_near_theory(self):
        bloom = BloomFilter(1 << 16, k_hashes=4)
        bloom.add_many(make_fps(8192))  # m/n = 8
        probes = make_fps(5000, start=100_000)
        measured = sum(1 for fp in probes if fp in bloom) / len(probes)
        expected = bloom.expected_false_positive_rate
        assert measured == pytest.approx(expected, abs=0.02)

    def test_load_ratio(self):
        bloom = BloomFilter(1024, k_hashes=2)
        assert bloom.load_ratio == float("inf")
        bloom.add_many(make_fps(128))
        assert bloom.load_ratio == pytest.approx(8.0)

    def test_fill_fraction_grows(self):
        bloom = BloomFilter(1 << 12, k_hashes=2)
        assert bloom.fill_fraction == 0.0
        bloom.add_many(make_fps(100))
        assert 0 < bloom.fill_fraction < 0.2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(1)
        with pytest.raises(ValueError):
            BloomFilter(1024, k_hashes=0)
        with pytest.raises(ValueError):
            # 8 hashes x 30 index bits > 160 fingerprint bits
            BloomFilter(1 << 30, k_hashes=8)

    def test_distinct_hash_slices(self):
        # The k bit positions of one fingerprint should rarely collide.
        bloom = BloomFilter(1 << 20, k_hashes=4)
        fp = make_fps(1)[0]
        positions = list(bloom._positions(fp))
        assert len(set(positions)) == 4
