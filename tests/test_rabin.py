"""Tests for the Rabin rolling fingerprint and its vectorised twin."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.rabin import (
    RABIN_DEGREE,
    RABIN_POLY,
    RABIN_WINDOW_SIZE,
    RabinFingerprint,
    _poly_mod,
    window_fingerprints,
)


class TestPolyMod:
    def test_small_values_unchanged(self):
        assert _poly_mod(0) == 0
        assert _poly_mod(1) == 1
        assert _poly_mod((1 << RABIN_DEGREE) - 1) == (1 << RABIN_DEGREE) - 1

    def test_modulus_reduces_to_zero(self):
        assert _poly_mod(RABIN_POLY) == 0

    def test_result_degree_below_modulus(self):
        for shift in (53, 60, 100, 200):
            assert _poly_mod(1 << shift).bit_length() <= RABIN_DEGREE

    def test_linearity(self):
        a, b = 0x123456789ABCDEF, 0xFEDCBA987654321
        assert _poly_mod(a ^ b) == _poly_mod(a) ^ _poly_mod(b)


class TestRollingFingerprint:
    def test_value_depends_only_on_window(self):
        """After priming, the fingerprint of the last 48 bytes is the same
        regardless of what came before them — the rolling property."""
        rng = np.random.default_rng(1)
        window = rng.integers(0, 256, RABIN_WINDOW_SIZE, dtype=np.uint8).tobytes()
        prefix_a = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        prefix_b = rng.integers(0, 256, 17, dtype=np.uint8).tobytes()
        ra, rb = RabinFingerprint(), RabinFingerprint()
        ra.update(prefix_a + window)
        rb.update(prefix_b + window)
        assert ra.value == rb.value

    def test_primed_flag(self):
        r = RabinFingerprint()
        r.update(b"x" * (RABIN_WINDOW_SIZE - 1))
        assert not r.primed
        r.roll(ord("x"))
        assert r.primed

    def test_reset(self):
        r = RabinFingerprint()
        r.update(b"hello world" * 10)
        r.reset()
        assert r.value == 0
        assert not r.primed

    def test_distinct_windows_distinct_values(self):
        ra, rb = RabinFingerprint(), RabinFingerprint()
        ra.update(b"a" * RABIN_WINDOW_SIZE)
        rb.update(b"b" * RABIN_WINDOW_SIZE)
        assert ra.value != rb.value

    def test_value_below_degree(self):
        r = RabinFingerprint()
        r.update(bytes(range(256)))
        assert r.value.bit_length() <= RABIN_DEGREE

    def test_unsupported_window_size(self):
        with pytest.raises(ValueError):
            RabinFingerprint(window_size=32)


class TestVectorisedAgreement:
    def _reference(self, data):
        """Window fingerprints via the incremental roller."""
        r = RabinFingerprint()
        out = []
        for i, b in enumerate(data):
            value = r.roll(b)
            if i >= RABIN_WINDOW_SIZE - 1:
                out.append(value)
        return out

    def test_agrees_on_random_data(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
        fast = window_fingerprints(data)
        assert list(map(int, fast)) == self._reference(data)

    def test_agrees_on_repetitive_data(self):
        data = b"abcabc" * 50
        assert list(map(int, window_fingerprints(data))) == self._reference(data)

    def test_short_input_empty(self):
        assert len(window_fingerprints(b"short")) == 0
        assert len(window_fingerprints(b"")) == 0

    def test_exact_window_one_value(self):
        data = bytes(range(RABIN_WINDOW_SIZE))
        out = window_fingerprints(data)
        assert len(out) == 1
        assert int(out[0]) == self._reference(data)[0]

    def test_output_buffer_reuse(self):
        data = bytes(range(100))
        buf = np.zeros(200, dtype=np.uint64)
        out = window_fingerprints(data, out=buf)
        assert len(out) == 100 - RABIN_WINDOW_SIZE + 1
        np.testing.assert_array_equal(out, window_fingerprints(data))

    def test_output_buffer_too_small(self):
        with pytest.raises(ValueError):
            window_fingerprints(bytes(100), out=np.zeros(3, dtype=np.uint64))

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=RABIN_WINDOW_SIZE, max_size=300))
    def test_property_agreement(self, data):
        assert list(map(int, window_fingerprints(data))) == self._reference(data)
