"""Tests for the director ensemble (Section 6.3 future work)."""

import pytest

from repro.director import Director, DirectorEnsemble
from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from tests.conftest import make_fps


def entry(fps, path="/f"):
    return FileIndexEntry(FileMetadata(path, len(fps) * 8192), fps)


class TestRouting:
    def test_stable_job_to_director_mapping(self):
        ensemble = DirectorEnsemble(4, n_servers=2)
        assert ensemble.director_for("alpha") is ensemble.director_for("alpha")

    def test_jobs_spread_over_directors(self):
        ensemble = DirectorEnsemble(4, n_servers=2)
        for i in range(64):
            ensemble.define_job(f"job-{i}", "c", [])
        counts = ensemble.job_counts()
        assert sum(counts) == 64
        assert all(c > 0 for c in counts)  # hash spreads 64 names over 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DirectorEnsemble(0)


class TestDirectorInterface:
    def test_chain_and_filtering_fingerprints(self):
        ensemble = DirectorEnsemble(3, n_servers=2)
        job = ensemble.define_job("nightly", "c", [])
        fps = make_fps(10)
        run = ensemble.begin_run(job, 1.0, ensemble.assign_backup(job))
        ensemble.complete_run(run, [entry(fps)])
        assert ensemble.chain(job).latest() is run
        assert ensemble.filtering_fingerprints(job) == fps
        assert ensemble.job_by_name("nightly") is job

    def test_metadata_view_spans_directors(self):
        ensemble = DirectorEnsemble(4, n_servers=2)
        runs = []
        for i in range(8):
            job = ensemble.define_job(f"j{i}", "c", [])
            run = ensemble.begin_run(job, 1.0, ensemble.assign_backup(job))
            ensemble.complete_run(run, [entry(make_fps(4, start=i * 10))])
            runs.append(run)
        for run in runs:
            assert run.run_id in ensemble.metadata
            assert len(ensemble.metadata.files_for_run(run.run_id)) == 1
        with pytest.raises(KeyError):
            ensemble.metadata.files_for_run(10_000)

    def test_find_run_across_members(self):
        ensemble = DirectorEnsemble(3, n_servers=2)
        job = ensemble.define_job("j", "c", [])
        run = ensemble.begin_run(job, 1.0, ensemble.assign_backup(job))
        ensemble.complete_run(run, [entry(make_fps(2))])
        assert ensemble.find_run(run.run_id) is run
        assert ensemble.find_run(99_999) is None

    def test_record_dedup2_broadcasts(self):
        ensemble = DirectorEnsemble(3, n_servers=2)
        ensemble.record_dedup2()
        assert ensemble.dedup2_runs == 1
        assert all(d.dedup2_runs == 1 for d in ensemble.directors)


class TestClusterWithEnsemble:
    def test_end_to_end_backup_dedup_restore(self):
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=4096, cache_capacity=1 << 18,
        )
        cluster = DebarCluster(w_bits=2, config=cfg, n_directors=3)
        assert isinstance(cluster.director, DirectorEnsemble)
        jobs = [cluster.director.define_job(f"j{i}", f"c{i}", []) for i in range(6)]
        streams = [
            [(fp, 8192) for fp in make_fps(80, start=i * 200)] for i in range(6)
        ]
        cluster.backup_streams(list(zip(jobs, streams)))
        d2 = cluster.run_dedup2(force_psiu=True)
        assert d2.new_chunks_stored == 480
        # Second round of one job: its owning director's chain filters it.
        d1 = cluster.backup_streams([(jobs[0], streams[0])])
        assert d1.transferred_bytes == 0
        # Restore through the ensemble's cross-director run lookup.
        run = cluster.director.chain(jobs[3]).latest()
        payloads = cluster.restore_run(run.run_id)
        assert len(payloads) == 80

    def test_single_director_default_unchanged(self):
        cluster = DebarCluster(w_bits=1)
        assert isinstance(cluster.director, Director)

    def test_scale_out_not_supported_with_ensemble(self):
        cluster = DebarCluster(w_bits=1, n_directors=2)
        with pytest.raises(NotImplementedError):
            cluster.scale_out()
