"""Tests for the loopback PSIL/PSIU exchange (cluster ``wire_exchange``).

The cluster's all-to-all exchanges normally move fingerprints by list
passing with *computed* volume accounting; ``wire_exchange=True`` pushes
the same exchanges through real loopback sockets.  The two modes must be
bit-for-bit equivalent in every dedup decision, and the wire mode must
additionally *measure* its traffic (``net.bytes_sent{role="cluster"}``).
"""

import pytest

from repro.core.fingerprint import SyntheticFingerprints
from repro.net.exchange import LoopbackExchange
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.telemetry.registry import MetricsRegistry
from tests.conftest import make_fps


def make_cluster(wire, w_bits=2, registry=None):
    cfg = BackupServerConfig(
        index_n_bits=8,
        index_bucket_bytes=512,
        container_bytes=64 * 1024,
        filter_capacity=4096,
        cache_capacity=64,
        siu_every=1,
    )
    return DebarCluster(
        w_bits=w_bits, config=cfg, telemetry=registry, wire_exchange=wire
    )


def drive(cluster, rounds=3, jobs=4, per_round=120):
    """A few rounds of backups + dedup-2; returns the decision trail."""
    gens = [SyntheticFingerprints(i) for i in range(jobs)]
    handles = [
        cluster.director.define_job(f"j{i}", f"c{i}", []) for i in range(jobs)
    ]
    trail = []
    history = [[] for _ in range(jobs)]
    for _ in range(rounds):
        streams = []
        for i in range(jobs):
            fresh = gens[i].fresh(per_round)
            # Re-send some earlier fingerprints so PSIL sees duplicates.
            stream = fresh + history[i][: per_round // 3]
            history[i].extend(fresh)
            streams.append([(fp, 8192) for fp in stream])
        cluster.backup_streams(list(zip(handles, streams)))
        stats = cluster.run_dedup2(force_psiu=True)
        trail.append(
            (
                stats.fingerprints_looked_up,
                stats.fingerprints_updated,
                stats.new_chunks_stored,
                stats.duplicate_chunks,
            )
        )
    return trail


class TestLoopbackExchangeUnit:
    def test_all_to_all_fingerprints(self):
        fps = make_fps(12)
        with LoopbackExchange(3) as wire:
            outgoing = [
                {0: fps[0:2], 1: fps[2:4], 2: fps[4:6]},
                {0: fps[6:8], 2: fps[8:9]},
                {1: fps[9:12]},
            ]
            inbound = wire.exchange_fingerprints(outgoing)
        assert inbound[0] == {0: fps[0:2], 1: fps[6:8]}
        assert inbound[1] == {0: fps[2:4], 2: fps[9:12]}
        assert inbound[2] == {0: fps[4:6], 1: fps[8:9]}

    def test_all_to_all_records(self):
        fps = make_fps(4)
        with LoopbackExchange(2) as wire:
            outgoing = [
                {1: [(fps[0], 7), (fps[1], 8)]},
                {0: [(fps[2], 9)], 1: [(fps[3], 10)]},
            ]
            inbound = wire.exchange_records(outgoing)
        assert inbound[0] == {1: [(fps[2], 9)]}
        assert inbound[1] == {0: [(fps[0], 7), (fps[1], 8)], 1: [(fps[3], 10)]}

    def test_empty_parts_skip_the_wire(self):
        registry = MetricsRegistry()
        with LoopbackExchange(2, registry=registry) as wire:
            inbound = wire.exchange_fingerprints([{}, {1: []}])
        assert inbound == [{}, {}]
        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        assert metrics["net.exchange_frames"]["samples"][0]["value"] == 0

    def test_traffic_is_measured(self):
        registry = MetricsRegistry()
        fps = make_fps(6)
        with LoopbackExchange(2, registry=registry) as wire:
            wire.exchange_fingerprints([{1: fps[:3]}, {0: fps[3:]}])
        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        sent = metrics["net.bytes_sent"]["samples"][0]
        received = metrics["net.bytes_received"]["samples"][0]
        assert sent["labels"] == {"role": "cluster"}
        # Two frames, each carrying 3 fingerprints plus framing overhead.
        assert sent["value"] > 6 * 20
        assert received["value"] == sent["value"]
        assert metrics["net.exchange_frames"]["samples"][0]["value"] == 2


class TestClusterWireMode:
    def test_wire_mode_matches_in_process(self):
        in_process = make_cluster(wire=False)
        on_wire = make_cluster(wire=True)
        try:
            assert drive(in_process) == drive(on_wire)
        finally:
            on_wire.close()

    def test_index_state_identical(self):
        in_process = make_cluster(wire=False)
        on_wire = make_cluster(wire=True)
        try:
            drive(in_process, rounds=2)
            drive(on_wire, rounds=2)
            for a, b in zip(in_process.servers, on_wire.servers):
                assert a.index.entry_count == b.index.entry_count
        finally:
            on_wire.close()

    def test_wire_traffic_measured_during_dedup2(self):
        registry = MetricsRegistry()
        cluster = make_cluster(wire=True, registry=registry)
        try:
            drive(cluster, rounds=1)
        finally:
            cluster.close()
        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        samples = {
            s["labels"].get("role"): s["value"]
            for s in metrics["net.bytes_sent"]["samples"]
        }
        assert samples.get("cluster", 0) > 0
        assert metrics["net.exchange_frames"]["samples"][0]["value"] > 0

    def test_close_is_idempotent_and_lazy(self):
        cluster = make_cluster(wire=True)
        # No dedup-2 yet: no transport was opened.
        assert cluster._wire is None
        cluster.close()
        cluster.close()

    def test_in_process_mode_opens_no_socket(self):
        cluster = make_cluster(wire=False)
        drive(cluster, rounds=1)
        assert cluster._wire is None
