"""Model-based stateful testing of the single-server system.

A hypothesis state machine drives random interleavings of backup sessions,
dedup-2 runs (with and without SIU), and restores against a trivially
correct reference model (a dict of fingerprint -> payload size).  The
invariants checked at every step are DESIGN.md §6's:

* restore-equals-backup for every recorded run, at any time;
* the repository stores each distinct fingerprint exactly once;
* physical bytes equal the reference model's distinct-chunk bytes after a
  full flush;
* simulated time is monotone.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.server.chunk_store import ChunkStore
from repro.storage import ChunkRepository
from tests.conftest import make_fps

UNIVERSE = make_fps(48)
CHUNK = 8192


class DebarMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tpds = TwoPhaseDeduplicator(
            DiskIndex(7, bucket_bytes=512),
            ChunkRepository(),
            filter_capacity=24,  # small: forces evictions and re-logging
            cache_capacity=1 << 14,
            container_bytes=64 * 1024,
            siu_every=2,
        )
        self.store = ChunkStore(self.tpds, lpc_containers=4)
        self.reference = set()  # fingerprints ever backed up
        self.runs = []  # list of fingerprint sequences (file indices)
        self.flushed = False
        self.last_clock = 0.0

    # -- actions -----------------------------------------------------------
    @rule(picks=st.lists(st.integers(min_value=0, max_value=47), min_size=1, max_size=30))
    def backup(self, picks):
        stream = [(UNIVERSE[i], CHUNK) for i in picks]
        _, file_index = self.tpds.dedup1_backup(stream)
        self.runs.append(file_index)
        self.reference.update(fp for fp, _ in stream)
        self.flushed = False

    @rule(force=st.sampled_from([None, True, False]))
    def dedup2(self, force):
        self.tpds.dedup2(force_siu=force)
        self.flushed = (
            self.tpds.undetermined_count == 0
            and not self.tpds.chunk_log
            and self.tpds.unregistered_count == 0
        )

    @rule()
    def flush_everything(self):
        self.tpds.dedup2(force_siu=True)
        self.flushed = True

    @rule(run_pick=st.integers(min_value=0, max_value=10_000))
    def restore_a_run(self, run_pick):
        if not self.runs:
            return
        # A run is restorable once its chunks went through dedup-2.
        self.tpds.dedup2(force_siu=False)
        file_index = self.runs[run_pick % len(self.runs)]
        for fp in file_index:
            payload = self.store.read_chunk(fp)
            assert len(payload) == CHUNK

    # -- invariants -------------------------------------------------------
    @invariant()
    def no_fingerprint_stored_twice(self):
        seen = set()
        for container in self.tpds.repository.iter_containers():
            for fp in container.fingerprints:
                assert fp not in seen, "duplicate store"
                seen.add(fp)

    @invariant()
    def stored_is_subset_of_reference(self):
        stored = {
            fp
            for container in self.tpds.repository.iter_containers()
            for fp in container.fingerprints
        }
        assert stored <= self.reference

    @invariant()
    def flushed_state_matches_reference_exactly(self):
        if self.flushed:
            assert self.tpds.repository.stored_chunk_bytes == len(self.reference) * CHUNK
            assert len(self.tpds.index) == len(self.reference)
            assert self.tpds.unregistered_count == 0

    @invariant()
    def clock_monotone(self):
        now = self.tpds.clock.now
        assert now >= self.last_clock
        self.last_clock = now


TestDebarMachine = DebarMachine.TestCase
TestDebarMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
