"""Tests for the Venti-style random-index baseline."""

import pytest

from repro.baselines.venti import VentiServer
from repro.core.disk_index import DiskIndex
from repro.storage import ChunkRepository
from tests.conftest import make_fps


def make_venti(n_bits=8):
    index = DiskIndex(n_bits, bucket_bytes=512)
    repo = ChunkRepository()
    return VentiServer(index, repo, container_bytes=64 * 1024), repo


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


class TestDedupCorrectness:
    def test_new_then_duplicate(self):
        server, repo = make_venti()
        fps = make_fps(50)
        s1 = server.backup_stream(stream(fps))
        assert s1.new_chunks == 50
        s2 = server.backup_stream(stream(fps))
        assert s2.duplicate_chunks == 50
        assert s2.new_chunks == 0
        assert repo.stored_chunk_bytes == 50 * 8192

    def test_within_stream_duplicates(self):
        server, repo = make_venti()
        fps = make_fps(30)
        stats = server.backup_stream(stream(fps + fps))
        assert stats.new_chunks == 30
        assert stats.duplicate_chunks == 30
        assert repo.stored_chunk_bytes == 30 * 8192

    def test_index_complete_after_backup(self):
        server, _ = make_venti()
        fps = make_fps(40)
        server.backup_stream(stream(fps))
        assert all(server.index.lookup(fp) is not None for fp in fps)


class TestCostModel:
    def test_every_fingerprint_probes_the_disk(self):
        server, _ = make_venti()
        fps = make_fps(60)
        stats = server.backup_stream(stream(fps))
        assert stats.lookup_probes >= 60
        assert stats.update_probes == 2 * 60  # read-modify-write inserts

    def test_throughput_pinned_to_random_iops(self):
        # 522 random lookups/s: 522 new fingerprints need >= ~3 s of
        # lookups plus ~2x that in updates.
        server, _ = make_venti()
        fps = make_fps(522)
        stats = server.backup_stream(stream(fps))
        assert stats.elapsed > 2.0
        assert stats.fingerprints_per_second < 522

    def test_duplicates_cost_less_than_inserts(self):
        fps = make_fps(100)
        a, _ = make_venti()
        t_new = a.backup_stream(stream(fps)).elapsed
        t_dup = a.backup_stream(stream(fps)).elapsed
        assert t_dup < t_new

    def test_orders_of_magnitude_slower_than_sil(self):
        """The motivating comparison: one disk I/O per fingerprint vs one
        sequential sweep for the whole batch."""
        from repro.core.sil import SequentialIndexLookup
        from repro.simdisk import Meter, SimClock, paper_index_disk

        fps = make_fps(1000)
        venti, _ = make_venti()
        t_venti = venti.backup_stream(stream(fps)).elapsed

        index = DiskIndex(8, bucket_bytes=512)
        meter = Meter(SimClock())
        SequentialIndexLookup(index).run(fps, meter=meter, disk=paper_index_disk())
        t_sil = meter.total()
        assert t_venti / t_sil > 50
