"""Tests for the device cost models and their paper calibration."""

import pytest

from repro.simdisk import (
    CpuModel,
    DiskModel,
    NetworkModel,
    paper_cpu,
    paper_index_disk,
    paper_log_disk,
    paper_network,
    paper_rig,
)
from repro.util import GB, MB


class TestDiskModel:
    def test_seq_read_scales_linearly(self):
        disk = DiskModel(seq_read_rate=100 * MB, random_io_time=0.0)
        assert disk.seq_read_time(100 * MB) == pytest.approx(1.0)
        assert disk.seq_read_time(200 * MB) == pytest.approx(2.0)

    def test_seq_includes_one_positioning_delay(self):
        disk = DiskModel(seq_read_rate=100 * MB, random_io_time=0.01)
        assert disk.seq_read_time(100 * MB) == pytest.approx(1.01)

    def test_zero_bytes_is_free(self):
        disk = DiskModel()
        assert disk.seq_read_time(0) == 0.0
        assert disk.seq_write_time(0) == 0.0
        assert disk.random_read_time(0) == 0.0

    def test_random_reads_divide_across_raid(self):
        disk = DiskModel(random_io_time=0.010, raid_width=8)
        assert disk.random_read_time(800) == pytest.approx(1.0)

    def test_random_iops(self):
        disk = DiskModel(random_io_time=0.010, raid_width=8)
        assert disk.random_iops == pytest.approx(800.0)

    def test_negative_inputs_rejected(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.seq_read_time(-1)
        with pytest.raises(ValueError):
            disk.random_read_time(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DiskModel(seq_read_rate=0)
        with pytest.raises(ValueError):
            DiskModel(random_io_time=-1)
        with pytest.raises(ValueError):
            DiskModel(raid_width=0)


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(bandwidth=100 * MB, rtt=0.001)
        assert net.transfer_time(100 * MB) == pytest.approx(1.001)

    def test_exchange_limited_by_larger_direction(self):
        net = NetworkModel(bandwidth=100 * MB, rtt=0.0)
        assert net.exchange_time(50 * MB, 100 * MB) == pytest.approx(1.0)
        assert net.exchange_time(100 * MB, 50 * MB) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_time(-1)


class TestCpuModel:
    def test_fp_search(self):
        cpu = CpuModel(fp_search_rate=1e6)
        assert cpu.fp_search_time(1_000_000) == pytest.approx(1.0)

    def test_negative_rejected(self):
        cpu = CpuModel()
        with pytest.raises(ValueError):
            cpu.fp_search_time(-1)
        with pytest.raises(ValueError):
            cpu.sha1_time(-1)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            CpuModel(fp_search_rate=0)


class TestPaperCalibration:
    """The presets must land on the paper's measured figures."""

    def test_random_lookup_rate_522(self):
        disk = paper_index_disk()
        assert disk.random_iops == pytest.approx(522, rel=0.01)

    def test_random_update_rate_near_270(self):
        # An update is a read-modify-write: two random accesses.
        disk = paper_index_disk()
        assert disk.random_iops / 2 == pytest.approx(270, rel=0.05)

    def test_sil_time_32gb_is_2_53_minutes(self):
        disk = paper_index_disk()
        assert disk.seq_read_time(32 * GB) / 60 == pytest.approx(2.53, rel=0.01)

    def test_siu_time_32gb_is_6_16_minutes(self):
        disk = paper_index_disk()
        t = disk.seq_read_time(32 * GB) + disk.seq_write_time(32 * GB)
        assert t / 60 == pytest.approx(6.16, rel=0.01)

    def test_log_disk_rate_224(self):
        disk = paper_log_disk()
        assert disk.seq_read_rate == 224 * MB

    def test_nic_rate_210(self):
        assert paper_network().bandwidth == 210 * MB

    def test_cpu_fp_search_2_749m(self):
        assert paper_cpu().fp_search_rate == pytest.approx(2.749e6)

    def test_rig_bundles_fresh_models(self):
        rig1, rig2 = paper_rig(), paper_rig()
        assert rig1.index_disk == rig2.index_disk
        assert rig1 is not rig2
