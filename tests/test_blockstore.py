"""Tests for the memory- and file-backed block stores."""

import pytest

from repro.storage import FileBlockStore, MemoryBlockStore


class TestMemoryBlockStore:
    def test_zero_initialised(self):
        store = MemoryBlockStore(64)
        assert store.read(0, 64) == b"\x00" * 64

    def test_write_read_roundtrip(self):
        store = MemoryBlockStore(64)
        store.write(8, b"hello")
        assert store.read(8, 5) == b"hello"
        assert store.read(0, 8) == b"\x00" * 8

    def test_size(self):
        assert MemoryBlockStore(123).size == 123

    def test_bounds_checked(self):
        store = MemoryBlockStore(16)
        with pytest.raises(ValueError):
            store.read(10, 10)
        with pytest.raises(ValueError):
            store.write(12, b"abcdef")
        with pytest.raises(ValueError):
            store.read(-1, 4)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryBlockStore(0)


class TestFileBlockStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "index.bin"
        with FileBlockStore(path, 4096) as store:
            store.write(100, b"payload")
            assert store.read(100, 7) == b"payload"

    def test_sparse_reads_are_zero(self, tmp_path):
        with FileBlockStore(tmp_path / "s.bin", 8192) as store:
            assert store.read(4096, 100) == b"\x00" * 100

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "p.bin"
        store = FileBlockStore(path, 1024)
        store.write(0, b"durable")
        store.flush()
        store.close()
        reopened = FileBlockStore(path, 1024)
        assert reopened.read(0, 7) == b"durable"
        reopened.close()

    def test_reopen_larger_file_rejected(self, tmp_path):
        path = tmp_path / "big.bin"
        FileBlockStore(path, 2048).close()
        with pytest.raises(ValueError):
            FileBlockStore(path, 1024)

    def test_bounds(self, tmp_path):
        with FileBlockStore(tmp_path / "b.bin", 128) as store:
            with pytest.raises(ValueError):
                store.write(120, b"too much data")

    def test_path_property(self, tmp_path):
        path = tmp_path / "x.bin"
        with FileBlockStore(path, 64) as store:
            assert store.path == path
