"""Session lifecycle, admission control and tenancy (DESIGN.md §12).

Pins the serving-core behaviours added with the async rewrite: abandoned
sessions expire by idle TTL (no leak), ``SESSION_ABORT`` discards one
explicitly and idempotently, admission sheds ``Busy`` under the in-flight
and buffered-bytes caps, tenants authenticate with tokens and are held to
their quotas — plus two client-side regressions: the read-ahead planner
must not burn its plan on an off-plan fingerprint (RPC counts prove it)
and ``net.rpc_latency`` must time round trips, not backoff sleeps.
"""

import contextlib
import math
import threading
import time

import pytest

from repro.net import messages as m
from repro.net.client import (
    NetClient,
    RemoteBackupClient,
    RemoteChunkReader,
    RemoteError,
    RemoteUnavailable,
    RetryPolicy,
)
from repro.net.faults import inject_frames
from repro.net.server import TenantConfig, serve_vault
from repro.system.vault import DebarVault
from repro.telemetry.registry import MetricsRegistry

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05, timeout=2.0)


@contextlib.contextmanager
def serving(tmp_path, **kw):
    """A live daemon on a loopback port, torn down on exit."""
    registry = kw.pop("registry", None) or MetricsRegistry()
    vault = DebarVault(tmp_path / "vault")
    server = serve_vault(vault, registry=registry, **kw)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield vault, server
    finally:
        server.shutdown()
        server.server_close()
        vault.close()


def write_dataset(root, name="data", n_files=2, size=3000, seed=11):
    import random

    rng = random.Random(seed)
    data = root / name
    data.mkdir(exist_ok=True)
    for i in range(n_files):
        (data / f"f{i}.bin").write_bytes(rng.randbytes(size))
    return data


def begin_session(net, job="j"):
    doc = net.call_json(m.SESSION_BEGIN, {"job": job})
    return int(doc["session"])


def append_chunk(net, session, fp, data):
    payload = m._U32.pack(session) + m.encode_chunk_batch([(fp, data)])
    return m.decode_json(net.call(m.CHUNK_APPEND, payload))


class TestSessionExpiry:
    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    def test_idle_sessions_expire_and_release_buffers(self, tmp_path, threaded):
        with serving(tmp_path, threaded=threaded) as (vault, server):
            with NetClient("127.0.0.1", server.port, retry=FAST_RETRY) as net:
                session = begin_session(net)
                append_chunk(net, session, b"\x01" * 20, b"x" * 4096)
                assert server.open_sessions() == 1
                assert server.registry.value("net.session_buffered_bytes") == 4096
                # Not yet idle past the TTL: the sweep leaves it alone.
                assert server.expire_idle_sessions() == 0
                # Fast-forward the sweep's clock past the TTL.
                forced = time.monotonic() + server.session_ttl + 1.0
                assert server.expire_idle_sessions(now=forced) == 1
            assert server.open_sessions() == 0
            assert server.registry.total("net.sessions_expired") == 1
            assert server.registry.value("net.session_buffered_bytes") == 0

    def test_sweeper_reclaims_abandoned_session_end_to_end(self, tmp_path):
        # A client that dies between SESSION_BEGIN and SESSION_COMMIT used
        # to leak its session (and buffered chunk bytes) forever; the
        # async core's sweeper task reclaims it after the idle TTL.
        with serving(tmp_path, session_ttl=0.3) as (vault, server):
            net = NetClient("127.0.0.1", server.port, retry=FAST_RETRY)
            session = begin_session(net)
            append_chunk(net, session, b"\x02" * 20, b"y" * 2048)
            net.close()  # the client vanishes without commit or abort
            deadline = time.monotonic() + 5.0
            while server.open_sessions() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.open_sessions() == 0
            assert server.registry.total("net.sessions_expired") == 1
            assert server.registry.value("net.session_buffered_bytes") == 0


class TestSessionAbort:
    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    def test_abort_discards_session_idempotently(self, tmp_path, threaded):
        with serving(tmp_path, threaded=threaded) as (vault, server):
            with NetClient("127.0.0.1", server.port, retry=FAST_RETRY) as net:
                session = begin_session(net)
                append_chunk(net, session, b"\x03" * 20, b"z" * 1024)
                first = m.decode_json(
                    net.call(m.SESSION_ABORT, m.encode_json({"session": session}))
                )
                assert first == {
                    "session": session,
                    "discarded": True,
                    "discarded_bytes": 1024,
                }
                assert server.open_sessions() == 0
                # Aborting again (fresh request id) is a no-op success.
                second = m.decode_json(
                    net.call(m.SESSION_ABORT, m.encode_json({"session": session}))
                )
                assert second["discarded"] is False
            assert server.registry.total("net.sessions_aborted") == 1
            assert server.registry.value("net.session_buffered_bytes") == 0

    def test_client_aborts_session_when_backup_fails(self, tmp_path):
        with serving(tmp_path) as (vault, server):
            data = write_dataset(tmp_path)
            with RemoteBackupClient(
                "127.0.0.1", server.port, retry=FAST_RETRY
            ) as rc:
                original = rc.engine.iter_dataset

                def dies_after_streaming(paths):
                    yield from original(paths)
                    raise RuntimeError("client crashed before commit")

                rc.engine.iter_dataset = dies_after_streaming
                with pytest.raises(RuntimeError):
                    rc.backup("doomed", [str(data)])
            # The failed backup cleaned up after itself: no leaked session,
            # no run recorded, no buffered bytes parked server-side.
            assert server.open_sessions() == 0
            assert server.registry.total("net.sessions_aborted") == 1
            assert server.registry.value("net.session_buffered_bytes") == 0
            assert vault.runs() == []


class TestAdmissionControl:
    def test_inflight_cap_sheds_busy_and_recovers(self, tmp_path):
        # max_inflight=1: while one wedged STATS occupies the daemon, a
        # concurrent PING is shed with ERROR/Busy; the client retries with
        # backoff and both requests ultimately succeed.
        from repro.net import server as server_mod

        with serving(tmp_path, max_inflight=1) as (vault, server):
            entered = threading.Event()
            release = threading.Event()
            original = server_mod._HANDLERS[m.STATS]

            def slow_stats(srv, payload):
                entered.set()
                release.wait(5.0)
                return original(srv, payload)

            server_mod._HANDLERS[m.STATS] = slow_stats
            try:
                net_a = NetClient("127.0.0.1", server.port, retry=FAST_RETRY)
                net_b = NetClient(
                    "127.0.0.1", server.port,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.05,
                                      max_delay=0.2, jitter=0.0, timeout=2.0),
                )
                result = {}

                def slow_call():
                    result["stats"] = net_a.call_json(m.STATS)

                occupier = threading.Thread(target=slow_call, daemon=True)
                occupier.start()
                assert entered.wait(5.0)

                def release_once_shed():
                    deadline = time.monotonic() + 3.0
                    while (
                        time.monotonic() < deadline
                        and server.registry.total("net.busy_rejections") == 0
                    ):
                        time.sleep(0.01)
                    release.set()

                threading.Thread(target=release_once_shed, daemon=True).start()
                assert net_b.call(m.PING, b"x") == b"x"
                occupier.join(10.0)
                assert "runs" in result["stats"]
                assert server.registry.total("net.busy_rejections") >= 1
                net_a.close()
                net_b.close()
            finally:
                server_mod._HANDLERS[m.STATS] = original

    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    def test_buffered_bytes_cap_sheds_busy(self, tmp_path, threaded):
        # A 100-byte vault-wide buffer cannot park a 3000-byte chunk: every
        # attempt is shed Busy until the retry budget runs out.
        with serving(
            tmp_path, threaded=threaded, max_buffered_bytes=100
        ) as (vault, server):
            with NetClient("127.0.0.1", server.port, retry=FAST_RETRY) as net:
                session = begin_session(net)
                with pytest.raises(RemoteUnavailable):
                    append_chunk(net, session, b"\x04" * 20, b"w" * 3000)
            assert server.registry.total("net.busy_rejections") >= 1
            assert server.registry.value("net.session_buffered_bytes") == 0


class TestTenancy:
    TENANTS = [TenantConfig.parse("alice=s3cret:6000000"),
               TenantConfig.parse("bob=hunter2")]

    def test_authenticated_tenant_backs_up_and_restores(self, tmp_path):
        with serving(tmp_path, tenants=list(self.TENANTS)) as (vault, server):
            data = write_dataset(tmp_path, size=2000)
            with RemoteBackupClient(
                "127.0.0.1", server.port, client_name="alice",
                token="s3cret", retry=FAST_RETRY,
            ) as rc:
                run = rc.backup("tenant-job", [str(data)])
                dest = tmp_path / "out"
                rc.restore(run.run_id, dest)
            for i in range(2):
                restored = next(dest.rglob(f"f{i}.bin")).read_bytes()
                assert restored == (data / f"f{i}.bin").read_bytes()

    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"client_name": "alice", "token": "wrong"},
            {"client_name": "mallory", "token": "s3cret"},
            {"client_name": "alice"},  # no token at all
        ],
        ids=["bad-token", "unknown-tenant", "missing-token"],
    )
    def test_bad_credentials_are_refused(self, tmp_path, threaded, kwargs):
        with serving(
            tmp_path, threaded=threaded, tenants=list(self.TENANTS)
        ) as (vault, server):
            net = NetClient(
                "127.0.0.1", server.port, retry=FAST_RETRY, **kwargs
            )
            with pytest.raises(RemoteError) as exc:
                net.call(m.PING, b"x")
            assert exc.value.error == "AuthError"
            net.close()
            assert server.registry.total("net.auth_failures") >= 1

    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    def test_tenant_quota_is_a_hard_error(self, tmp_path, threaded):
        tenants = [TenantConfig.parse("alice=s3cret:1000")]
        with serving(
            tmp_path, threaded=threaded, tenants=tenants
        ) as (vault, server):
            with NetClient(
                "127.0.0.1", server.port, client_name="alice",
                token="s3cret", retry=FAST_RETRY,
            ) as net:
                session = begin_session(net)
                # Under quota: fine.
                append_chunk(net, session, b"\x05" * 20, b"a" * 500)
                # Over quota: QuotaError, not a retryable Busy.
                with pytest.raises(RemoteError) as exc:
                    append_chunk(net, session, b"\x06" * 20, b"b" * 600)
                assert exc.value.error == "QuotaError"
                # The hard error burned no retries.
                assert server.registry.total("net.busy_rejections") == 0


class TestReadAheadRegression:
    def test_off_plan_read_does_not_burn_the_plan(self, tmp_path):
        # Regression: read_chunk used to advance _plan_pos destructively
        # while scanning for an off-plan fingerprint, so one off-plan read
        # degraded every later planned read to one RPC per chunk.  The
        # RPC counts prove the plan survives.
        with serving(tmp_path) as (vault, server):
            data = write_dataset(tmp_path, n_files=2, size=150_000, seed=3)
            with RemoteBackupClient(
                "127.0.0.1", server.port, retry=FAST_RETRY
            ) as rc:
                run = rc.backup("plan", [str(data)])
                entries = rc.run_entries(run.run_id)
                by_file = {e.metadata.path.rsplit("/", 1)[-1]: e for e in entries}
                planned = list(dict.fromkeys(by_file["f0.bin"].fingerprints))
                off_plan = next(
                    fp for fp in by_file["f1.bin"].fingerprints
                    if fp not in set(planned)
                )
                assert len(planned) >= 3, "dataset too small to chunk"

                batch = 2
                reader = RemoteChunkReader(rc.net, batch=batch)
                reader.plan(planned)
                calls = {"chunk_read": 0}
                original_call = rc.net.call

                def counting_call(msg_type, payload=b""):
                    if msg_type == m.CHUNK_READ:
                        calls["chunk_read"] += 1
                    return original_call(msg_type, payload)

                rc.net.call = counting_call
                # An off-plan probe first (a scrub repair read, say) ...
                assert reader.read_chunk(off_plan)
                assert calls["chunk_read"] == 1
                # ... then the planned sequential restore still batches.
                for fp in planned:
                    assert reader.read_chunk(fp)
                expected = 1 + math.ceil(len(planned) / batch)
                assert calls["chunk_read"] == expected, (
                    f"{calls['chunk_read']} CHUNK_READ RPCs for "
                    f"{len(planned)} planned chunks (batch={batch}); "
                    "the off-plan read burned the plan"
                )


class TestLatencyAccounting:
    def test_rpc_latency_excludes_backoff_sleeps(self, tmp_path):
        # Regression: call() used to stamp t0 before the retry loop, so a
        # dropped frame inflated net.rpc_latency by the attempt timeout
        # plus the backoff sleep.  Each attempt is now timed individually:
        # the one observation comes from the successful round trip.
        with serving(tmp_path) as (vault, server):
            registry = MetricsRegistry()
            net = NetClient(
                "127.0.0.1", server.port, registry=registry,
                retry=RetryPolicy(max_attempts=3, base_delay=0.5,
                                  max_delay=0.5, jitter=0.0, timeout=0.25),
            )
            try:
                with inject_frames(net, "drop", occurrence=1) as plan:
                    assert net.ping()
                assert plan.fired
            finally:
                net.close()
            metrics = {row["name"]: row for row in registry.snapshot_metrics()}
            ping = next(
                s for s in metrics["net.rpc_latency"]["samples"]
                if s["labels"].get("type") == "ping"
            )
            assert ping["count"] == 1
            # Well under the 0.25s attempt timeout + 0.5s backoff the old
            # accounting would have folded in.
            assert ping["sum"] < 0.2, ping
            assert registry.total("net.retries") >= 1
