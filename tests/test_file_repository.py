"""Tests for the on-disk container repository."""

import pytest

from repro.storage import ContainerWriter
from repro.storage.file_repository import FileChunkRepository
from tests.conftest import make_fps


def sealed(cid, start=0, n=3, capacity=4096):
    writer = ContainerWriter(capacity=capacity)
    for i, fp in enumerate(make_fps(n, start=start)):
        writer.add(fp, data=bytes([65 + i]) * 50)
    return writer.seal(cid)


class TestFileChunkRepository:
    def test_store_creates_file(self, tmp_path):
        repo = FileChunkRepository(tmp_path / "repo", container_bytes=4096)
        cid = repo.allocate_id()
        repo.store(sealed(cid))
        files = list((tmp_path / "repo").glob("*.ctr"))
        assert len(files) == 1
        assert files[0].stat().st_size == 4096

    def test_fetch_roundtrip(self, tmp_path):
        repo = FileChunkRepository(tmp_path / "repo", container_bytes=4096)
        cid = repo.allocate_id()
        original = sealed(cid)
        repo.store(original)
        repo._cache.clear()  # force a cold read from disk
        fetched = repo.fetch(cid)
        assert fetched.records == original.records
        for fp in original.fingerprints:
            assert fetched.get(fp) == original.get(fp)

    def test_persistence_across_reopen(self, tmp_path):
        root = tmp_path / "repo"
        repo = FileChunkRepository(root, container_bytes=4096)
        cids = []
        for i in range(3):
            cid = repo.allocate_id()
            repo.store(sealed(cid, start=i * 10))
            cids.append(cid)
        reopened = FileChunkRepository(root, container_bytes=4096)
        assert len(reopened) == 3
        assert reopened.container_ids() == cids
        # ID allocation continues past existing containers.
        assert reopened.allocate_id() == 3
        for cid in cids:
            reopened.fetch(cid)

    def test_duplicate_store_rejected(self, tmp_path):
        repo = FileChunkRepository(tmp_path / "repo", container_bytes=4096)
        c = sealed(repo.allocate_id())
        repo.store(c)
        with pytest.raises(ValueError):
            repo.store(c)

    def test_fetch_missing(self, tmp_path):
        repo = FileChunkRepository(tmp_path / "repo", container_bytes=4096)
        with pytest.raises(KeyError):
            repo.fetch(99)
        with pytest.raises(KeyError):
            repo.locate(99)

    def test_open_missing_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileChunkRepository(tmp_path / "missing", create=False)

    def test_iter_index_entries_survives_reopen(self, tmp_path):
        root = tmp_path / "repo"
        repo = FileChunkRepository(root, container_bytes=4096)
        expected = {}
        for i in range(2):
            cid = repo.allocate_id()
            c = sealed(cid, start=i * 10)
            repo.store(c)
            for fp in c.fingerprints:
                expected[fp] = cid
        reopened = FileChunkRepository(root, container_bytes=4096)
        assert dict(reopened.iter_index_entries()) == expected

    def test_stored_chunk_bytes(self, tmp_path):
        repo = FileChunkRepository(tmp_path / "repo", container_bytes=4096)
        repo.store(sealed(repo.allocate_id(), n=4))
        assert repo.stored_chunk_bytes == 4 * 50
