"""Tests for the media scrubber: detection, repair, cursor, and the
end-to-end media-fault drill (bit rot in every artifact class plus an
ENOSPC-aborted dedup-2, healed and resumed)."""

import json

import pytest

from repro.cli import main
from repro.durability.errors import DiskFullError
from repro.durability.fsshim import FaultyFs, LocalFs, flip_byte_on_disk
from repro.durability.framing import superblock_size
from repro.durability.scrubber import CURSOR_FILE, Scrubber
from repro.system import DebarVault
from repro.workloads import FileTreeGenerator


def make_tree(root, seed=21, n_files=5):
    FileTreeGenerator(seed=seed).generate(
        root, n_files=n_files, n_dirs=2, min_size=8 * 1024, max_size=32 * 1024
    )
    return root


def open_vault(tmp_path, name="vault", fs=None):
    return DebarVault(tmp_path / name, container_bytes=64 * 1024, fs=fs)


def flip_container_data_byte(vault_dir, which=0, mask=0xFF):
    """Flip one byte inside a sealed container's *data* section (the
    image is padded to capacity, so a random offset may hit padding)."""
    from repro.storage.container import Container

    victim = sorted((vault_dir / "containers").glob("*.ctr"))[which]
    cid = int(victim.stem, 16)
    container = Container.deserialize(cid, victim.read_bytes())
    rec = container.records[0]
    offset = container.data_start + rec.offset + rec.size // 2
    flip_byte_on_disk(victim, offset, mask)
    return cid, rec.fingerprint


def read_tree(root):
    return {
        p.relative_to(root): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestDetection:
    def test_clean_vault_scrubs_clean(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        report = Scrubber(vault).run()
        assert report.clean and not report.partial
        assert report.containers_scanned > 0
        assert report.buckets_scanned == vault.tpds.index.n_buckets
        assert not (vault.root / CURSOR_FILE).exists()

    def test_detects_container_bit_flip(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        cid, fp = flip_container_data_byte(vault.root)
        vault.repository.invalidate(cid)
        report = Scrubber(vault).run()
        assert report.corrupt_found == 1 and report.unrepaired == 1
        finding = report.findings[0]
        assert finding.artifact == "container"
        assert finding.container_id == cid
        assert finding.fingerprint == fp
        assert finding.offset is not None
        assert not finding.repaired  # read-only pass never repairs

    def test_detects_corrupt_chunk_log_record(self, tmp_path):
        vault = open_vault(tmp_path)
        fp = b"\x42" * 20
        vault.tpds.chunk_log.append(fp, data=b"x" * 100)
        vault.close()
        # Flip a payload byte of the only frame: superblock, then the
        # 12-byte frame header, then the framed payload.
        log_path = vault.root / "chunk.log"
        flip_byte_on_disk(log_path, superblock_size(0) + 12 + 30, 0xFF)
        reopened = open_vault(tmp_path)
        assert len(reopened.tpds.chunk_log.corrupt_records) == 1
        report = Scrubber(reopened).run()
        assert report.corrupt_found == 1
        assert report.findings[0].artifact == "chunk log"

    def test_detects_index_bucket_rot(self, tmp_path):
        vault = open_vault(tmp_path)
        run = vault.backup("docs", [make_tree(tmp_path / "src")])
        vault.close()
        fp = run.files[0].fingerprints[0]
        index = vault.tpds.index
        k = index.bucket_number(fp)
        flip_byte_on_disk(
            tmp_path / "vault" / "index.bin", k * index.bucket_bytes + 6, 0xFF
        )
        reopened = open_vault(tmp_path)
        report = Scrubber(reopened).run()
        assert report.corrupt_found == 1
        finding = report.findings[0]
        assert finding.artifact == "index"
        assert finding.offset == k * index.bucket_bytes


class TestRepair:
    def test_repairs_container_from_chunk_log(self, tmp_path):
        src = make_tree(tmp_path / "src")
        before = read_tree(src)
        vault = open_vault(tmp_path)
        run = vault.backup("docs", [src])
        cid, fp = flip_container_data_byte(vault.root)
        vault.repository.invalidate(cid)
        # The chunk log still holds the <F, D(F)> group (as it would if
        # rot struck between dedup-1 and the log's clear).
        intact = dict(before)  # find the damaged chunk's true payload
        container = vault.repository.fetch(cid)
        # Reconstruct the payload via a clean replica of the same data.
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [src])
        payload = replica.chunk_store.read_chunk(fp)
        vault.tpds.chunk_log.append(fp, data=payload)
        vault.repository.invalidate(cid)

        report = Scrubber(vault).run(repair=True)
        assert report.corrupt_found == 1 and report.repaired == 1
        assert report.unrepaired == 0 and not report.degraded_files
        assert Scrubber(vault).run().clean
        vault.verify(deep=True)  # would raise on any residual damage
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before

    def test_repairs_container_from_peer(self, tmp_path):
        src = make_tree(tmp_path / "src")
        before = read_tree(src)
        vault = open_vault(tmp_path)
        run = vault.backup("docs", [src])
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [src])

        cid, _fp = flip_container_data_byte(vault.root)
        vault.repository.invalidate(cid)
        # Any object with read_chunk(fp) serves as a repair peer; the
        # local ChunkStore of a replica vault is exactly that shape.
        report = Scrubber(vault, peers=[replica.chunk_store]).run(repair=True)
        assert report.repaired == 1 and report.unrepaired == 0
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before

    def test_unrepairable_marks_files_degraded(self, tmp_path):
        src = make_tree(tmp_path / "src")
        vault = open_vault(tmp_path)
        vault.backup("docs", [src])
        cid, fp = flip_container_data_byte(vault.root)
        vault.repository.invalidate(cid)
        report = Scrubber(vault).run(repair=True)  # no log copy, no peers
        assert report.unrepaired == 1
        assert report.degraded_files
        hex_fp = fp.hex()
        flagged = [
            f
            for run in vault._catalog["runs"]
            for f in run["files"]
            if hex_fp in f["fingerprints"]
        ]
        assert flagged and all(f.get("degraded") for f in flagged)

    def test_repairs_chunk_log_by_rewrite(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.tpds.chunk_log.append(b"\x01" * 20, data=b"a" * 50)
        vault.tpds.chunk_log.append(b"\x02" * 20, data=b"b" * 50)
        vault.close()
        log_path = vault.root / "chunk.log"
        flip_byte_on_disk(log_path, superblock_size(0) + 12 + 30, 0xFF)
        # auto_recover=False isolates the scrubber's own rewrite (the
        # recovery replay would otherwise consume and clear the log).
        reopened = DebarVault(
            tmp_path / "vault", container_bytes=64 * 1024, auto_recover=False
        )
        assert len(reopened.tpds.chunk_log.corrupt_records) == 1
        assert len(reopened.tpds.chunk_log) == 1  # the intact group
        report = Scrubber(reopened).run(repair=True)
        assert report.repaired == 1
        assert reopened.tpds.chunk_log.corrupt_records == []
        assert (vault.root / "chunk.log.quarantine").exists()
        # The rewritten file reloads with only the intact group, which
        # the auto-recovery replay then consumes cleanly.
        again = open_vault(tmp_path)
        assert again.tpds.chunk_log.corrupt_records == []
        assert Scrubber(again).run().clean

    def test_clear_quarantines_corrupt_frames(self, tmp_path):
        # Open-time recovery replays the intact group and clears the
        # log; the corrupt frame it carried must survive in the
        # quarantine file, not be silently destroyed by the rewrite.
        vault = open_vault(tmp_path)
        vault.tpds.chunk_log.append(b"\x01" * 20, data=b"a" * 50)
        vault.tpds.chunk_log.append(b"\x02" * 20, data=b"b" * 50)
        vault.close()
        flip_byte_on_disk(
            vault.root / "chunk.log", superblock_size(0) + 12 + 30, 0xFF
        )
        reopened = open_vault(tmp_path)  # recovery replays + clears
        assert reopened.recovery_report.replayed
        assert (vault.root / "chunk.log.quarantine").exists()
        assert reopened.tpds.chunk_log.quarantined_bytes > 0

    def test_repairs_index_bucket_and_reinserts(self, tmp_path):
        vault = open_vault(tmp_path)
        run = vault.backup("docs", [make_tree(tmp_path / "src")])
        vault.close()
        fp = run.files[0].fingerprints[0]
        index = vault.tpds.index
        k = index.bucket_number(fp)
        flip_byte_on_disk(
            tmp_path / "vault" / "index.bin", k * index.bucket_bytes + 6, 0xFF
        )
        reopened = open_vault(tmp_path)
        report = Scrubber(reopened).run(repair=True)
        assert report.repaired == 1
        assert report.entries_reinserted >= 1
        assert reopened.tpds.index.lookup(fp) is not None
        assert Scrubber(reopened).run().clean
        assert reopened.audit(deep=True).ok


class TestIncrementalSweep:
    def test_budget_saves_cursor_and_resumes(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        first = Scrubber(vault, max_records=50).run()
        assert first.partial and not first.resumed
        cursor = json.loads((vault.root / CURSOR_FILE).read_text())
        assert cursor["phase"] in ("containers", "chunk-log", "index")
        total = first.records_checked
        passes = 1
        report = first
        while report.partial:
            report = Scrubber(vault, max_records=2000).run()
            # A pass picking up a cursor must not claim full coverage.
            assert report.resumed
            assert "resumed pass" in report.summary() or report.partial
            total += report.records_checked
            passes += 1
            assert passes < 20
        assert not (vault.root / CURSOR_FILE).exists()
        # Cumulative coverage equals one unbudgeted pass.
        final = Scrubber(vault).run()
        assert total == final.records_checked
        assert not final.resumed and "full pass" in final.summary()

    def test_reset_cursor_restarts(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        Scrubber(vault, max_records=50).run()
        assert (vault.root / CURSOR_FILE).exists()
        report = Scrubber(vault, reset_cursor=True).run()
        assert not report.partial
        assert report.records_checked == Scrubber(vault).run().records_checked

    def test_rate_limit_sleeps(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        naps = []
        report = Scrubber(vault, rate_bps=1024 * 1024, sleep=naps.append).run()
        assert not report.partial
        # At 1 MB/s the multi-MB sweep must have throttled, and total
        # sleep should approximate bytes_read / rate.
        assert naps
        assert sum(naps) == pytest.approx(report.bytes_read / (1024 * 1024), rel=0.2)


class TestGcScrubInteraction:
    """gc interleaved with a budgeted scrub: the resumed pass must neither
    skip containers gc rewrote nor double-count the prefix already swept."""

    def test_resumed_scrub_covers_gc_rewrites_exactly_once(self, tmp_path):
        from tests.test_gc import vault_with_two_generations

        vault, src, run1, run2 = vault_with_two_generations(tmp_path)
        first = Scrubber(vault, max_records=1).run()
        assert first.partial and first.containers_scanned == 1
        cursor = json.loads((vault.root / CURSOR_FILE).read_text())
        assert cursor["phase"] == "containers" and cursor["position"] > 0
        position = cursor["position"]
        before = set(vault.repository.container_ids())
        vault.forget(run1.run_id)
        gc_report = vault.gc(rewrite_threshold=1.0)
        assert gc_report.containers_rewritten > 0
        after = vault.repository.container_ids()
        # Copy-forward allocates fresh ids, all past the saved cursor, so
        # the resumed pass picks up every rewrite without rescanning the
        # already-swept prefix.
        new_ids = [cid for cid in after if cid not in before]
        assert new_ids and min(new_ids) >= position
        resumed = Scrubber(vault).run()
        assert resumed.resumed and not resumed.partial
        expected = [cid for cid in after if cid >= position]
        assert resumed.containers_scanned == len(expected)
        assert resumed.clean
        # A fresh full pass over the post-gc vault covers everything.
        final = Scrubber(vault).run()
        assert not final.resumed and final.clean
        assert final.containers_scanned == len(after)

    def test_resumed_scrub_tolerates_container_removed_at_cursor(self, tmp_path):
        from tests.test_gc import vault_with_two_generations

        vault, src, run1, run2 = vault_with_two_generations(
            tmp_path, overlap=False
        )
        Scrubber(vault, max_records=1).run()
        cursor = json.loads((vault.root / CURSOR_FILE).read_text())
        assert cursor["position"] > 0
        vault.forget(run1.run_id)
        vault.forget(run2.run_id)
        vault.gc()
        assert vault.repository.container_ids() == []
        # The container the cursor points at no longer exists; the resumed
        # pass must finish cleanly rather than hunting for it.
        resumed = Scrubber(vault).run()
        assert resumed.resumed and not resumed.partial and resumed.clean
        assert resumed.containers_scanned == 0
        assert not (vault.root / CURSOR_FILE).exists()


class TestScrubCli:
    def test_exit_codes_and_report_json(self, tmp_path, capsys):
        src = make_tree(tmp_path / "src")
        vault = open_vault(tmp_path)
        vault.backup("docs", [src])
        vault.close()
        v = str(tmp_path / "vault")
        assert main(["scrub", "--vault", v]) == 0
        capsys.readouterr()
        cid, _ = flip_container_data_byte(tmp_path / "vault")
        report_path = tmp_path / "report.json"
        assert main(["scrub", "--vault", v, "--report-json", str(report_path)]) == 3
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        doc = json.loads(report_path.read_text())
        assert doc["corrupt_found"] == 1 and doc["unrepaired"] == 1
        assert doc["findings"][0]["container_id"] == cid

    def test_cli_repair_via_peer_flag_shape(self, tmp_path, capsys):
        # --peer requires host:port; a malformed spec is an operational
        # error (1), not a crash.
        vault = open_vault(tmp_path)
        vault.close()
        assert main(
            ["scrub", "--vault", str(tmp_path / "vault"), "--peer", "nonsense"]
        ) == 1
        assert "host:port" in capsys.readouterr().err

    def test_missing_vault_refused(self, tmp_path, capsys):
        missing = tmp_path / "no-such-vault"
        assert main(["scrub", "--vault", str(missing)]) == 1
        assert "no vault" in capsys.readouterr().err
        assert not missing.exists()


class TestMediaFaultDrill:
    """The ISSUE's composite drill: ENOSPC mid-dedup-2, bit rot in every
    artifact class, scrub --repair with a replica peer, resumed backup
    with no double-store, byte-identical restore."""

    def test_full_drill(self, tmp_path):
        src = make_tree(tmp_path / "src", seed=11, n_files=6)
        snapshot = read_tree(src)

        # A clean replica of run 1 (the repair source).
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [src])

        # Run 1 lands cleanly; then the disk "fills" and run 2's dedup-2
        # aborts with DiskFullError mid-chunk-storing (the quota admits
        # the whole chunk log and one sealed container, then refuses).
        quota_fs = FaultyFs(quota_bytes=680_000)
        vault = open_vault(tmp_path, "vault", fs=quota_fs)
        run1 = vault.backup("docs", [src])
        grow = tmp_path / "src" / "grow"
        grow.mkdir()
        for i in range(8):
            (grow / f"new{i}.bin").write_bytes(bytes([i]) * 48 * 1024)
        with pytest.raises(DiskFullError):
            vault.backup("docs", [src])
        assert len(vault.tpds.chunk_log) > 0  # groups awaiting resume
        assert vault.tpds.checking.pending()  # the seal that did land

        # Bit rot strikes every artifact class: a run-1 container, a
        # pending chunk-log frame, and an index bucket.
        cid, _fp = flip_container_data_byte(tmp_path / "vault")
        flip_byte_on_disk(
            tmp_path / "vault" / "chunk.log", superblock_size(0) + 12 + 30, 0xFF
        )
        fp1 = run1.files[0].fingerprints[0]
        index = vault.tpds.index
        k = index.bucket_number(fp1)
        flip_byte_on_disk(
            tmp_path / "vault" / "index.bin", k * index.bucket_bytes + 6, 0xFF
        )

        # Space frees up.  Scrub BEFORE replaying the interrupted work
        # (auto_recover=False models `repro scrub --repair` run first):
        # all three damage classes surface, and the replica peer plus
        # the log's own intact frames heal every one.
        damaged = DebarVault(
            tmp_path / "vault",
            container_bytes=64 * 1024,
            fs=LocalFs(),
            auto_recover=False,
        )
        report = Scrubber(damaged, peers=[replica.chunk_store]).run(repair=True)
        artifacts = {f.artifact for f in report.findings}
        assert artifacts == {"container", "chunk log", "index"}
        assert report.corrupt_found >= 3
        assert report.unrepaired == 0, report.summary()
        assert Scrubber(damaged).run().clean
        damaged.close()

        # Reopen: auto-recovery replays the surviving log groups and
        # finishes the interrupted dedup-2.
        healed = open_vault(tmp_path, "vault", fs=LocalFs())
        assert healed.recovery_report is not None
        assert healed.recovery_report.replayed

        # Resume: re-running the interrupted job stores nothing twice.
        healed.backup("docs", [src])
        audit = healed.audit(deep=True)
        assert audit.ok, audit.summary()
        assert not audit.has("duplicate-store")

        # Run 1 still restores byte-identical.
        dest = tmp_path / "out"
        healed.restore(run1.run_id, dest, strip_prefix=tmp_path)
        restored = read_tree(dest / "src")
        for path, blob in snapshot.items():
            assert restored[path] == blob
