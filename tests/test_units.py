"""Tests for repro.util: units formatting and bit arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    GB,
    KB,
    MB,
    TB,
    bit_prefix,
    fmt_bytes,
    fmt_duration,
    fmt_rate,
    is_power_of_two,
    log2_exact,
    required_bits,
)


class TestUnits:
    def test_binary_scale(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_fmt_bytes_values(self):
        assert fmt_bytes(0) == "0B"
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(8 * KB) == "8.00KB"
        assert fmt_bytes(1.82 * TB) == "1.82TB"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2 * MB) == "-2.00MB"

    def test_fmt_duration(self):
        assert fmt_duration(0.0005) == "0.50ms"
        assert fmt_duration(3.5) == "3.50s"
        assert fmt_duration(2.53 * 60) == "2.53min"
        assert fmt_duration(2 * 3600 + 1) == "2.00h"

    def test_fmt_duration_negative(self):
        assert fmt_duration(-5) == "-5.00s"

    def test_fmt_rate(self):
        assert fmt_rate(210 * MB) == "210.00MB/s"


class TestBits:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(1 << 26) == 26
        with pytest.raises(ValueError):
            log2_exact(12)

    def test_required_bits(self):
        assert required_bits(1) == 1
        assert required_bits(2) == 1
        assert required_bits(3) == 2
        assert required_bits(256) == 8
        assert required_bits(257) == 9
        with pytest.raises(ValueError):
            required_bits(0)

    def test_bit_prefix_known(self):
        # 0b10110100... -> first 4 bits = 0b1011 = 11
        assert bit_prefix(bytes([0b10110100]), 4) == 0b1011
        assert bit_prefix(bytes([0xFF, 0x00]), 12) == 0xFF0
        assert bit_prefix(b"\x00" * 4, 20) == 0

    def test_bit_prefix_zero_bits(self):
        assert bit_prefix(b"\xff", 0) == 0

    def test_bit_prefix_too_long(self):
        with pytest.raises(ValueError):
            bit_prefix(b"\x01", 9)

    def test_bit_prefix_negative(self):
        with pytest.raises(ValueError):
            bit_prefix(b"\x01", -1)

    @given(st.binary(min_size=4, max_size=20), st.integers(min_value=1, max_value=32))
    def test_bit_prefix_range(self, data, bits):
        value = bit_prefix(data, bits)
        assert 0 <= value < (1 << bits)

    @given(st.binary(min_size=4, max_size=20), st.integers(min_value=1, max_value=31))
    def test_bit_prefix_nesting(self, data, bits):
        # The (bits)-bit prefix is the (bits+1)-bit prefix shifted right.
        assert bit_prefix(data, bits) == bit_prefix(data, bits + 1) >> 1
