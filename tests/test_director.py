"""Tests for the director tier."""

import pytest

from repro.director import Director
from repro.director.metadata import FileIndexEntry, FileMetadata
from tests.conftest import make_fps


def entry(fps, path="/f"):
    return FileIndexEntry(FileMetadata(path, len(fps) * 8192), fps)


class TestJobLifecycle:
    def test_define_and_lookup(self):
        d = Director()
        job = d.define_job("nightly", "host1", ["/data"], schedule="daily at 2.00am")
        assert d.job_by_name("nightly") is job
        with pytest.raises(KeyError):
            d.job_by_name("nope")

    def test_complete_run_builds_chain(self):
        d = Director()
        job = d.define_job("j", "c", [])
        server = d.assign_backup(job)
        run = d.begin_run(job, timestamp=1.0, server=server)
        d.complete_run(run, [entry(make_fps(5))])
        assert d.chain(job).latest() is run
        assert d.metadata.fingerprints_for_run(run.run_id) == make_fps(5)

    def test_assign_unregistered_job_rejected(self):
        d = Director()
        from repro.director.jobs import JobObject

        with pytest.raises(KeyError):
            d.assign_backup(JobObject("ghost", "c", []))


class TestFilteringFingerprints:
    def test_first_run_has_no_filter(self):
        d = Director()
        job = d.define_job("j", "c", [])
        assert d.filtering_fingerprints(job) is None

    def test_previous_run_filters_next(self):
        # Section 5.1: Job_x(t_{n-1}) filters Job_x(t_n).
        d = Director()
        job = d.define_job("j", "c", [])
        fps1 = make_fps(10)
        run1 = d.begin_run(job, 1.0, d.assign_backup(job))
        d.complete_run(run1, [entry(fps1)])
        assert d.filtering_fingerprints(job) == fps1
        fps2 = make_fps(10, start=100)
        run2 = d.begin_run(job, 2.0, d.assign_backup(job))
        d.complete_run(run2, [entry(fps2)])
        assert d.filtering_fingerprints(job) == fps2

    def test_chains_are_per_job(self):
        d = Director()
        a = d.define_job("a", "c", [])
        b = d.define_job("b", "c", [])
        run = d.begin_run(a, 1.0, d.assign_backup(a))
        d.complete_run(run, [entry(make_fps(3))])
        assert d.filtering_fingerprints(b) is None


class TestDedup2Control:
    def test_policy_consulted(self):
        from repro.director.scheduler import Dedup2Policy

        d = Director(policy=Dedup2Policy(undetermined_threshold=5))
        assert not d.should_run_dedup2([4], [0])
        assert d.should_run_dedup2([5], [0])

    def test_record_dedup2(self):
        d = Director()
        d.record_dedup2()
        d.record_dedup2()
        assert d.dedup2_runs == 2
