"""Tests for locality-preserved caching (LPC)."""

import pytest

from repro.storage import LocalityPreservedCache
from tests.conftest import make_fps


class TestLookup:
    def test_miss_then_hit_after_prefetch(self):
        lpc = LocalityPreservedCache(4)
        fps = make_fps(10)
        assert lpc.lookup(fps[0]) is None
        lpc.insert_container(7, fps)
        for fp in fps:
            assert lpc.lookup(fp) == 7

    def test_group_prefetch_pays_for_neighbours(self):
        # The LPC bet: one container insert makes the whole group hit.
        lpc = LocalityPreservedCache(4)
        fps = make_fps(100)
        lpc.insert_container(1, fps)
        assert all(lpc.lookup(fp) == 1 for fp in fps)
        assert lpc.hits == 100
        assert lpc.prefetches == 1

    def test_hit_rate(self):
        lpc = LocalityPreservedCache(4)
        fps = make_fps(4)
        lpc.lookup(fps[0])  # miss
        lpc.insert_container(0, fps)
        lpc.lookup(fps[0])  # hit
        assert lpc.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        lpc = LocalityPreservedCache(4)
        lpc.lookup(make_fps(1)[0])
        lpc.reset_stats()
        assert lpc.misses == 0 and lpc.hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_order(self):
        lpc = LocalityPreservedCache(2)
        groups = [make_fps(3, start=i * 10) for i in range(3)]
        lpc.insert_container(0, groups[0])
        lpc.insert_container(1, groups[1])
        lpc.lookup(groups[0][0])  # touch container 0: now MRU
        lpc.insert_container(2, groups[2])  # evicts container 1
        assert 0 in lpc and 2 in lpc and 1 not in lpc
        assert lpc.lookup(groups[1][0]) is None
        assert lpc.evictions == 1

    def test_capacity_never_exceeded(self):
        lpc = LocalityPreservedCache(3)
        for i in range(10):
            lpc.insert_container(i, make_fps(2, start=i * 10))
        assert len(lpc) == 3

    def test_reinsert_refreshes_lru(self):
        lpc = LocalityPreservedCache(2)
        lpc.insert_container(0, make_fps(2))
        lpc.insert_container(1, make_fps(2, start=10))
        lpc.insert_container(0, make_fps(2))  # refresh, not duplicate
        lpc.insert_container(2, make_fps(2, start=20))  # evicts 1
        assert 0 in lpc and 1 not in lpc

    def test_eviction_clears_fingerprints(self):
        lpc = LocalityPreservedCache(1)
        fps0 = make_fps(3)
        lpc.insert_container(0, fps0)
        lpc.insert_container(1, make_fps(3, start=10))
        assert all(lpc.lookup(fp) is None for fp in fps0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LocalityPreservedCache(0)


class TestSislSynergy:
    def test_sequential_restore_hits_after_first_miss(self):
        """Restoring a SISL-ordered stream: one miss per container, then
        hits for every neighbour — the paper's >99 % elimination."""
        lpc = LocalityPreservedCache(8)
        containers = {cid: make_fps(50, start=cid * 100) for cid in range(4)}
        misses = 0
        for cid, fps in containers.items():
            for fp in fps:
                if lpc.lookup(fp) is None:
                    misses += 1
                    lpc.insert_container(cid, fps)
        assert misses == 4  # exactly one per container
        assert lpc.hit_rate > 0.97
