"""Tests for containers, the SISL writer and the container manager."""

import pytest

from repro.storage import ChunkRepository, Container, ContainerManager, ContainerWriter
from repro.storage.container import ChunkRecord, default_payload
from tests.conftest import make_fps


class TestContainerWriter:
    def test_add_and_seal(self):
        writer = ContainerWriter(capacity=4096)
        fps = make_fps(3)
        for i, fp in enumerate(fps):
            assert writer.add(fp, data=bytes([i]) * 100)
        container = writer.seal(7)
        assert container.container_id == 7
        assert container.fingerprints == fps
        assert container.data_bytes == 300

    def test_sisl_order_preserved(self):
        # Stream-informed segment layout: chunks keep stream order.
        writer = ContainerWriter(capacity=1 << 16)
        fps = make_fps(20)
        for fp in fps:
            writer.add(fp, data=b"z" * 64)
        assert writer.seal(0).fingerprints == fps

    def test_fits_accounts_for_metadata(self):
        writer = ContainerWriter(capacity=256)
        # Payload alone would fit, payload+record must not.
        assert not writer.fits(256)
        assert writer.fits(100)

    def test_reject_when_full(self):
        writer = ContainerWriter(capacity=512)
        fp = make_fps(1)[0]
        assert writer.add(fp, data=b"a" * 300)
        assert not writer.add(make_fps(1, start=5)[0], data=b"b" * 300)
        assert len(writer) == 1

    def test_virtual_mode(self):
        writer = ContainerWriter(capacity=4096, materialize=False)
        fp = make_fps(1)[0]
        writer.add(fp, size=1000)
        container = writer.seal(1)
        assert container.data is None
        assert container.data_bytes == 1000

    def test_virtual_payload_regenerated(self):
        writer = ContainerWriter(capacity=4096, materialize=False)
        fp = make_fps(1)[0]
        writer.add(fp, size=100)
        container = writer.seal(1)
        payload = container.get(fp)
        assert payload == default_payload(fp, 100)
        assert len(payload) == 100

    def test_materialized_requires_data(self):
        writer = ContainerWriter(capacity=4096, materialize=True)
        with pytest.raises(ValueError):
            writer.add(make_fps(1)[0], size=100)

    def test_requires_data_or_size(self):
        writer = ContainerWriter(capacity=4096)
        with pytest.raises(ValueError):
            writer.add(make_fps(1)[0])

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            ContainerWriter(capacity=16)


class TestContainer:
    def _container(self):
        writer = ContainerWriter(capacity=4096)
        fps = make_fps(4)
        for i, fp in enumerate(fps):
            writer.add(fp, data=bytes([65 + i]) * (50 + i))
        return writer.seal(3), fps

    def test_membership_and_get(self):
        container, fps = self._container()
        assert fps[0] in container
        assert make_fps(1, start=99)[0] not in container
        assert container.get(fps[1]) == b"B" * 51

    def test_record_for_missing(self):
        container, _ = self._container()
        with pytest.raises(KeyError):
            container.record_for(make_fps(1, start=99)[0])

    def test_offsets_describe_data_section(self):
        container, fps = self._container()
        for rec in container.records:
            assert container.data[rec.offset : rec.offset + rec.size] == container.get(
                rec.fingerprint
            )

    def test_serialize_roundtrip(self):
        container, fps = self._container()
        blob = container.serialize()
        assert len(blob) == container.capacity
        restored = Container.deserialize(3, blob, capacity=4096)
        assert restored.records == container.records
        for fp in fps:
            assert restored.get(fp) == container.get(fp)

    def test_serialize_virtual_rejected(self):
        writer = ContainerWriter(capacity=4096, materialize=False)
        writer.add(make_fps(1)[0], size=10)
        with pytest.raises(ValueError):
            writer.seal(0).serialize()

    def test_self_described(self):
        # The metadata section alone identifies every chunk (Section 3.4):
        # that is what index reconstruction relies on.
        container, fps = self._container()
        assert [r.fingerprint for r in container.records] == fps
        assert container.metadata_bytes > 0


class TestContainerManager:
    def test_store_assigns_sequential_ids(self):
        repo = ChunkRepository()
        mgr = ContainerManager(repo)
        ids = []
        for i in range(3):
            writer = ContainerWriter(capacity=4096)
            writer.add(make_fps(1, start=i * 10)[0], data=b"x" * 100)
            ids.append(mgr.store(writer).container_id)
        assert ids == [0, 1, 2]
        assert mgr.containers_written == 3
        assert mgr.bytes_written == 3 * 4096

    def test_fetch_counts(self):
        repo = ChunkRepository()
        mgr = ContainerManager(repo)
        writer = ContainerWriter(capacity=4096)
        fp = make_fps(1)[0]
        writer.add(fp, data=b"q" * 10)
        cid = mgr.store(writer).container_id
        fetched = mgr.fetch(cid)
        assert fetched.get(fp) == b"q" * 10
        assert mgr.containers_read == 1


class TestDefaultPayload:
    def test_deterministic_and_sized(self):
        fp = make_fps(1)[0]
        assert default_payload(fp, 100) == default_payload(fp, 100)
        assert len(default_payload(fp, 12345)) == 12345

    def test_distinct_per_fingerprint(self):
        a, b = make_fps(2)
        assert default_payload(a, 64) != default_payload(b, 64)

    def test_zero_size(self):
        assert default_payload(make_fps(1)[0], 0) == b""
