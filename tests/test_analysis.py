"""Tests for the analysis models: overflow bounds, utilization, capacity."""

import pytest

from repro.analysis import (
    DebarCapacityModel,
    DdfsCapacityModel,
    UtilizationSimulator,
    WorkloadRates,
    index_supported_capacity,
    pr_c_upper_bound,
    random_lookup_speed,
    random_update_speed,
    sil_efficiency,
    sil_time,
    siu_efficiency,
    siu_time,
    utilization_for_target_bound,
)
from repro.analysis.overflow import TABLE1_BUCKETS, _adjacent_full_runs, bucket_parameters
from repro.util import GB, KB, TB

import numpy as np


class TestFormulaOne:
    def test_bucket_parameters_paper_example(self):
        # Section 4.2: an 8 KB bucket -> b = 320, n = 26 for 512 GB.
        assert bucket_parameters(8 * KB) == (320, 26)

    def test_bucket_parameters_all_table1_sizes(self):
        for size in TABLE1_BUCKETS:
            b, n = bucket_parameters(size)
            assert b * (1 << n) * 25 <= 512 * GB  # entries fit the index

    def test_bound_monotone_in_eta(self):
        b, n = bucket_parameters(8 * KB)
        bounds = [pr_c_upper_bound(b, eta, n) for eta in (0.5, 0.7, 0.8, 0.9)]
        assert bounds == sorted(bounds)

    def test_bound_small_at_paper_etas(self):
        # At each Table 1 (bucket, eta) point the bound must be small (the
        # paper reports ~1-2 %; our exact Poisson tail is tighter).
        table1 = [(512, 0.35), (1 * KB, 0.45), (2 * KB, 0.55), (4 * KB, 0.70),
                  (8 * KB, 0.80), (16 * KB, 0.85), (32 * KB, 0.90), (64 * KB, 0.92)]
        for size, eta in table1:
            b, n = bucket_parameters(size)
            assert pr_c_upper_bound(b, eta, n) < 0.03

    def test_bound_explodes_past_trigger_region(self):
        b, n = bucket_parameters(8 * KB)
        assert pr_c_upper_bound(b, 0.95, n) > 0.5

    def test_utilization_solver_brackets_paper_value(self):
        b, n = bucket_parameters(8 * KB)
        eta = utilization_for_target_bound(b, n, target=0.02)
        assert 0.75 < eta < 0.95
        assert pr_c_upper_bound(b, eta, n) < 0.02

    def test_larger_buckets_tolerate_higher_utilization(self):
        etas = []
        for size in (512, 4 * KB, 32 * KB):
            b, n = bucket_parameters(size)
            etas.append(utilization_for_target_bound(b, n))
        assert etas == sorted(etas)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pr_c_upper_bound(0, 0.5, 20)
        with pytest.raises(ValueError):
            pr_c_upper_bound(320, 1.5, 20)
        with pytest.raises(ValueError):
            utilization_for_target_bound(320, 20, target=2.0)


class TestUtilizationSimulator:
    def test_exact_and_fast_agree(self):
        results_exact = [
            UtilizationSimulator(10, 40, seed=s).run_exact().eta for s in range(3)
        ]
        results_fast = [
            UtilizationSimulator(10, 40, seed=100 + s).run_fast().eta for s in range(3)
        ]
        assert abs(np.mean(results_exact) - np.mean(results_fast)) < 0.05

    def test_eta_grows_with_bucket_capacity(self):
        # Table 2's main trend: bigger buckets -> higher utilization.
        small = UtilizationSimulator(10, 20, seed=1).run_fast()
        large = UtilizationSimulator(10, 320, seed=1).run_fast()
        assert large.eta > small.eta + 0.2

    def test_result_fields_consistent(self):
        r = UtilizationSimulator(10, 40, seed=2).run_fast()
        assert 0 < r.eta < 1
        assert 0 <= r.rho < 0.2
        assert r.inserted == pytest.approx(r.eta * r.capacity)
        # The paper found no 4-adjacent runs in 400 (much larger) tests;
        # batched insertion at this tiny scale can occasionally form one.
        assert r.n4 <= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UtilizationSimulator(1, 40)
        with pytest.raises(ValueError):
            UtilizationSimulator(10, 0)
        with pytest.raises(ValueError):
            UtilizationSimulator(10, 40).run_fast(batch_fraction=0.5)

    def test_adjacent_run_counter(self):
        # Buckets are circular: the trailing TTTT run joins the leading TTT.
        full = np.array([True, True, True, False, True, False, True, True, True, True])
        n3, n4 = _adjacent_full_runs(full)
        assert (n3, n4) == (0, 1)
        linear = np.array([False, True, True, True, False, True, True, True, True, False])
        assert _adjacent_full_runs(linear) == (1, 1)
        assert _adjacent_full_runs(np.zeros(8, dtype=bool)) == (0, 0)
        assert _adjacent_full_runs(np.ones(8, dtype=bool)) == (0, 1)

    def test_adjacent_run_counter_wraps(self):
        # Full run crossing the circular boundary: positions 7,0,1.
        full = np.array([True, True, False, False, False, False, False, True])
        assert _adjacent_full_runs(full) == (1, 0)


class TestFigure10And11Laws:
    def test_sil_scales_linearly_with_index(self):
        assert sil_time(64 * GB) == pytest.approx(2 * sil_time(32 * GB), rel=0.01)

    def test_siu_costs_more_than_sil(self):
        assert siu_time(32 * GB) > sil_time(32 * GB)

    def test_efficiency_paper_points(self):
        assert sil_efficiency(32 * GB, 3 * GB) == pytest.approx(917_000, rel=0.1)
        assert siu_efficiency(32 * GB, 3 * GB) == pytest.approx(376_000, rel=0.1)
        assert sil_efficiency(512 * GB, 1 * GB) == pytest.approx(19_660, rel=0.1)
        assert siu_efficiency(512 * GB, 1 * GB) == pytest.approx(7_884, rel=0.1)

    def test_random_speeds(self):
        assert random_lookup_speed() == pytest.approx(522, rel=0.02)
        assert random_update_speed() == pytest.approx(270, rel=0.05)

    def test_speedup_factors_match_paper(self):
        # "a speedup factor of 1757 and 1392 respectively" (Section 6.1.3).
        sil_speedup = sil_efficiency(32 * GB, 3 * GB) / random_lookup_speed()
        siu_speedup = siu_efficiency(32 * GB, 3 * GB) / random_update_speed()
        assert sil_speedup == pytest.approx(1757, rel=0.12)
        assert siu_speedup == pytest.approx(1392, rel=0.12)

    def test_supported_capacity_rule(self):
        # 32 GB index -> 2^26 * 20 entries -> 10 TB of 8 KB chunks.
        assert index_supported_capacity(32 * GB) == pytest.approx(10 * TB, rel=0.01)


class TestFigure12Models:
    def test_debar_throughput_declines_with_index_size(self):
        model = DebarCapacityModel()
        totals = [model.throughput(s * GB)[0] for s in (32, 128, 512)]
        assert totals == sorted(totals, reverse=True)

    def test_debar_total_above_dedup2(self):
        total, dedup2 = DebarCapacityModel().throughput(32 * GB)
        assert total > dedup2

    def test_debar_32gb_near_paper(self):
        total, dedup2 = DebarCapacityModel().throughput(32 * GB)
        # Paper: ~330 MB/s total, ~197 MB/s dedup-2 at the 32 GB point.
        assert total / (1 << 20) == pytest.approx(330, rel=0.15)
        assert dedup2 / (1 << 20) == pytest.approx(197, rel=0.15)

    def test_bigger_cache_restores_throughput(self):
        small = DebarCapacityModel(cache_memory_bytes=1 * GB)
        large = DebarCapacityModel(cache_memory_bytes=2 * GB)
        assert large.throughput(512 * GB)[0] > small.throughput(512 * GB)[0]

    def test_ddfs_collapse_past_8tb(self):
        model = DdfsCapacityModel()
        chunks = lambda tb: tb * TB / 8192
        t8 = model.throughput(chunks(8))
        t16 = model.throughput(chunks(16))
        assert t16 < 0.5 * t8  # the Figure 12 cliff

    def test_ddfs_healthy_at_low_fill(self):
        # Paper: daily >155 MB/s, cumulative ~189 MB/s while under 8 TB.
        model = DdfsCapacityModel()
        t = model.throughput(2 * TB / 8192)
        assert 155 < t / (1 << 20) < 210

    def test_rates_derived_fields(self):
        rates = WorkloadRates()
        assert rates.log_bytes_per_day == pytest.approx(rates.logical_bytes_per_day / 3.6)
        assert rates.new_fps_per_day < rates.undetermined_fps_per_day
