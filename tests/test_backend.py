"""Tests for the storage-backend abstraction: local disk, the simulated
object store (request model, batching, retry/backoff, fault injection,
the cross-process _faults.json control file), and the metadata cache."""

import json

import pytest

from repro.backend.base import (
    ObjectMissingError,
    RetryExhaustedError,
    StorageBackend,
    ThrottledError,
    TransientBackendError,
)
from repro.backend.cache import LruMetaCache, NullMetaCache
from repro.backend.localdisk import LocalDiskBackend
from repro.backend.objectstore import (
    FAULTS_FILE,
    BackendFaultRule,
    ObjectStoreBackend,
    RequestProfile,
)
from repro.telemetry.registry import MetricsRegistry


def make_object_store(tmp_path, **kw):
    kw.setdefault("sleep", lambda s: None)
    kw.setdefault("registry", MetricsRegistry())
    return ObjectStoreBackend(tmp_path / "bucket", **kw)


class TestErrorTaxonomy:
    def test_missing_is_keyerror_compatible(self):
        # Repository code catches KeyError for "container not stored";
        # any backend's miss must keep satisfying that contract.
        assert issubclass(ObjectMissingError, KeyError)

    def test_throttle_is_transient(self):
        assert issubclass(ThrottledError, TransientBackendError)

    def test_retry_exhausted_is_oserror(self):
        # Failover readers and the CLI treat a dead backend as an I/O
        # failure; RetryExhaustedError must flow through those paths.
        assert issubclass(RetryExhaustedError, OSError)
        assert not issubclass(RetryExhaustedError, TransientBackendError)

    def test_missing_str_readable(self):
        err = ObjectMissingError("no object 'k'")
        assert str(err) == "no object 'k'"  # not KeyError's quoted repr


class TestBackendContract:
    """Both implementations answer the same six verbs identically."""

    @pytest.fixture(params=["local", "object"])
    def backend(self, request, tmp_path):
        if request.param == "local":
            return LocalDiskBackend(tmp_path / "root", registry=MetricsRegistry())
        return make_object_store(tmp_path)

    def test_put_get_roundtrip(self, backend):
        backend.put("a/b.bin", b"payload")
        assert backend.get("a/b.bin") == b"payload"

    def test_get_range(self, backend):
        backend.put("k", b"0123456789")
        assert backend.get_range("k", 3, 4) == b"3456"

    def test_get_ranges(self, backend):
        backend.put("k", b"0123456789")
        assert backend.get_ranges("k", [(0, 2), (8, 2)]) == [b"01", b"89"]
        assert backend.get_ranges("k", []) == []

    def test_missing_object(self, backend):
        with pytest.raises(ObjectMissingError):
            backend.get("nope")
        with pytest.raises(ObjectMissingError):
            backend.get_range("nope", 0, 1)
        with pytest.raises(ObjectMissingError):
            backend.delete("nope")
        with pytest.raises(ObjectMissingError):
            backend.stat("nope")

    def test_delete(self, backend):
        backend.put("k", b"x")
        backend.delete("k")
        assert not backend.exists("k")

    def test_list_keys_sorted_with_prefix(self, backend):
        for key in ("b.ctr", "a.ctr", "sub/c.ctr"):
            backend.put(key, b"x")
        assert backend.list_keys() == ["a.ctr", "b.ctr", "sub/c.ctr"]
        assert backend.list_keys(prefix="sub/") == ["sub/c.ctr"]

    def test_stat(self, backend):
        backend.put("k", b"12345")
        st = backend.stat("k")
        assert st.key == "k" and st.size == 5

    def test_overwrite_is_idempotent_put(self, backend):
        backend.put("k", b"old")
        backend.put("k", b"new")
        assert backend.get("k") == b"new"

    def test_unsafe_keys_rejected(self, backend):
        for key in ("", "/abs", "../escape", "a/../b"):
            with pytest.raises(ValueError):
                backend.put(key, b"x")

    def test_default_get_ranges_loops(self, tmp_path):
        class Minimal(StorageBackend):
            def get_range(self, key, offset, length):
                return b"0123456789"[offset : offset + length]

        assert Minimal().get_ranges("k", [(1, 2), (5, 3)]) == [b"12", b"567"]


class TestRequestModel:
    def test_each_verb_is_one_request(self, tmp_path):
        be = make_object_store(tmp_path)
        be.put("k", b"x" * 100)
        be.get("k")
        be.get_range("k", 0, 10)
        be.stat("k")
        assert be.requests_issued == 4

    def test_get_ranges_is_one_request(self, tmp_path):
        be = make_object_store(tmp_path)
        be.put("k", b"x" * 1000)
        before = be.requests_issued
        be.get_ranges("k", [(0, 10), (100, 10), (900, 10)])
        assert be.requests_issued == before + 1

    def test_simulated_seconds_accumulate(self, tmp_path):
        profile = RequestProfile(
            base_latency_s=0.030, throughput_bps=1e6, range_overhead_s=0.002
        )
        be = make_object_store(tmp_path, profile=profile)
        be.put("k", b"x" * 500_000)
        base = be.simulated_seconds
        # put: 30ms latency + 0.5s transfer
        assert base == pytest.approx(0.030 + 0.5)
        be.get_range("k", 0, 100_000)
        assert be.simulated_seconds - base == pytest.approx(0.030 + 0.1)

    def test_batched_ranges_cheaper_than_single_gets(self, tmp_path):
        a = make_object_store(tmp_path / "a", profile=RequestProfile())
        b = make_object_store(tmp_path / "b", profile=RequestProfile())
        a.put("k", b"x" * 10_000)
        b.put("k", b"x" * 10_000)
        ranges = [(i * 1000, 500) for i in range(8)]
        sa, sb = a.simulated_seconds, b.simulated_seconds
        a.get_ranges("k", ranges)
        for off, ln in ranges:
            b.get_range("k", off, ln)
        assert (a.simulated_seconds - sa) < (b.simulated_seconds - sb)
        assert a.requests_issued == b.requests_issued - len(ranges) + 1

    def test_telemetry_counters(self, tmp_path):
        registry = MetricsRegistry()
        be = make_object_store(tmp_path, registry=registry)
        be.put("k", b"x" * 64)
        be.get("k")
        be.get_ranges("k", [(0, 8), (32, 8)])
        assert registry.value("storage.requests", backend="object", op="put") == 1
        assert registry.value("storage.requests", backend="object", op="get") == 1
        assert (
            registry.value("storage.requests", backend="object", op="get_ranges")
            == 1
        )
        assert registry.value("storage.batched_gets", backend="object") == 1
        assert registry.value("storage.single_gets", backend="object") == 1
        assert registry.value("storage.bytes_stored", backend="object") == 64
        assert registry.value("storage.bytes_fetched", backend="object") == 64 + 16

    def test_torn_put_never_listed(self, tmp_path):
        be = make_object_store(tmp_path)
        be.put("k.ctr", b"x")
        (be.root / "torn.ctr.tmp").write_bytes(b"partial")
        assert be.list_keys() == ["k.ctr"]


class TestFaultInjection:
    def test_transient_fault_retried(self, tmp_path):
        registry = MetricsRegistry()
        be = make_object_store(
            tmp_path, registry=registry,
            faults=[BackendFaultRule(op="get", kind="transient", times=2)],
        )
        be.put("k", b"data")
        assert be.get("k") == b"data"  # two failures absorbed
        assert registry.value("storage.retries", backend="object") == 2

    def test_throttle_retried_and_counted(self, tmp_path):
        registry = MetricsRegistry()
        be = make_object_store(
            tmp_path, registry=registry,
            faults=[BackendFaultRule(op="get_ranges", kind="throttle", times=1)],
        )
        be.put("k", b"0123456789")
        assert be.get_ranges("k", [(0, 2), (5, 2)]) == [b"01", b"56"]
        assert registry.value("storage.throttled", backend="object") == 1

    def test_retry_exhaustion(self, tmp_path):
        registry = MetricsRegistry()
        be = make_object_store(
            tmp_path, registry=registry, attempts=3,
            faults=[BackendFaultRule(op="get", kind="transient", times=None)],
        )
        be.put("k", b"data")
        with pytest.raises(RetryExhaustedError):
            be.get("k")
        assert registry.value("storage.errors", backend="object") == 1
        # Every attempt was a billable request.
        assert (
            registry.value("storage.requests", backend="object", op="get") == 3
        )

    def test_backoff_delays_grow(self, tmp_path):
        delays = []
        be = ObjectStoreBackend(
            tmp_path / "bucket", sleep=delays.append, attempts=4,
            registry=MetricsRegistry(),
            faults=[BackendFaultRule(op="get", kind="transient", times=None)],
        )
        be.put("k", b"x")
        with pytest.raises(RetryExhaustedError):
            be.get("k")
        assert len(delays) == 3
        assert delays[0] < delays[1] < delays[2]
        assert all(d <= be.backoff_max_s for d in delays)

    def test_every_nth_request_throttled(self, tmp_path):
        registry = MetricsRegistry()
        be = make_object_store(
            tmp_path, registry=registry,
            faults=[BackendFaultRule(op="get", kind="throttle", every=2, times=None)],
        )
        be.put("k", b"x")
        for _ in range(4):
            assert be.get("k") == b"x"  # every 2nd attempt sheds, retry covers
        assert registry.value("storage.throttled", backend="object") == 3
        assert be.requests_issued == 1 + 4 + 3  # put + gets + retried attempts

    def test_fault_after_skips_leading_requests(self, tmp_path):
        be = make_object_store(
            tmp_path, attempts=1,
            faults=[BackendFaultRule(op="get", kind="transient", after=2)],
        )
        be.put("k", b"x")
        assert be.get("k") == b"x"
        assert be.get("k") == b"x"
        with pytest.raises(RetryExhaustedError):
            be.get("k")  # third get fires the rule; attempts=1 exhausts

    def test_missing_object_is_not_retried(self, tmp_path):
        be = make_object_store(tmp_path)
        with pytest.raises(ObjectMissingError):
            be.get("nope")
        assert be.requests_issued == 1

    def test_faults_file_loaded_cross_process(self, tmp_path):
        bucket = tmp_path / "bucket"
        bucket.mkdir()
        (bucket / FAULTS_FILE).write_text(json.dumps({
            "rules": [{"op": "get", "kind": "transient", "times": 1}],
        }))
        registry = MetricsRegistry()
        be = ObjectStoreBackend(
            bucket, sleep=lambda s: None, registry=registry
        )
        be.put("k", b"x")
        assert be.get("k") == b"x"
        assert registry.value("storage.retries", backend="object") == 1

    def test_faults_file_never_listed_as_object(self, tmp_path):
        bucket = tmp_path / "bucket"
        bucket.mkdir()
        (bucket / FAULTS_FILE).write_text(json.dumps({"rules": []}))
        be = ObjectStoreBackend(bucket, registry=MetricsRegistry())
        be.put("k.ctr", b"x")
        assert be.list_keys() == ["k.ctr"]
        with pytest.raises(ValueError):
            be.get(FAULTS_FILE)  # reserved keyspace


class TestMetaCache:
    def test_null_cache_never_hits(self):
        cache = NullMetaCache()
        cache.put(1, "meta")
        assert cache.get(1) is None
        assert cache.hit_rate == 0.0

    def test_lru_hit_and_miss(self):
        cache = LruMetaCache(capacity=4, registry=MetricsRegistry())
        assert cache.get(1) is None
        cache.put(1, "m1")
        assert cache.get(1) == "m1"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_evicts_least_recent(self):
        cache = LruMetaCache(capacity=2, registry=MetricsRegistry())
        cache.put(1, "a")
        cache.put(2, "b")
        cache.get(1)       # 1 becomes most recent
        cache.put(3, "c")  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_invalidate_and_clear(self):
        cache = LruMetaCache(capacity=4, registry=MetricsRegistry())
        cache.put(1, "a")
        cache.invalidate(1)
        assert cache.get(1) is None
        cache.put(2, "b")
        cache.clear()
        assert len(cache) == 0

    def test_telemetry(self):
        registry = MetricsRegistry()
        cache = LruMetaCache(capacity=2, registry=registry)
        cache.get(9)
        cache.put(9, "m")
        cache.get(9)
        assert registry.value("storage.meta_cache_hits") == 1
        assert registry.value("storage.meta_cache_misses") == 1

    def test_status(self):
        cache = LruMetaCache(capacity=3, registry=MetricsRegistry())
        cache.put(1, "a")
        status = cache.status()
        assert status["entries"] == 1 and status["capacity"] == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruMetaCache(capacity=0, registry=MetricsRegistry())
