"""Tests for the consistency auditor (:mod:`repro.audit`).

Each invariant sweep is exercised both ways: a healthy system audits
clean, and every seeded fault — including hand-crafted reproductions of
the two pre-fix ``disk_index`` bugs (the non-cascading overflow pull-back
and the capacity scaling that silently migrated a file-backed index to
memory) — is pinpointed with the right finding code.
"""

import pytest

from repro.audit import (
    ERROR,
    WARNING,
    AuditReport,
    audit_cluster,
    audit_index,
    audit_restorability,
    audit_store,
    audit_system,
    audit_tpds,
)
from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import fingerprint as sha1
from repro.core.tpds import TwoPhaseDeduplicator
from repro.server import BackupServerConfig
from repro.storage import (
    ChunkRepository,
    ContainerManager,
    ContainerWriter,
    MemoryBlockStore,
)
from repro.system import DebarCluster, DebarSystem
from tests.conftest import make_fps


def fps_for_bucket(index, bucket, count, start=0):
    """Fingerprints homed at a specific bucket of ``index``."""
    out = []
    offset = start
    while len(out) < count:
        batch = make_fps(200, start=offset)
        out.extend(fp for fp in batch if index.bucket_number(fp) == bucket)
        offset += 200
    return out[:count]


def make_tpds(**kwargs):
    index = DiskIndex(kwargs.pop("n_bits", 8), bucket_bytes=512)
    repo = ChunkRepository()
    tpds = TwoPhaseDeduplicator(
        index, repo, filter_capacity=4096, container_bytes=64 * 1024, **kwargs
    )
    return tpds, repo


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


class TestAuditReport:
    def test_empty_report_passes(self):
        report = AuditReport()
        assert report.ok
        assert report.summary().startswith("audit PASS")

    def test_errors_fail_warnings_do_not(self):
        report = AuditReport()
        report.add("some-warning", "soft", severity=WARNING)
        assert report.ok
        report.add("some-error", "hard")
        assert not report.ok
        assert [f.code for f in report.errors] == ["some-error"]
        assert [f.code for f in report.warnings] == ["some-warning"]
        assert report.findings[1].severity == ERROR

    def test_codes_and_has(self):
        report = AuditReport()
        report.add("a", "1")
        report.add("b", "2")
        report.add("a", "3")
        assert report.codes() == ["a", "b"]
        assert report.has("a") and not report.has("c")

    def test_merge_folds_findings_and_counters(self):
        left, right = AuditReport(), AuditReport()
        left.count("entries", 3)
        right.count("entries", 4)
        right.add("x", "boom")
        left.merge(right)
        assert left.counters["entries"] == 7
        assert left.has("x")

    def test_summary_lists_findings(self):
        report = AuditReport()
        report.add("entry-stranded", "bucket 5")
        text = report.summary()
        assert "audit FAIL: 1 error(s)" in text
        assert "entry-stranded" in text


class TestAuditIndex:
    def test_clean_index_passes(self):
        index = DiskIndex(6, bucket_bytes=512)
        for i, fp in enumerate(make_fps(200)):
            index.insert(fp, i)
        report = audit_index(index)
        assert report.ok
        assert report.counters["entries"] == 200
        assert report.counters["buckets"] == 64

    def test_legal_overflow_not_flagged(self):
        index = DiskIndex(4, bucket_bytes=512)
        for i, fp in enumerate(fps_for_bucket(index, 5, index.bucket_capacity + 3)):
            index.insert(fp, i)
        assert audit_index(index).ok

    def test_detects_stranded_entry(self):
        # An overflow entry whose home bucket is NOT full: lookup never
        # probes the neighbour, so the entry is silently unreachable.
        index = DiskIndex(4, bucket_bytes=512)
        fp = fps_for_bucket(index, 5, 1)[0]
        neighbour = index.read_bucket(6)
        neighbour.entries.append((fp, 1))
        index.write_bucket(neighbour)
        assert index.lookup(fp) is None  # the silent false negative
        report = audit_index(index)
        assert not report.ok
        assert report.has("entry-stranded")

    def test_detects_misplaced_entry(self):
        # Two buckets from home: illegal regardless of fullness.
        index = DiskIndex(4, bucket_bytes=512)
        fp = fps_for_bucket(index, 5, 1)[0]
        far = index.read_bucket(8)
        far.entries.append((fp, 1))
        index.write_bucket(far)
        report = audit_index(index)
        assert report.has("entry-misplaced")

    def test_detects_duplicate_entry(self):
        index = DiskIndex(4, bucket_bytes=512)
        fp = fps_for_bucket(index, 5, 1)[0]
        index.insert(fp, 1)
        other = index.read_bucket(6)
        other.entries.append((fp, 2))
        index.write_bucket(other)
        report = audit_index(index)
        assert report.has("entry-duplicate")

    def test_detects_foreign_entry(self):
        part = DiskIndex(6, bucket_bytes=512).split(2)[0]
        foreign = next(fp for fp in make_fps(100) if not part.owns(fp))
        bucket = part.read_bucket(0)
        bucket.entries.append((foreign, 1))
        part.write_bucket(bucket)
        report = audit_index(part)
        assert report.has("entry-foreign")
        # Part findings carry the part label so cluster sweeps stay readable.
        assert any("part" in f.detail for f in report.findings)

    def test_detects_count_cache_drift(self):
        index = DiskIndex(4, bucket_bytes=512)
        for i, fp in enumerate(make_fps(30)):
            index.insert(fp, i)
        index._counts[3] += 1  # simulate a cache/header divergence
        report = audit_index(index)
        assert report.has("count-cache")

    def test_old_pull_back_bug_detected(self):
        """Replay the pre-fix single-step pull-back on a delete chain and
        show the auditor pinpoints the stranded entry it leaves behind."""
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        for i, fp in enumerate(fps_for_bucket(index, 7, cap, start=70_000)):
            index.insert(fp, i)  # bucket 7 full: blocks overflow 6 -> 7
        for i, fp in enumerate(fps_for_bucket(index, 6, cap, start=60_000)):
            index.insert(fp, i)
        spilled_from_6 = fps_for_bucket(index, 6, 1, start=90_000)[0]
        index.insert(spilled_from_6, 99)  # lands in bucket 5 (7 is full)
        for i, fp in enumerate(fps_for_bucket(index, 5, cap - 1, start=50_000)):
            index.insert(fp, i)  # bucket 5 now full
        spilled_from_5 = fps_for_bucket(index, 5, 1, start=95_000)[0]
        index.insert(spilled_from_5, 98)  # lands in bucket 4 (6 is full)
        assert index.lookup(spilled_from_5) == 98

        # Old delete: remove one entry homed at 6 from bucket 6, then pull
        # exactly one overflow back WITHOUT cascading.
        victim = next(
            fp for fp, _ in index.read_bucket(6).entries
            if index.bucket_number(fp) == 6
        )
        bucket6 = index.read_bucket(6)
        bucket6.entries = [(fp, c) for fp, c in bucket6.entries if fp != victim]
        index.write_bucket(bucket6)
        bucket5 = index.read_bucket(5)
        i = next(
            i for i, (fp, _) in enumerate(bucket5.entries)
            if index.bucket_number(fp) == 6
        )
        pulled = bucket5.entries.pop(i)  # bucket 5 drops below capacity...
        index.write_bucket(bucket5)
        bucket6 = index.read_bucket(6)
        bucket6.entries.append(pulled)
        index.write_bucket(bucket6)
        # ...stranding the entry homed at 5 that overflowed into bucket 4.
        assert index.lookup(spilled_from_5) is None
        report = audit_index(index)
        assert not report.ok
        assert report.has("entry-stranded")

    def test_fixed_delete_keeps_audit_clean(self):
        """The same delete through the real (cascading) path audits clean."""
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        for i, fp in enumerate(fps_for_bucket(index, 7, cap, start=70_000)):
            index.insert(fp, i)
        for i, fp in enumerate(fps_for_bucket(index, 6, cap, start=60_000)):
            index.insert(fp, i)
        index.insert(fps_for_bucket(index, 6, 1, start=90_000)[0], 99)
        for i, fp in enumerate(fps_for_bucket(index, 5, cap - 1, start=50_000)):
            index.insert(fp, i)
        spilled_from_5 = fps_for_bucket(index, 5, 1, start=95_000)[0]
        index.insert(spilled_from_5, 98)
        victim = next(
            fp for fp, _ in index.read_bucket(6).entries
            if index.bucket_number(fp) == 6
        )
        assert index.delete(victim)
        assert index.lookup(spilled_from_5) == 98
        assert audit_index(index).ok


class TestAuditStore:
    def _store_one(self, repo, fp, size=100):
        writer = ContainerWriter(64 * 1024, materialize=False)
        writer.add(fp, size=size)
        return ContainerManager(repo).store(writer).container_id

    def test_clean_tpds_passes(self):
        tpds, _ = make_tpds()
        tpds.dedup1_backup(stream(make_fps(80)))
        tpds.dedup2()
        report = audit_tpds(tpds)
        assert report.ok
        assert report.counters["chunks"] == 80

    def test_detects_orphaned_chunk(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        self._store_one(repo, fp)
        report = audit_store(tpds.index, repo, tpds.checking)
        assert not report.ok
        assert report.has("chunk-orphaned")

    def test_detects_dangling_index_entry(self):
        tpds, repo = make_tpds()
        tpds.index.insert(make_fps(1)[0], 7)
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.has("index-dangling")

    def test_detects_index_mismatch(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        cid = self._store_one(repo, fp)
        tpds.index.insert(fp, cid + 17)
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.has("index-mismatch")

    def test_detects_duplicate_store(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        cid = self._store_one(repo, fp)
        self._store_one(repo, fp)
        tpds.index.insert(fp, cid)
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.has("duplicate-store")

    def test_pending_in_checking_is_legal(self):
        # The SIL -> SIU window: stored, not yet indexed, but covered.
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        cid = self._store_one(repo, fp)
        tpds.checking.append({fp: cid})
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.ok
        assert report.counters["checking_pending"] == 1

    def test_detects_dangling_checking_entry(self):
        tpds, repo = make_tpds()
        tpds.checking.append({make_fps(1)[0]: 42})
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.has("checking-dangling")

    def test_stale_checking_entry_is_warning(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        cid = self._store_one(repo, fp)
        tpds.index.insert(fp, cid)
        tpds.checking.append({fp: cid})  # registered but never drained
        report = audit_store(tpds.index, repo, tpds.checking)
        assert report.ok  # warning severity: harmless but worth surfacing
        assert report.has("checking-stale")
        assert report.warnings

    def test_rebuild_clears_orphans(self):
        tpds, repo = make_tpds()
        tpds.dedup1_backup(stream(make_fps(50)))
        tpds.dedup2()
        # Lose the index entirely (the disaster recover_index handles).
        tpds.index = DiskIndex(8, bucket_bytes=512)
        tpds.checking = CheckingFile()
        assert audit_tpds(tpds).has("chunk-orphaned")
        tpds.index = DiskIndex.rebuild_from_entries(
            repo.iter_index_entries(), 8, bucket_bytes=512
        )
        assert audit_tpds(tpds).ok


class TestAuditRestorability:
    def test_unresolvable_fingerprint_flagged(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        report = audit_restorability([("r1", [fp])], tpds.index.lookup, repo)
        assert report.has("chunk-unrestorable")

    def test_missing_container_flagged(self):
        tpds, repo = make_tpds()
        fp = make_fps(1)[0]
        tpds.index.insert(fp, 12345)
        report = audit_restorability([("r1", [fp])], tpds.index.lookup, repo)
        assert report.has("chunk-unrestorable")

    def test_deep_verifies_materialized_payloads(self):
        tpds, repo = make_tpds(materialize=True)
        payloads = [b"chunk-%04d" % i * 50 for i in range(20)]
        chunks = [(sha1(data), len(data), data) for data in payloads]
        tpds.dedup1_backup(chunks)
        tpds.dedup2()
        report = audit_restorability(
            [("r1", [fp for fp, _, _ in chunks])],
            tpds.index.lookup,
            repo,
            deep=True,
        )
        assert report.ok
        assert report.counters["payloads_verified"] == 20

    def test_deep_detects_corrupt_payload(self):
        tpds, repo = make_tpds(materialize=True)
        data = b"precious bytes" * 100
        fp = sha1(data)
        tpds.dedup1_backup([(fp, len(data), data)])
        tpds.dedup2()
        cid = tpds.index.lookup(fp)
        container = repo.fetch(cid)
        container.data = bytes(len(container.data))  # zero the payload region
        report = audit_restorability(
            [("r1", [fp])], tpds.index.lookup, repo, deep=True
        )
        assert report.has("payload-corrupt")


class TestSystemAudits:
    def test_debar_system_audits_clean(self):
        system = DebarSystem()
        job = system.define_job("j", "client")
        system.backup_stream(job, stream(make_fps(120)))
        system.run_dedup2(force_siu=True)
        report = system.audit()
        assert report.ok
        assert report.counters["runs"] == 1
        assert report.counters["run_fingerprints"] == 120

    def test_system_audit_finds_lost_entries(self):
        system = DebarSystem()
        job = system.define_job("j", "client")
        fps = make_fps(60)
        system.backup_stream(job, stream(fps))
        system.run_dedup2(force_siu=True)
        tpds = system.server.tpds
        assert tpds.index.delete(fps[7])
        report = system.audit()
        assert not report.ok
        assert report.has("chunk-orphaned")
        assert report.has("chunk-unrestorable")


class TestClusterAudit:
    def _cluster(self, **kwargs):
        cfg = BackupServerConfig(
            index_n_bits=8,
            index_bucket_bytes=512,
            container_bytes=64 * 1024,
            filter_capacity=4096,
            siu_every=kwargs.pop("siu_every", 1),
        )
        return DebarCluster(w_bits=kwargs.pop("w_bits", 2), config=cfg)

    def test_cluster_audits_clean_after_each_round(self):
        cluster = self._cluster(siu_every=2)
        for round_no in range(3):
            job = cluster.director.define_job(f"j{round_no}", "c", [])
            cluster.backup_streams(
                [(job, stream(make_fps(100, start=round_no * 1000)))]
            )
            cluster.run_dedup2()
            # Mid-window rounds (PSIU deferred) must still audit clean:
            # the checking files cover every stored-but-unregistered chunk.
            report = cluster.audit()
            assert report.ok, report.summary()
        cluster.run_dedup2(force_psiu=True)
        assert cluster.audit().ok

    def test_cluster_restorability_routes_to_owner(self):
        cluster = self._cluster()
        fps = make_fps(150)
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        report = cluster.audit()
        assert report.ok
        assert report.counters["run_fingerprints"] == 150

    def test_cluster_audit_pinpoints_damaged_part(self):
        cluster = self._cluster()
        fps = make_fps(100)
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        owner = cluster.servers[cluster.owner_of(fps[0])]
        assert owner.index.delete(fps[0])
        report = cluster.audit()
        assert not report.ok
        assert report.has("chunk-orphaned")
        assert report.has("chunk-unrestorable")


class TestDurabilityFinding:
    def test_memory_migrated_vault_index_flagged(self, tmp_path):
        """Pre-fix reproduction: capacity scaling used to silently rebuild a
        file-backed index onto a MemoryBlockStore; the durability check
        exists to catch exactly that state."""
        from repro.system.vault import DebarVault

        data = tmp_path / "data"
        data.mkdir()
        (data / "f.bin").write_bytes(b"payload" * 4096)
        vault = DebarVault(tmp_path / "vault", index_n_bits=6)
        vault.backup("job", [data])
        assert vault.audit(deep=True).ok
        old = vault.tpds.index
        vault.tpds.index = old.scale_capacity(
            store=MemoryBlockStore(2 * old.size_bytes)
        )
        report = vault.audit()
        assert not report.ok
        assert report.has("durability")
        vault.close()
