"""Tests for sequential index update (SIU, Section 5.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disk_index import DiskIndex, IndexFullError
from repro.core.siu import SequentialIndexUpdate
from repro.simdisk import Meter, SimClock, paper_cpu, paper_index_disk
from repro.util import bit_prefix
from tests.conftest import make_fps


class TestRegistration:
    def test_registers_all_entries(self):
        index = DiskIndex(6, bucket_bytes=512)
        entries = {fp: i for i, fp in enumerate(make_fps(100))}
        result = SequentialIndexUpdate(index).run(entries)
        assert result.fingerprints_registered == 100
        assert len(index) == 100
        for fp, cid in entries.items():
            assert index.lookup(fp) == cid

    def test_empty_batch(self):
        index = DiskIndex(6, bucket_bytes=512)
        result = SequentialIndexUpdate(index).run({})
        assert result.fingerprints_registered == 0
        assert len(index) == 0

    def test_merges_with_existing_entries(self):
        index = DiskIndex(6, bucket_bytes=512)
        first = {fp: i for i, fp in enumerate(make_fps(40))}
        second = {fp: 100 + i for i, fp in enumerate(make_fps(40, start=400))}
        SequentialIndexUpdate(index).run(first)
        SequentialIndexUpdate(index).run(second)
        assert len(index) == 80
        for fp, cid in {**first, **second}.items():
            assert index.lookup(fp) == cid

    def test_rejects_null_container(self):
        index = DiskIndex(6, bucket_bytes=512)
        fp = make_fps(1)[0]
        with pytest.raises(ValueError):
            SequentialIndexUpdate(index).run({fp: None})
        with pytest.raises(ValueError):
            SequentialIndexUpdate(index).run({fp: -2})

    def test_rejects_foreign_part(self):
        parts = DiskIndex(6, bucket_bytes=512).split(2)
        foreign = next(fp for fp in make_fps(50) if bit_prefix(fp, 2) != 0)
        with pytest.raises(ValueError):
            SequentialIndexUpdate(parts[0]).run({foreign: 1})

    def test_works_on_index_part(self):
        parts = DiskIndex(6, bucket_bytes=512).split(2)
        own = [fp for fp in make_fps(300) if bit_prefix(fp, 2) == 2][:30]
        entries = {fp: i for i, fp in enumerate(own)}
        SequentialIndexUpdate(parts[2]).run(entries)
        for fp, cid in entries.items():
            assert parts[2].lookup(fp) == cid

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=120))
    def test_property_register_then_sil_finds_all(self, n):
        from repro.core.sil import SequentialIndexLookup

        index = DiskIndex(6, bucket_bytes=512)
        entries = {fp: i for i, fp in enumerate(make_fps(n))}
        SequentialIndexUpdate(index).run(entries)
        result = SequentialIndexLookup(index).run(list(entries))
        assert result.duplicates == entries


class TestOverflowPaths:
    def _fps_for_bucket(self, index, bucket, count, start=0):
        out, offset = [], start
        while len(out) < count:
            out.extend(
                fp for fp in make_fps(300, start=offset) if index.bucket_number(fp) == bucket
            )
            offset += 300
        return out[:count]

    def test_overflow_spills_to_neighbour(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 8, cap + 4)
        result = SequentialIndexUpdate(index).run({fp: i for i, fp in enumerate(fps)})
        assert result.overflowed == 4
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i

    def test_index_full_error_propagates(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        batch = {}
        for bucket in (7, 8, 9):
            for i, fp in enumerate(self._fps_for_bucket(index, bucket, cap, start=bucket * 7000)):
                batch[fp] = i
        extra = self._fps_for_bucket(index, 8, 2, start=80_000)
        batch.update({fp: 0 for fp in extra})
        with pytest.raises(IndexFullError):
            SequentialIndexUpdate(index).run(batch)


class TestCostAccounting:
    def test_charges_read_plus_write_scan(self):
        index = DiskIndex(6, bucket_bytes=512)
        entries = {fp: i for i, fp in enumerate(make_fps(30))}
        meter = Meter(SimClock())
        disk = paper_index_disk()
        result = SequentialIndexUpdate(index).run(
            entries, meter=meter, disk=disk, cpu=paper_cpu()
        )
        assert result.index_bytes_read == index.size_bytes
        assert result.index_bytes_written == index.size_bytes
        assert meter.by_category["siu.read"] == pytest.approx(
            disk.seq_read_time(index.size_bytes)
        )
        assert meter.by_category["siu.write"] == pytest.approx(
            disk.seq_write_time(index.size_bytes)
        )

    def test_siu_slower_than_sil_on_same_index(self):
        # SIU = read + write-back, so it must cost more than SIL's read.
        from repro.core.sil import SequentialIndexLookup

        index = DiskIndex(8, bucket_bytes=512)
        disk = paper_index_disk()
        sil_meter = Meter(SimClock())
        SequentialIndexLookup(index).run(make_fps(10), meter=sil_meter, disk=disk)
        siu_meter = Meter(SimClock())
        SequentialIndexUpdate(index).run(
            {fp: 0 for fp in make_fps(10, start=100)}, meter=siu_meter, disk=disk
        )
        assert siu_meter.total("siu") > sil_meter.total("sil.scan")
