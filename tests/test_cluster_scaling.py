"""Tests for live cluster scale-out (the paper's run-mode transitions)."""

import pytest

from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.util import bit_prefix
from tests.conftest import make_fps


def make_cluster(w_bits=1, n_bits=8):
    cfg = BackupServerConfig(
        index_n_bits=n_bits, index_bucket_bytes=512, container_bytes=64 * 1024,
        filter_capacity=4096, cache_capacity=1 << 18, siu_every=1,
    )
    return DebarCluster(w_bits=w_bits, config=cfg)


def backed_up_cluster(w_bits=1, chunks=300):
    cluster = make_cluster(w_bits=w_bits)
    fps = make_fps(chunks)
    job = cluster.director.define_job("j", "c", [])
    cluster.backup_streams([(job, [(fp, 8192) for fp in fps])])
    cluster.run_dedup2(force_psiu=True)
    return cluster, fps, job


class TestScaleOut:
    def test_doubles_servers_and_splits_parts(self):
        cluster, fps, _ = backed_up_cluster(w_bits=1)
        scaled = cluster.scale_out()
        assert scaled.n_servers == 4
        assert scaled.w_bits == 2
        for k, server in enumerate(scaled.servers):
            assert server.index.prefix_bits == 2
            assert server.index.prefix_value == k
        assert sum(len(s.index) for s in scaled.servers) == len(fps)

    def test_entries_land_on_correct_owners(self):
        cluster, fps, _ = backed_up_cluster(w_bits=1)
        scaled = cluster.scale_out()
        for fp in fps:
            owner = bit_prefix(fp, 2)
            assert scaled.servers[owner].index.lookup(fp) is not None

    def test_repository_untouched(self):
        cluster, fps, _ = backed_up_cluster(w_bits=1)
        containers_before = len(cluster.repository)
        scaled = cluster.scale_out()
        assert scaled.repository is cluster.repository
        assert len(scaled.repository) == containers_before

    def test_dedup_continues_across_transition(self):
        cluster, fps, job = backed_up_cluster(w_bits=1)
        scaled = cluster.scale_out()
        # Same data via the carried-over job chain: the preliminary filter
        # (seeded from the chain) suppresses the transfer entirely.
        d1 = scaled.backup_streams([(job, [(fp, 8192) for fp in fps])])
        assert d1.transferred_bytes == 0
        # New data plus old data from a fresh job: SIL on the new parts
        # classifies exactly.
        new_fps = make_fps(100, start=5000)
        job2 = scaled.director.define_job("j2", "c2", [])
        scaled.backup_streams([(job2, [(fp, 8192) for fp in fps[:50] + new_fps])])
        d2 = scaled.run_dedup2(force_psiu=True)
        assert d2.new_chunks_stored == 100
        assert d2.duplicate_chunks == 50

    def test_reads_work_after_transition(self):
        cluster, fps, _ = backed_up_cluster(w_bits=1)
        scaled = cluster.scale_out()
        for via in range(scaled.n_servers):
            assert len(scaled.read_chunk(fps[0], via_server=via)) == 8192

    def test_keep_part_size_restores_geometry(self):
        cluster, fps, _ = backed_up_cluster(w_bits=1)
        part_bits = cluster.servers[0].index.n_bits
        scaled = cluster.scale_out(keep_part_size=True)
        assert all(s.index.n_bits == part_bits for s in scaled.servers)
        assert sum(len(s.index) for s in scaled.servers) == len(fps)

    def test_default_halves_part_size(self):
        cluster, _, _ = backed_up_cluster(w_bits=1)
        part_bits = cluster.servers[0].index.n_bits
        scaled = cluster.scale_out()
        assert all(s.index.n_bits == part_bits - 1 for s in scaled.servers)

    def test_clock_carries_forward(self):
        cluster, _, _ = backed_up_cluster(w_bits=1)
        t = cluster.wall_clock
        scaled = cluster.scale_out()
        assert scaled.wall_clock == t

    def test_repeated_scale_out(self):
        cluster, fps, _ = backed_up_cluster(w_bits=0)
        for expected in (2, 4, 8):
            cluster = cluster.scale_out()
            assert cluster.n_servers == expected
            assert sum(len(s.index) for s in cluster.servers) == len(fps)

    def test_refuses_unquiesced_cluster(self):
        cluster = make_cluster(w_bits=1)
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, [(fp, 8192) for fp in make_fps(50)])])
        with pytest.raises(RuntimeError):
            cluster.scale_out()  # chunk log + undetermined pending

    def test_refuses_unregistered_entries(self):
        cluster = make_cluster(w_bits=1)
        cluster.config.siu_every = 100
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, [(fp, 8192) for fp in make_fps(50)])])
        cluster.run_dedup2(force_psiu=False)  # stored but not registered
        with pytest.raises(RuntimeError):
            cluster.scale_out()
