"""Tests for the multi-server DEBAR cluster (PSIL/PSIU, Figure 5)."""

import pytest

from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.util import bit_prefix
from tests.conftest import make_fps


def make_cluster(w_bits=2, cache_capacity=1 << 20, siu_every=1):
    cfg = BackupServerConfig(
        index_n_bits=8,
        index_bucket_bytes=512,
        container_bytes=64 * 1024,
        filter_capacity=4096,
        cache_capacity=cache_capacity,
        siu_every=siu_every,
    )
    return DebarCluster(w_bits=w_bits, config=cfg)


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


class TestRouting:
    def test_owner_is_prefix(self):
        cluster = make_cluster(w_bits=2)
        for fp in make_fps(50):
            assert cluster.owner_of(fp) == bit_prefix(fp, 2)

    def test_single_server_cluster(self):
        cluster = make_cluster(w_bits=0)
        assert cluster.n_servers == 1
        assert all(cluster.owner_of(fp) == 0 for fp in make_fps(20))

    def test_server_count(self):
        assert make_cluster(w_bits=3).n_servers == 8


class TestParallelDedup1:
    def _jobs_and_streams(self, cluster, n_jobs=4, n=200):
        gens = [SyntheticFingerprints(i) for i in range(n_jobs)]
        jobs = [cluster.director.define_job(f"j{i}", f"c{i}", []) for i in range(n_jobs)]
        streams = [stream(gens[i].fresh(n)) for i in range(n_jobs)]
        return list(zip(jobs, streams))

    def test_jobs_spread_over_servers(self):
        cluster = make_cluster(w_bits=2)
        assignments = self._jobs_and_streams(cluster)
        cluster.backup_streams(assignments)
        counts = [s.undetermined_count for s in cluster.servers]
        assert all(c == 200 for c in counts)

    def test_wall_time_is_slowest_lane(self):
        cluster = make_cluster(w_bits=1)
        assignments = self._jobs_and_streams(cluster, n_jobs=2)
        stats = cluster.backup_streams(assignments)
        assert stats.wall_time > 0
        assert stats.logical_chunks == 400
        # Two servers in parallel: wall time ~ one stream, not two.
        lone = make_cluster(w_bits=0)
        lone_stats = lone.backup_streams(self._jobs_and_streams(lone, n_jobs=2))
        assert stats.wall_time < lone_stats.wall_time

    def test_aggregate_throughput_scales(self):
        results = {}
        for w in (0, 2):
            cluster = make_cluster(w_bits=w)
            assignments = self._jobs_and_streams(cluster, n_jobs=4)
            results[w] = cluster.backup_streams(assignments).aggregate_throughput
        assert results[2] > 2.5 * results[0]


class TestClusterDedup2:
    def test_new_data_stored_once_and_registered_at_owner(self):
        cluster = make_cluster(w_bits=2)
        gens = [SyntheticFingerprints(i) for i in range(4)]
        jobs = [cluster.director.define_job(f"j{i}", f"c{i}", []) for i in range(4)]
        fps_all = [gens[i].fresh(150) for i in range(4)]
        cluster.backup_streams([(jobs[i], stream(fps_all[i])) for i in range(4)])
        stats = cluster.run_dedup2(force_psiu=True)
        assert stats.new_chunks_stored == 600
        assert stats.fingerprints_updated == 600
        assert cluster.audit().ok
        # Every fingerprint lives in its owner's index part.
        for fps in fps_all:
            for fp in fps:
                owner = cluster.owner_of(fp)
                assert cluster.servers[owner].index.lookup(fp) is not None

    def test_cross_stream_duplicates_stored_once(self):
        """The same fingerprints submitted by several servers in one round
        must be stored exactly once (owner-side arbitration)."""
        cluster = make_cluster(w_bits=2)
        shared = make_fps(100)
        jobs = [cluster.director.define_job(f"j{i}", f"c{i}", []) for i in range(4)]
        cluster.backup_streams([(j, stream(shared)) for j in jobs])
        stats = cluster.run_dedup2(force_psiu=True)
        assert stats.new_chunks_stored == 100
        assert stats.duplicate_chunks == 300
        assert cluster.physical_bytes_stored == 100 * 8192
        assert cluster.audit().ok

    def test_second_round_all_duplicates_via_psil(self):
        cluster = make_cluster(w_bits=2)
        fps = make_fps(200)
        j1 = cluster.director.define_job("j1", "c", [])
        cluster.backup_streams([(j1, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        assert cluster.audit().ok
        j2 = cluster.director.define_job("j2", "c", [])
        cluster.backup_streams([(j2, stream(fps))])
        stats = cluster.run_dedup2(force_psiu=True)
        assert stats.new_chunks_stored == 0
        assert stats.duplicate_chunks == 200
        assert cluster.audit().ok

    def test_asynchronous_psiu_policy(self):
        cluster = make_cluster(w_bits=1, siu_every=2)
        j1 = cluster.director.define_job("j1", "c", [])
        cluster.backup_streams([(j1, stream(make_fps(50)))])
        s1 = cluster.run_dedup2()
        assert not s1.psiu_performed
        # Mid-window (PSIU deferred): the checking files keep the cluster
        # consistent, so the round still audits clean.
        assert cluster.audit().ok
        j2 = cluster.director.define_job("j2", "c", [])
        cluster.backup_streams([(j2, stream(make_fps(50, start=100)))])
        s2 = cluster.run_dedup2()
        assert s2.psiu_performed
        assert s2.fingerprints_updated == 100
        assert cluster.audit().ok

    def test_checking_file_across_rounds_without_psiu(self):
        cluster = make_cluster(w_bits=2, siu_every=100)
        fps = make_fps(80)
        j1 = cluster.director.define_job("j1", "c", [])
        cluster.backup_streams([(j1, stream(fps))])
        cluster.run_dedup2()
        assert cluster.audit().ok
        j2 = cluster.director.define_job("j2", "c", [])
        cluster.backup_streams([(j2, stream(fps))])
        stats = cluster.run_dedup2()
        assert stats.new_chunks_stored == 0
        assert cluster.physical_bytes_stored == 80 * 8192
        assert cluster.audit().ok

    def test_exchange_bytes_accounted(self):
        cluster = make_cluster(w_bits=2)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(make_fps(200)))])
        stats = cluster.run_dedup2(force_psiu=True)
        # One server held all undetermined fps; ~3/4 had remote owners.
        assert stats.exchange_bytes > 0

    def test_psil_speed_metric(self):
        cluster = make_cluster(w_bits=2)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(make_fps(400)))])
        stats = cluster.run_dedup2(force_psiu=True)
        assert stats.fingerprints_looked_up == 400
        assert stats.psil_wall_time > 0
        assert stats.psil_speed > 0
        assert stats.psiu_speed > 0


class TestClusterRestore:
    def test_read_chunk_from_any_server(self):
        cluster = make_cluster(w_bits=2)
        fps = make_fps(50)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        for via in range(4):
            assert len(cluster.read_chunk(fps[0], via_server=via)) == 8192

    def test_read_missing_raises(self):
        cluster = make_cluster(w_bits=1)
        with pytest.raises(KeyError):
            cluster.read_chunk(make_fps(1)[0], via_server=0)

    def test_read_pending_before_psiu(self):
        cluster = make_cluster(w_bits=1, siu_every=100)
        fps = make_fps(20)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(fps))])
        cluster.run_dedup2()  # no PSIU yet
        assert len(cluster.read_chunk(fps[3], via_server=0)) == 8192

    def test_remote_container_read_costs_more(self):
        cluster = make_cluster(w_bits=2)
        fps = make_fps(40)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        # Containers were written with the storing server's affinity; read
        # from a different server pays the remote-container transfer.
        storing_server = cluster.director.scheduler.server_for(j)
        other = (storing_server + 1) % 4
        cluster.read_chunk(fps[0], via_server=other)
        remote_meter = cluster.servers[other].meter.by_category
        assert remote_meter.get("restore.remote_container", 0) > 0


class TestRestoreRun:
    def test_restore_run_returns_all_payloads_in_order(self):
        cluster = make_cluster(w_bits=2)
        fps = make_fps(60)
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, stream(fps))])
        cluster.run_dedup2(force_psiu=True)
        run = cluster.director.chain(job).latest()
        payloads = cluster.restore_run(run.run_id)
        assert len(payloads) == 60
        assert all(len(p) == 8192 for p in payloads)
        # Identical chunks restore identically regardless of route.
        alt = cluster.restore_run(run.run_id, via_server=3)
        assert alt == payloads

    def test_restore_unknown_run(self):
        cluster = make_cluster(w_bits=1)
        with pytest.raises(KeyError):
            cluster.restore_run(12345)


class TestClusterTelemetry:
    def _run_round(self, w_bits=2, n=200):
        cluster = make_cluster(w_bits=w_bits)
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(make_fps(n)))])
        return cluster, cluster.run_dedup2(force_psiu=True)

    def test_exchange_volume_counters_balance(self, live_telemetry):
        """Every byte a server sends in the PSIL/PSIU all-to-all exchanges
        is received by exactly one peer: the per-node counters balance."""
        registry, _ = live_telemetry
        cluster, stats = self._run_round()
        sent = registry.total("cluster.exchange.bytes_sent")
        received = registry.total("cluster.exchange.bytes_received")
        assert sent == received
        assert sent > 0
        assert sent == stats.exchange_bytes
        # Per-server samples exist for every node.
        per_server = {
            labels["server"]: child.value
            for family in registry.families()
            if family.name == "cluster.exchange.bytes_sent"
            for labels, child in family.samples()
        }
        assert set(per_server) == {str(k) for k in range(cluster.n_servers)}

    def test_psil_psiu_counters_match_stats(self, live_telemetry):
        registry, _ = live_telemetry
        _, stats = self._run_round(n=300)
        assert registry.total("cluster.psil.fingerprints") == stats.fingerprints_looked_up
        assert registry.total("cluster.psiu.fingerprints") == stats.fingerprints_updated
        assert registry.total("cluster.dedup2.rounds") == 1

    def test_cluster_dedup2_span_tree(self, live_telemetry):
        _, tracer = live_telemetry
        self._run_round()
        root = tracer.last_root()
        assert root.name == "cluster.dedup2"
        names = [c.name for c in root.children]
        for phase in ("cluster.exchange.partition", "cluster.psil",
                      "cluster.store", "cluster.psiu"):
            assert phase in names

    def test_disabled_telemetry_adds_zero_entries(self):
        """The same round against the default no-op registry records
        nothing (satellite: zero-cost disabled mode)."""
        from repro.telemetry import enabled, get_registry, get_tracer

        assert not enabled()
        _, stats = self._run_round()
        assert stats.exchange_bytes > 0  # the work itself still happened
        assert len(get_registry()) == 0
        assert get_tracer().roots == []


class TestWallClock:
    def test_wall_clock_monotone_across_phases(self):
        cluster = make_cluster(w_bits=1)
        t0 = cluster.wall_clock
        j = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(j, stream(make_fps(100)))])
        t1 = cluster.wall_clock
        cluster.run_dedup2(force_psiu=True)
        t2 = cluster.wall_clock
        assert t0 <= t1 <= t2

    def test_total_index_bytes(self):
        cluster = make_cluster(w_bits=2)
        assert cluster.total_index_bytes == 4 * 256 * 512
