"""Tests for deep verification (corruption detection) and run diffing."""

import pytest

from repro.durability.errors import CorruptionError
from repro.system import DebarVault, VaultError
from repro.workloads import FileTreeGenerator, mutate_tree


def fresh_vault(tmp_path, seed=21):
    src = tmp_path / "src"
    FileTreeGenerator(seed=seed).generate(
        src, n_files=5, n_dirs=2, min_size=8 * 1024, max_size=32 * 1024
    )
    vault = DebarVault(tmp_path / "vault", container_bytes=64 * 1024)
    return vault, src


class TestDeepVerify:
    def test_clean_vault_passes(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        vault.backup("docs", [src])
        report = vault.verify(deep=True)
        assert report["payloads_verified"] > 0
        assert report["fingerprints"] >= report["payloads_verified"]

    def test_detects_flipped_bit_in_container(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        vault.backup("docs", [src])
        vault.close()
        # Corrupt one byte deep inside a container's data section.
        victim = sorted((tmp_path / "vault" / "containers").glob("*.ctr"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with DebarVault(tmp_path / "vault") as reopened:
            reopened.verify(deep=False)  # shallow check cannot see it
            with pytest.raises(CorruptionError, match="corrupt|does not hold") as exc:
                reopened.verify(deep=True)
            # The typed error pinpoints the damage for scrub/repair tooling.
            assert exc.value.container_id is not None
            assert exc.value.fingerprint is not None

    def test_shallow_detects_missing_index_entry(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        run = vault.backup("docs", [src])
        fp = run.files[0].fingerprints[0]
        vault.tpds.index.delete(fp)
        with pytest.raises(CorruptionError, match="missing from index") as exc:
            vault.verify()
        assert exc.value.artifact == "index"
        assert exc.value.fingerprint == fp


class TestDiff:
    def test_diff_categories(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        run1 = vault.backup("docs", [src])
        mutate_tree(src, seed=5, edit_fraction=0.4, new_files=1, delete_files=1)
        run2 = vault.backup("docs", [src])
        diff = vault.diff(run1.run_id, run2.run_id)
        assert len(diff["added"]) == 1
        assert len(diff["removed"]) == 1
        assert diff["changed"]  # at least one edited file
        # Every surviving path is classified exactly once.
        all_paths = set(diff["changed"]) | set(diff["unchanged"])
        assert not (set(diff["added"]) & all_paths)
        assert not (set(diff["removed"]) & all_paths)

    def test_diff_identical_runs(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        run1 = vault.backup("docs", [src])
        run2 = vault.backup("docs", [src])
        diff = vault.diff(run1.run_id, run2.run_id)
        assert diff["added"] == diff["removed"] == diff["changed"] == []
        assert len(diff["unchanged"]) == len(run1.files)

    def test_diff_unknown_run(self, tmp_path):
        vault, src = fresh_vault(tmp_path)
        run1 = vault.backup("docs", [src])
        with pytest.raises(VaultError):
            vault.diff(run1.run_id, 99)
