"""Tests for the telemetry subsystem (registry, tracing, export, clock).

Covers the DESIGN.md §8 contract: labelled instruments, the zero-entry
no-op mode, snapshot build/validate/merge round-trips, span trees over wall
and simulated time, and the single wall-clock source the vault's run
timestamps flow through.
"""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import (
    SNAPSHOT_VERSION,
    build_snapshot,
    load_snapshot,
    merge_snapshot_file,
    save_snapshot,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    prometheus_name,
)
from repro.telemetry.schema import SchemaError, validate_snapshot
from repro.telemetry.tracing import NullTracer, Tracer


class FakeSimClock:
    def __init__(self, now=0.0):
        self.now = now


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        fam = reg.counter("dedup1.chunks", "chunks seen")
        fam.labels(server="0").inc(10)
        fam.labels(server="1").inc(5)
        fam.labels(server="0").inc(2)
        assert reg.value("dedup1.chunks", server="0") == 12
        assert reg.value("dedup1.chunks", server="1") == 5
        assert reg.total("dedup1.chunks") == 17

    def test_same_label_set_is_same_child(self):
        fam = MetricsRegistry().counter("c")
        assert fam.labels(a="1", b="2") is fam.labels(b="2", a="1")

    def test_counter_rejects_negative(self):
        fam = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            fam.labels().inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("vault.runs").labels()
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_histogram_buckets_and_sum(self):
        h = MetricsRegistry().histogram("fill", buckets=(0.5, 1.0)).labels()
        for v in (0.1, 0.6, 0.9, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.6)
        assert dict(h.cumulative()) == {"0.5": 1, "1.0": 3, "+Inf": 4}

    def test_histogram_default_buckets(self):
        h = MetricsRegistry().histogram("t").labels()
        assert h.bounds == DEFAULT_BUCKETS

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_unlabelled_convenience_on_family(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.value("c") == 3

    def test_missing_metric_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.value("nope") == 0.0
        assert reg.total("nope") == 0.0

    def test_prometheus_render(self):
        reg = MetricsRegistry()
        reg.counter("sil.bytes_read", "index bytes").labels(server="0").inc(42)
        reg.histogram("container.fill", buckets=(0.5,)).labels().observe(0.25)
        text = reg.render_prometheus()
        assert '# TYPE sil_bytes_read counter' in text
        assert 'sil_bytes_read{server="0"} 42' in text
        assert 'container_fill_bucket{le="0.5"} 1' in text
        assert 'container_fill_count 1' in text
        assert text.endswith("\n")

    def test_prometheus_name_rewrite(self):
        assert prometheus_name("dedup2.sil.rounds") == "dedup2_sil_rounds"
        assert prometheus_name("0bad") == "_0bad"


class TestNullRegistry:
    def test_disabled_registry_records_nothing(self):
        """Satellite: the no-op registry adds zero entries when disabled."""
        reg = NullRegistry()
        reg.counter("a", "x").labels(k="v").inc(100)
        reg.gauge("b").set(5)
        reg.histogram("c").observe(1.0)
        assert len(reg) == 0
        assert reg.snapshot_metrics() == []
        assert reg.total("a") == 0.0
        assert not reg.enabled

    def test_null_instruments_are_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.counter("a").labels(x="1") is reg.gauge("c")

    def test_pipeline_run_with_telemetry_disabled_adds_zero_entries(self):
        """A full dedup round against the default (disabled) globals must
        leave the global registry empty and the tracer span-free."""
        from repro.core.fingerprint import SyntheticFingerprints
        from repro.system.debar import DebarSystem

        assert not telemetry.enabled()
        registry = telemetry.get_registry()
        tracer = telemetry.get_tracer()
        system = DebarSystem()
        job = system.define_job("j", "c")
        fps = SyntheticFingerprints(0).fresh(64)
        system.backup_stream(job, [(fp, 4096) for fp in fps], auto_dedup2=False)
        system.run_dedup2(force_siu=True)
        assert len(registry) == 0
        assert registry.snapshot_metrics() == []
        assert tracer.roots == []

    def test_enable_disable_cycle(self):
        assert not telemetry.enabled()
        registry, tracer = telemetry.enable()
        try:
            assert telemetry.enabled()
            assert registry.enabled and tracer.enabled
            # Idempotent: a second enable keeps the same live objects.
            again, _ = telemetry.enable()
            assert again is registry
        finally:
            telemetry.disable()
        assert not telemetry.enabled()
        assert isinstance(telemetry.get_registry(), NullRegistry)


# ----------------------------------------------------------------- tracing
class TestTracing:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("backup") as root:
            with tracer.span("dedup1"):
                pass
            with tracer.span("dedup2") as d2:
                with tracer.span("dedup2.sil"):
                    pass
        assert [r.name for r in tracer.roots] == ["backup"]
        assert [c.name for c in root.children] == ["dedup1", "dedup2"]
        assert root.child("dedup2") is d2
        assert d2.children[0].name == "dedup2.sil"
        assert root.wall >= 0.0

    def test_sim_clock_window(self):
        tracer = Tracer()
        clock = FakeSimClock(10.0)
        with tracer.span("phase", sim_clock=clock) as span:
            clock.now = 14.5
        assert span.sim == pytest.approx(4.5)
        with tracer.span("unclocked") as span2:
            pass
        assert span2.sim is None

    def test_io_attrs_and_dict_shape(self):
        tracer = Tracer()
        with tracer.span("dedup1", job="docs") as span:
            span.set_io(bytes_in=1000, bytes_out=200)
            span.annotate(chunks=5)
        d = tracer.to_dict_list()[0]
        assert d["name"] == "dedup1"
        assert d["bytes_in"] == 1000 and d["bytes_out"] == 200
        assert d["attrs"] == {"job": "docs", "chunks": 5}
        assert d["children"] == []

    def test_render_tree(self):
        tracer = Tracer()
        clock = FakeSimClock()
        with tracer.span("backup", sim_clock=clock):
            with tracer.span("dedup1"):
                pass
        text = tracer.render()
        assert "backup" in text and "└─ dedup1" in text
        assert "sim" in text  # the sim column shows up when clocked

    def test_reset_and_last_root(self):
        tracer = Tracer()
        assert tracer.last_root() is None
        with tracer.span("a"):
            pass
        assert tracer.last_root().name == "a"
        tracer.reset()
        assert tracer.roots == []

    def test_null_tracer_collects_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", sim_clock=FakeSimClock()) as span:
            span.set_io(bytes_in=1)
            span.annotate(x=1)
        assert tracer.roots == []
        # The shared no-op span reads as empty.
        assert span.wall == 0.0 and span.bytes_in == 0


# ---------------------------------------------------------- export + schema
class TestSnapshot:
    def _populated_registry(self):
        reg = MetricsRegistry()
        reg.counter("dedup1.chunks", "chunks").labels(server="0").inc(7)
        reg.gauge("vault.runs").labels().set(2)
        reg.histogram("container.fill").labels().observe(0.8)
        return reg

    def test_build_and_validate(self, live_telemetry):
        registry, tracer = live_telemetry
        registry.counter("test.c").inc()
        with tracer.span("backup"):
            pass
        doc = build_snapshot(registry, tracer)
        assert doc["version"] == SNAPSHOT_VERSION
        assert doc["enabled"] is True
        summary = validate_snapshot(doc)
        assert summary == {"metrics": 1, "samples": 1, "traces": 1}

    def test_snapshot_is_json_and_roundtrips(self, tmp_path):
        reg = self._populated_registry()
        doc = build_snapshot(reg, Tracer())
        path = save_snapshot(doc, tmp_path / "snap.json")
        loaded = load_snapshot(path)
        assert loaded == json.loads(json.dumps(doc))
        validate_snapshot(loaded)

    def test_load_missing_returns_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.json") is None

    def test_merge_accumulates_counters_overwrites_gauges(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(build_snapshot(self._populated_registry(), Tracer()), path)
        live = self._populated_registry()  # same values again
        assert merge_snapshot_file(path, live)
        assert live.value("dedup1.chunks", server="0") == 14  # 7 + 7
        assert live.value("vault.runs") == 2  # gauge: persisted value wins
        fill = live.histogram("container.fill").labels()
        assert fill.count == 2 and fill.sum == pytest.approx(1.6)

    def test_merge_missing_file_is_noop(self, tmp_path):
        live = MetricsRegistry()
        assert not merge_snapshot_file(tmp_path / "absent.json", live)
        assert len(live) == 0

    def test_schema_rejects_bad_documents(self):
        with pytest.raises(SchemaError, match=r"\$\.version"):
            validate_snapshot({"version": 999})
        doc = build_snapshot(MetricsRegistry(), Tracer())
        doc["metrics"] = [{"name": "test.x", "type": "teapot", "samples": []}]
        with pytest.raises(SchemaError, match="type"):
            validate_snapshot(doc)

    def test_schema_rejects_negative_counter(self):
        doc = build_snapshot(MetricsRegistry(), Tracer())
        doc["metrics"] = [{
            "name": "test.c", "type": "counter",
            "samples": [{"labels": {}, "value": -1}],
        }]
        with pytest.raises(SchemaError, match="negative"):
            validate_snapshot(doc)

    def test_schema_cli_entrypoint(self, tmp_path, capsys):
        from repro.telemetry.schema import main as schema_main

        path = save_snapshot(
            build_snapshot(self._populated_registry(), Tracer()), tmp_path / "s.json"
        )
        assert schema_main([str(path)]) == 0
        assert "ok:" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 999}")
        assert schema_main([str(bad)]) == 1


# -------------------------------------------------------------------- clock
class TestClockSource:
    def test_time_source_swap_and_reset(self):
        try:
            telemetry.set_time_source(wall=lambda: 1234.5, mono=lambda: 7.0)
            assert telemetry.wall_now() == 1234.5
            assert telemetry.monotonic() == 7.0
        finally:
            telemetry.reset_time_source()
        assert telemetry.wall_now() > 1e9  # back on the real epoch clock

    def test_vault_run_timestamps_flow_through_wall_now(self, tmp_path):
        """Satellite: the CLI/vault no longer call time.time() directly —
        redirecting the process clock redirects run timestamps."""
        from repro.system import DebarVault

        src = tmp_path / "src"
        src.mkdir()
        (src / "a.bin").write_bytes(b"x" * 8192)
        try:
            telemetry.set_time_source(wall=lambda: 777.0)
            with DebarVault(tmp_path / "vault") as vault:
                run = vault.backup("docs", [src])
            assert run.timestamp == 777.0
        finally:
            telemetry.reset_time_source()


# -------------------------------------------------- pipeline integration
class TestPipelineIntegration:
    def test_backup_span_tree_and_counters(self, tmp_path, live_telemetry):
        """Acceptance: a traced backup yields one span tree whose phase
        breakdown accounts for the root's wall time, and the registry holds
        the full metric catalogue for the run."""
        from repro.system import DebarVault

        registry, tracer = live_telemetry
        src = tmp_path / "src"
        src.mkdir()
        for i in range(4):
            (src / f"f{i}.bin").write_bytes(bytes([i]) * 16384)

        with DebarVault(tmp_path / "vault") as vault:
            vault.backup("docs", [src])

        root = tracer.last_root()
        assert root.name == "backup"
        child_names = [c.name for c in root.children]
        for phase in ("client.ingest", "dedup1", "dedup2", "catalog"):
            assert phase in child_names
        # The instrumented phases cover the traced run's wall time.
        assert sum(c.wall for c in root.children) <= root.wall + 1e-9
        assert sum(c.wall for c in root.children) >= 0.5 * root.wall

        assert registry.total("vault.backups") == 1
        assert registry.total("dedup1.sessions") == 1
        assert registry.total("client.files_read") == 4
        assert registry.total("dedup2.new_chunks") > 0
        # Counters and the span agree on the logical volume.
        assert root.bytes_in == registry.total("dedup1.bytes_logical")

    def test_meter_charges_mirror_to_registry(self, live_telemetry):
        from repro.simdisk import Meter, SimClock

        registry, _ = live_telemetry
        meter = Meter(SimClock())
        meter.charge("sil.scan", 2.0)
        meter.charge("sil.scan", 1.5)
        meter.record("dedup1.network", 4.0)
        assert registry.value("meter.seconds", category="sil.scan") == pytest.approx(3.5)
        assert registry.value(
            "meter.seconds_overlapped", category="dedup1.network"
        ) == pytest.approx(4.0)
