"""Lint: a ``None`` default demands an ``Optional``/``None``-admitting hint.

``def f(chunker: ContentDefinedChunker = None)`` lies to every reader and
type checker: the annotation promises a chunker, the default hands them
``None``.  PEP 484 dropped the implicit-Optional convention years ago.
This walks every module under ``src/`` with :mod:`ast` and fails on any
function parameter whose default is ``None`` but whose annotation does not
admit it — so a fixed hint stays fixed.

Accepted annotations for a ``None`` default: ``Optional[...]``,
``Union[..., None]``, PEP 604 ``X | None``, bare ``None``, ``Any``, and
``object``.  String (forward-reference) annotations are parsed and held to
the same rule.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def _admits_none(node: ast.expr) -> bool:
    """Does this annotation expression admit ``None``?"""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        if isinstance(node.value, str):
            try:
                return _admits_none(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                return False
        return False
    if isinstance(node, ast.Name):
        return node.id in {"Any", "object"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Any", "object"}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _admits_none(node.left) or _admits_none(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr
            if isinstance(base, ast.Attribute)
            else None
        )
        if name == "Optional":
            return True
        if name == "Union":
            args = node.slice
            elts = args.elts if isinstance(args, ast.Tuple) else [args]
            return any(_admits_none(e) for e in elts)
    return False


def _offending_params(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        # Pair positional/kw-only parameters with their defaults
        # (defaults align to the *tail* of the positional list).
        positional = args.posonlyargs + args.args
        pos_pairs = zip(positional[len(positional) - len(args.defaults):],
                        args.defaults)
        kw_pairs = (
            (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        )
        for arg, default in list(pos_pairs) + list(kw_pairs):
            if not (isinstance(default, ast.Constant) and default.value is None):
                continue
            if arg.annotation is None or _admits_none(arg.annotation):
                continue
            yield node.name, arg.arg, arg.annotation.lineno


def test_none_defaults_are_annotated_optional():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for func, param, lineno in _offending_params(tree):
            offenders.append(
                f"{path.relative_to(SRC)}:{lineno} {func}({param}: ... = None)"
            )
    assert not offenders, (
        "parameters defaulting to None must be annotated Optional[...] "
        "(or otherwise admit None):\n  " + "\n  ".join(offenders)
    )


def test_linter_catches_the_original_offence():
    # The pattern this lint exists for (the pre-fix BackupEngine
    # signature) must actually trip it.
    tree = ast.parse("def f(chunker: ContentDefinedChunker = None): pass")
    assert list(_offending_params(tree)) == [("f", "chunker", 1)]
    # ...and the fixed spellings must pass.
    for fixed in (
        "def f(c: Optional[Chunker] = None): pass",
        "def f(c: 'Optional[Chunker]' = None): pass",
        "def f(c: Chunker | None = None): pass",
        "def f(c: Union[Chunker, None] = None): pass",
        "def f(c=None): pass",
    ):
        assert not list(_offending_params(ast.parse(fixed))), fixed
