"""Tests for the shared adjacency-coalescing geometry (repro.util.ranges)
used by both the cold-tier read planner (byte ranges) and the wire
reader's batch windows (plan indices)."""

import pytest

from repro.util.ranges import SegmentBuffer, Span, coalesce, leading_run


def spans(*triples):
    return [Span(start, length, item) for start, length, item in triples]


class TestSpan:
    def test_end(self):
        assert Span(10, 5, "a").end == 15

    def test_frozen(self):
        with pytest.raises(Exception):
            Span(0, 1, None).start = 2


class TestCoalesce:
    def test_empty(self):
        assert coalesce([]) == []

    def test_adjacent_merge(self):
        groups = coalesce(spans((0, 10, "a"), (10, 10, "b"), (20, 5, "c")))
        assert len(groups) == 1
        g = groups[0]
        assert (g.start, g.end, g.length) == (0, 25, 25)
        assert g.items == ["a", "b", "c"]

    def test_gap_splits(self):
        groups = coalesce(spans((0, 10, "a"), (11, 10, "b")))
        assert [len(g) for g in groups] == [1, 1]

    def test_max_gap_bridges(self):
        groups = coalesce(spans((0, 10, "a"), (11, 10, "b")), max_gap=1)
        assert len(groups) == 1
        assert groups[0].length == 21  # the gap byte is included

    def test_unsorted_input_is_sorted(self):
        groups = coalesce(spans((20, 5, "c"), (0, 10, "a"), (10, 10, "b")))
        assert len(groups) == 1
        assert groups[0].items == ["a", "b", "c"]

    def test_overlapping_spans_merge(self):
        groups = coalesce(spans((0, 10, "a"), (5, 10, "b")))
        assert len(groups) == 1
        assert groups[0].end == 15

    def test_max_items_caps_group(self):
        groups = coalesce(
            spans((0, 1, 0), (1, 1, 1), (2, 1, 2), (3, 1, 3)), max_items=2
        )
        assert [len(g) for g in groups] == [2, 2]

    def test_max_span_caps_group_bytes(self):
        groups = coalesce(
            spans((0, 10, "a"), (10, 10, "b"), (20, 10, "c")), max_span=20
        )
        assert [g.length for g in groups] == [20, 10]


class TestLeadingRun:
    def test_takes_only_the_leading_adjacent_run(self):
        run = leading_run(spans((0, 1, "a"), (1, 1, "b"), (5, 1, "c")))
        assert [s.item for s in run] == ["a", "b"]

    def test_single_span(self):
        assert len(leading_run(spans((7, 1, "x")))) == 1

    def test_empty(self):
        assert leading_run([]) == []

    def test_max_items(self):
        run = leading_run(
            spans((0, 1, 0), (1, 1, 1), (2, 1, 2)), max_items=2
        )
        assert len(run) == 2


class TestSegmentBuffer:
    def test_read_within_segment(self):
        buf = SegmentBuffer()
        buf.add(100, b"hello world")
        assert buf.read(100, 5) == b"hello"
        assert buf.read(106, 5) == b"world"

    def test_uncovered_raises_keyerror(self):
        buf = SegmentBuffer()
        buf.add(100, b"hello")
        with pytest.raises(KeyError):
            buf.read(0, 5)
        with pytest.raises(KeyError):
            buf.read(103, 5)  # runs off the end of the segment

    def test_covers(self):
        buf = SegmentBuffer()
        buf.add(10, b"abcdef")
        assert buf.covers(10, 6)
        assert buf.covers(12, 2)
        assert not buf.covers(9, 2)
        assert not buf.covers(14, 5)

    def test_fetched_bytes_accumulates(self):
        buf = SegmentBuffer()
        buf.add(0, b"aaa")
        buf.add(100, b"bbbb")
        assert buf.fetched_bytes == 7

    def test_zero_length_read(self):
        buf = SegmentBuffer()
        buf.add(0, b"abc")
        assert buf.read(1, 0) == b""


class TestSharedGeometry:
    def test_byte_ranges_and_plan_indices_use_one_shape(self):
        # The wire reader models plan positions as unit-length spans; the
        # cold planner models payload byte ranges.  Same grouping.
        plan = spans((3, 1, "fp3"), (4, 1, "fp4"), (9, 1, "fp9"))
        byte_ranges = spans((300, 100, "r0"), (400, 100, "r1"), (900, 10, "r2"))
        assert [s.item for s in leading_run(plan)] == ["fp3", "fp4"]
        assert [len(g) for g in coalesce(byte_ranges)] == [2, 1]
