"""Tests for the dedup-1 preliminary filter (Section 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.preliminary_filter import FilterDecision, PreliminaryFilter
from tests.conftest import make_fps


class TestSemantics:
    def test_first_sight_is_new(self):
        f = PreliminaryFilter(100)
        assert f.check(make_fps(1)[0]) is FilterDecision.NEW

    def test_repeat_is_duplicate(self):
        f = PreliminaryFilter(100)
        fp = make_fps(1)[0]
        f.check(fp)
        assert f.check(fp) is FilterDecision.DUPLICATE

    def test_preloaded_filtering_fps_are_duplicates(self):
        # The previous run of the job chain filters the current run.
        f = PreliminaryFilter(100)
        previous = make_fps(20)
        assert f.preload(previous) == 20
        for fp in previous:
            assert f.check(fp) is FilterDecision.DUPLICATE

    def test_preload_idempotent(self):
        f = PreliminaryFilter(100)
        fps = make_fps(10)
        f.preload(fps)
        assert f.preload(fps) == 0
        assert len(f) == 10

    def test_internal_duplication_within_job(self):
        f = PreliminaryFilter(100)
        fps = make_fps(10)
        stream = fps + fps + fps
        decisions = [f.check(fp) for fp in stream]
        assert decisions.count(FilterDecision.NEW) == 10
        assert decisions.count(FilterDecision.DUPLICATE) == 20

    def test_new_fingerprints_collected(self):
        f = PreliminaryFilter(100)
        old = make_fps(5)
        new = make_fps(5, start=50)
        f.preload(old)
        for fp in new:
            f.check(fp)
        assert set(f.new_fingerprints()) == set(new)

    def test_stats(self):
        f = PreliminaryFilter(100)
        fps = make_fps(4)
        for fp in fps + fps:
            f.check(fp)
        assert f.hits == 4
        assert f.misses == 4
        assert f.duplicate_rate == 0.5
        f.reset_stats()
        assert f.hits == 0 and f.duplicate_rate == 0.0


class TestReplacement:
    def test_capacity_bounded(self):
        f = PreliminaryFilter(10)
        for fp in make_fps(50):
            f.check(fp)
        assert len(f) <= 10
        assert f.evictions == 40

    def test_fifo_evicts_oldest(self):
        f = PreliminaryFilter(3)
        fps = make_fps(4)
        for fp in fps[:3]:
            f.check(fp)
        f.check(fps[3])  # evicts fps[0]
        assert fps[0] not in f
        assert fps[3] in f

    def test_lru_refresh_saves_recently_hit(self):
        f = PreliminaryFilter(3)
        fps = make_fps(4)
        for fp in fps[:3]:
            f.check(fp)
        f.check(fps[0])  # refresh: moves fps[0] to the back
        f.check(fps[3])  # evicts fps[1] instead
        assert fps[0] in f
        assert fps[1] not in f

    def test_replaced_new_counted(self):
        f = PreliminaryFilter(5)
        for fp in make_fps(8):
            f.check(fp)
        assert f.replaced_new == 3

    def test_eviction_of_new_is_safe_but_re_admits(self):
        # After a new fingerprint is evicted, its duplicate is re-admitted
        # as new (re-logged); dedup-2 discards the extra copy later.
        f = PreliminaryFilter(2)
        fps = make_fps(3)
        f.check(fps[0])
        f.check(fps[1])
        f.check(fps[2])  # evicts fps[0]
        assert f.check(fps[0]) is FilterDecision.NEW

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PreliminaryFilter(0)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=120))
    def test_no_duplicate_misses_within_capacity(self, picks):
        """With no eviction pressure, a fingerprint is NEW at most once."""
        universe = make_fps(41)
        f = PreliminaryFilter(capacity=1000)
        new_seen = set()
        for i in picks:
            fp = universe[i]
            decision = f.check(fp)
            if decision is FilterDecision.NEW:
                assert fp not in new_seen
                new_seen.add(fp)
            else:
                assert fp in new_seen

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=60))
    def test_size_never_exceeds_capacity(self, capacity, n):
        f = PreliminaryFilter(capacity)
        for fp in make_fps(n):
            f.check(fp)
        assert len(f) <= capacity
