"""Tests for the DEBAR disk index: layout, insert/lookup, overflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disk_index import (
    DISK_BLOCK_SIZE,
    ENTRIES_PER_BLOCK,
    ENTRY_SIZE,
    Bucket,
    DiskIndex,
    IndexFullError,
    pack_bucket,
    unpack_bucket,
)
from repro.storage import FileBlockStore
from tests.conftest import make_fps


class TestLayoutConstants:
    def test_entry_is_25_bytes(self):
        # 20-byte SHA-1 + 5-byte (40-bit) container ID, per Section 4.2.
        assert ENTRY_SIZE == 25

    def test_twenty_entries_per_block(self):
        assert ENTRIES_PER_BLOCK == 20
        assert DISK_BLOCK_SIZE == 512

    def test_8kb_bucket_holds_320(self):
        index = DiskIndex(4, bucket_bytes=8 * 1024)
        assert index.bucket_capacity == 320


class TestSerialization:
    def test_roundtrip(self):
        entries = [(fp, i * 7) for i, fp in enumerate(make_fps(20))]
        blob = pack_bucket(entries, 512)
        assert len(blob) == 512
        assert unpack_bucket(blob) == entries

    def test_empty_bucket(self):
        blob = pack_bucket([], 512)
        assert unpack_bucket(blob) == []

    def test_large_container_id_survives(self):
        fp = make_fps(1)[0]
        cid = (1 << 40) - 1
        assert unpack_bucket(pack_bucket([(fp, cid)], 512)) == [(fp, cid)]

    def test_overfull_rejected(self):
        entries = [(fp, 0) for fp in make_fps(21)]
        with pytest.raises(ValueError):
            pack_bucket(entries, 512)


class TestConstruction:
    def test_geometry(self):
        index = DiskIndex(8, bucket_bytes=512)
        assert index.n_buckets == 256
        assert index.size_bytes == 256 * 512
        assert index.capacity_entries == 256 * 20

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DiskIndex(0)
        with pytest.raises(ValueError):
            DiskIndex(4, bucket_bytes=500)
        with pytest.raises(ValueError):
            DiskIndex(4, prefix_bits=-1)
        with pytest.raises(ValueError):
            DiskIndex(4, prefix_bits=2, prefix_value=4)

    def test_file_backed(self, tmp_path):
        store = FileBlockStore(tmp_path / "idx.bin", 16 * 512)
        index = DiskIndex(4, bucket_bytes=512, store=store)
        fps = make_fps(30)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i

    def test_file_backed_persistence(self, tmp_path):
        path = tmp_path / "persist.bin"
        store = FileBlockStore(path, 16 * 512)
        index = DiskIndex(4, bucket_bytes=512, store=store)
        fps = make_fps(25)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        store.flush()
        store.close()
        # Reattach: counts must be rebuilt from disk.
        store2 = FileBlockStore(path, 16 * 512)
        index2 = DiskIndex(4, bucket_bytes=512, store=store2)
        assert len(index2) == 25
        for i, fp in enumerate(fps):
            assert index2.lookup(fp) == i

    def test_too_small_store_rejected(self, tmp_path):
        store = FileBlockStore(tmp_path / "small.bin", 512)
        with pytest.raises(ValueError):
            DiskIndex(4, bucket_bytes=512, store=store)


class TestInsertLookup:
    def test_missing_returns_none(self):
        index = DiskIndex(4, bucket_bytes=512)
        assert index.lookup(make_fps(1)[0]) is None

    def test_insert_then_found(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(200)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        assert len(index) == 200
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i

    def test_contains(self):
        index = DiskIndex(4, bucket_bytes=512)
        fp = make_fps(1)[0]
        assert fp not in index
        index.insert(fp, 1)
        assert fp in index

    def test_home_bucket_placement(self):
        index = DiskIndex(4, bucket_bytes=512)
        fp = make_fps(1)[0]
        home = index.bucket_number(fp)
        assert index.insert(fp, 9) == home

    def test_invalid_container_id(self):
        index = DiskIndex(4, bucket_bytes=512)
        with pytest.raises(ValueError):
            index.insert(make_fps(1)[0], -1)

    def test_invalid_fingerprint(self):
        index = DiskIndex(4, bucket_bytes=512)
        with pytest.raises(ValueError):
            index.insert(b"short", 0)

    def test_update_existing(self):
        index = DiskIndex(4, bucket_bytes=512)
        fp = make_fps(1)[0]
        index.insert(fp, 1)
        assert index.update(fp, 42)
        assert index.lookup(fp) == 42
        assert len(index) == 1

    def test_update_missing(self):
        index = DiskIndex(4, bucket_bytes=512)
        assert not index.update(make_fps(1)[0], 5)

    def test_utilization_tracks_entries(self):
        index = DiskIndex(4, bucket_bytes=512)
        assert index.utilization == 0.0
        for i, fp in enumerate(make_fps(32)):
            index.insert(fp, i)
        assert index.utilization == pytest.approx(32 / (16 * 20))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=150), st.integers(min_value=0, max_value=9))
    def test_property_all_inserted_found(self, count, salt):
        index = DiskIndex(5, bucket_bytes=512, seed=salt)
        fps = make_fps(count, start=salt * 1000)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        assert all(index.lookup(fp) == i for i, fp in enumerate(fps))


class TestOverflow:
    def _fps_for_bucket(self, index, bucket, count, start=0):
        """Fingerprints homed at a specific bucket."""
        out = []
        offset = start
        while len(out) < count:
            batch = make_fps(200, start=offset)
            out.extend(fp for fp in batch if index.bucket_number(fp) == bucket)
            offset += 200
        return out[:count]

    def test_overflow_goes_to_adjacent(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 5, cap + 3)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        # All entries findable despite overflow.
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i
        # Home bucket is exactly full; neighbours hold the rest.
        assert len(index.read_bucket(5).entries) == cap
        spill = len(index.read_bucket(4).entries) + len(index.read_bucket(6).entries)
        assert spill == 3

    def test_index_full_error_when_triple_full(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        for bucket in (4, 5, 6):
            for i, fp in enumerate(self._fps_for_bucket(index, bucket, cap, start=bucket * 5000)):
                index.insert(fp, i)
        extra = self._fps_for_bucket(index, 5, 1, start=90000)[0]
        with pytest.raises(IndexFullError) as exc:
            index.insert(extra, 0)
        assert exc.value.bucket == 5
        assert 0 < exc.value.utilization <= 1

    def test_neighbour_wraparound(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 0, cap + 2)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i
        # Spill lives in bucket 15 and/or 1 (circular adjacency).
        spill = len(index.read_bucket(15).entries) + len(index.read_bucket(1).entries)
        assert spill == 2

    def test_full_bucket_fraction(self):
        index = DiskIndex(4, bucket_bytes=512)
        assert index.full_bucket_fraction() == 0.0
        for i, fp in enumerate(self._fps_for_bucket(index, 3, index.bucket_capacity)):
            index.insert(fp, i)
        assert index.full_bucket_fraction() == pytest.approx(1 / 16)


class TestPullBackCascade:
    def _fps_for_bucket(self, index, bucket, count, start=0):
        out = []
        offset = start
        while len(out) < count:
            batch = make_fps(200, start=offset)
            out.extend(fp for fp in batch if index.bucket_number(fp) == bucket)
            offset += 200
        return out[:count]

    def _build_overflow_chain(self, index):
        """Three adjacent full buckets with a two-link overflow chain:
        bucket 6's spill sits in 5, bucket 5's spill sits in 4."""
        cap = index.bucket_capacity
        for i, fp in enumerate(self._fps_for_bucket(index, 7, cap, start=70_000)):
            index.insert(fp, i)  # 7 full: forces 6's overflow leftward
        for i, fp in enumerate(self._fps_for_bucket(index, 6, cap, start=60_000)):
            index.insert(fp, i)
        index.insert(self._fps_for_bucket(index, 6, 1, start=90_000)[0], 99)
        for i, fp in enumerate(self._fps_for_bucket(index, 5, cap - 1, start=50_000)):
            index.insert(fp, i)  # 5 now full (holds 6's spill)
        spilled = self._fps_for_bucket(index, 5, 1, start=95_000)[0]
        index.insert(spilled, 98)  # 6 full, so 5's spill lands in 4
        return spilled

    def test_delete_chain_pulls_back_transitively(self):
        """Regression: deleting from a full bucket whose neighbour is also
        full must cascade the pull-back, or the neighbour's own overflow
        (two buckets from home) becomes unreachable."""
        index = DiskIndex(4, bucket_bytes=512)
        spilled = self._build_overflow_chain(index)
        assert index.lookup(spilled) == 98
        victim = next(
            fp for fp, _ in index.read_bucket(6).entries
            if index.bucket_number(fp) == 6
        )
        assert index.delete(victim)
        # The cascade re-homed both links of the chain.
        assert index.lookup(spilled) == 98
        assert index.read_bucket(index.bucket_number(spilled)).find(spilled) == 98
        for fp, cid in index.iter_entries():
            assert index.lookup(fp) == cid

    def test_delete_chain_audits_clean(self):
        from repro.audit import audit_index

        index = DiskIndex(4, bucket_bytes=512)
        self._build_overflow_chain(index)
        victim = next(
            fp for fp, _ in index.read_bucket(6).entries
            if index.bucket_number(fp) == 6
        )
        index.delete(victim)
        assert audit_index(index).ok

    def test_every_delete_preserves_reachability(self):
        # Drain the whole chained state one delete at a time; no order of
        # deletions may strand a surviving entry.
        index = DiskIndex(4, bucket_bytes=512)
        self._build_overflow_chain(index)
        remaining = dict(index.iter_entries())
        for fp in list(remaining):
            assert index.delete(fp)
            del remaining[fp]
            for other, cid in remaining.items():
                assert index.lookup(other) == cid


class TestDegenerateSmallIndex:
    """n_bits == 1: both 'adjacent' buckets are the same bucket."""

    def _fps_for_bucket(self, index, bucket, count):
        out, offset = [], 0
        while len(out) < count:
            batch = make_fps(200, start=offset)
            out.extend(fp for fp in batch if index.bucket_number(fp) == bucket)
            offset += 200
        return out[:count]

    def test_single_distinct_neighbour(self):
        index = DiskIndex(1, bucket_bytes=512)
        assert index.neighbours(0) == (1,)
        assert index.neighbours(1) == (0,)
        # Two buckets: each neighbours the other once, not twice.
        wider = DiskIndex(2, bucket_bytes=512)
        assert wider.neighbours(0) == (3, 1)

    def test_overflow_lands_in_the_single_neighbour(self):
        index = DiskIndex(1, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 0, cap + 2)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i
        assert len(index.read_bucket(1).entries) == 2

    def test_honest_probe_count(self):
        # A miss in a full home bucket probes exactly one neighbour, not
        # the same bucket twice.
        index = DiskIndex(1, bucket_bytes=512)
        cap = index.bucket_capacity
        for i, fp in enumerate(self._fps_for_bucket(index, 0, cap)):
            index.insert(fp, i)
        missing = self._fps_for_bucket(index, 0, cap + 1)[cap]
        cid, probes = index.lookup_with_probes(missing)
        assert cid is None
        assert probes == 2

    def test_full_error_when_both_buckets_full(self):
        index = DiskIndex(1, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 0, cap) + self._fps_for_bucket(
            index, 1, cap
        )
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        extra = self._fps_for_bucket(index, 0, cap + 1)[cap]
        with pytest.raises(IndexFullError):
            index.insert(extra, 0)

    def test_delete_pull_back_in_two_bucket_index(self):
        from repro.audit import audit_index

        index = DiskIndex(1, bucket_bytes=512)
        cap = index.bucket_capacity
        fps = self._fps_for_bucket(index, 0, cap + 1)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        assert index.delete(fps[0])
        # The spilled entry is pulled home; the invariant holds.
        for i, fp in enumerate(fps[1:], start=1):
            assert index.lookup(fp) == i
        assert audit_index(index).ok


class TestBucketIO:
    def test_read_bucket_range(self):
        index = DiskIndex(4, bucket_bytes=512)
        for i, fp in enumerate(make_fps(100)):
            index.insert(fp, i)
        buckets = index.read_bucket_range(0, 16)
        assert [b.number for b in buckets] == list(range(16))
        assert sum(len(b.entries) for b in buckets) == 100

    def test_write_bucket_range_roundtrip(self):
        index = DiskIndex(4, bucket_bytes=512)
        buckets = index.read_bucket_range(2, 3)
        buckets[1].entries.append((make_fps(1)[0], 7))
        index.write_bucket_range(buckets)
        assert len(index) == 1
        assert index.read_bucket(3).entries[0][1] == 7

    def test_nonconsecutive_write_rejected(self):
        index = DiskIndex(4, bucket_bytes=512)
        b0, b2 = index.read_bucket(0), index.read_bucket(2)
        with pytest.raises(ValueError):
            index.write_bucket_range([b0, b2])

    def test_range_bounds(self):
        index = DiskIndex(4, bucket_bytes=512)
        with pytest.raises(ValueError):
            index.read_bucket_range(10, 10)
        with pytest.raises(ValueError):
            index.read_bucket(16)

    def test_bucket_find(self):
        fps = make_fps(3)
        bucket = Bucket(0, [(fps[0], 1), (fps[1], 2)], capacity=20)
        assert bucket.find(fps[0]) == 1
        assert bucket.find(fps[2]) is None
        assert not bucket.full


class TestInsertDeleteModel:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=59)),
            min_size=1,
            max_size=120,
        )
    )
    def test_property_matches_dict_model(self, ops):
        """Random insert/delete interleavings agree with a dict reference,
        including through overflow and pull-back compaction."""
        universe = make_fps(60)
        index = DiskIndex(3, bucket_bytes=512)  # 8 buckets: heavy overflow
        model = {}
        for is_insert, i in ops:
            fp = universe[i]
            if is_insert:
                if fp not in model:
                    index.insert(fp, i)
                    model[fp] = i
            else:
                assert index.delete(fp) == (fp in model)
                model.pop(fp, None)
            assert len(index) == len(model)
        for fp in universe:
            assert index.lookup(fp) == model.get(fp)
        assert dict(index.iter_entries()) == model


class TestIterAndRebuild:
    def test_iter_entries_complete(self):
        index = DiskIndex(5, bucket_bytes=512)
        fps = make_fps(80)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        entries = dict(index.iter_entries())
        assert entries == {fp: i for i, fp in enumerate(fps)}

    def test_rebuild_from_entries(self):
        source = DiskIndex(5, bucket_bytes=512)
        fps = make_fps(60)
        for i, fp in enumerate(fps):
            source.insert(fp, i)
        rebuilt = DiskIndex.rebuild_from_entries(source.iter_entries(), 6, bucket_bytes=512)
        assert len(rebuilt) == 60
        for i, fp in enumerate(fps):
            assert rebuilt.lookup(fp) == i

    def test_snapshot_only_nonempty(self):
        index = DiskIndex(6, bucket_bytes=512)
        index.insert(make_fps(1)[0], 3)
        snap = index.snapshot()
        assert len(snap) == 1
        assert list(snap.values())[0][0][1] == 3
