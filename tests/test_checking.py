"""Tests for the checking fingerprint file (asynchronous SIU, Section 5.4)."""

import pytest

from repro.core.checking import CheckingFile
from tests.conftest import make_fps


class TestScreen:
    def test_unknown_fps_are_new(self):
        cf = CheckingFile()
        fps = make_fps(10)
        new, pending = cf.screen(fps)
        assert new == fps
        assert pending == {}

    def test_pending_fps_reported_with_container(self):
        cf = CheckingFile()
        fps = make_fps(10)
        cf.append({fps[0]: 5, fps[1]: 6})
        new, pending = cf.screen(fps)
        assert set(new) == set(fps[2:])
        assert pending == {fps[0]: 5, fps[1]: 6}

    def test_screen_preserves_order_of_new(self):
        cf = CheckingFile()
        fps = make_fps(5)
        cf.append({fps[2]: 1})
        new, _ = cf.screen(fps)
        assert new == [fps[0], fps[1], fps[3], fps[4]]


class TestAppendRegister:
    def test_append_then_registered_removes(self):
        cf = CheckingFile()
        fps = make_fps(6)
        cf.append({fp: i for i, fp in enumerate(fps)})
        assert len(cf) == 6
        assert cf.registered(fps[:4]) == 4
        assert len(cf) == 2
        assert fps[5] in cf

    def test_registered_ignores_unknown(self):
        cf = CheckingFile()
        assert cf.registered(make_fps(3)) == 0

    def test_append_rejects_null_container(self):
        cf = CheckingFile()
        fp = make_fps(1)[0]
        with pytest.raises(ValueError):
            cf.append({fp: None})
        with pytest.raises(ValueError):
            cf.append({fp: -1})

    def test_double_store_detected(self):
        # The same fingerprint pending in two different containers is the
        # duplicate-store bug the checking file exists to prevent.
        cf = CheckingFile()
        fp = make_fps(1)[0]
        cf.append({fp: 3})
        with pytest.raises(ValueError):
            cf.append({fp: 4})

    def test_idempotent_append_same_container(self):
        cf = CheckingFile()
        fp = make_fps(1)[0]
        cf.append({fp: 3})
        cf.append({fp: 3})
        assert len(cf) == 1

    def test_get_and_pending_snapshot(self):
        cf = CheckingFile()
        fps = make_fps(3)
        cf.append({fps[0]: 7})
        assert cf.get(fps[0]) == 7
        assert cf.get(fps[1]) is None
        snap = cf.pending()
        snap[fps[1]] = 99
        assert fps[1] not in cf  # snapshot is a copy


class TestAsyncSiuScenario:
    def test_two_sils_one_siu(self):
        """A fingerprint stored after SIL #1 must read as duplicate in SIL
        #2 even though SIU has not yet registered it."""
        cf = CheckingFile()
        shared = make_fps(5)
        # SIL #1: all new -> stored into container 11.
        new1, pending1 = cf.screen(shared)
        assert new1 == shared and not pending1
        cf.append({fp: 11 for fp in new1})
        # SIL #2 on an overlapping batch: everything pending, nothing new.
        new2, pending2 = cf.screen(shared)
        assert new2 == []
        assert all(cid == 11 for cid in pending2.values())
        # SIU runs: the window closes.
        cf.registered(shared)
        new3, pending3 = cf.screen(shared)
        assert new3 == shared and not pending3
