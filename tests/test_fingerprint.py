"""Tests for fingerprints and the counter->SHA-1 synthetic generator."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.core.fingerprint import (
    FINGERPRINT_SIZE,
    MAX_CONTAINER_ID,
    SyntheticFingerprints,
    fingerprint,
    fp_bucket,
    fp_hex,
    validate_container_id,
    validate_fingerprint,
)


class TestFingerprint:
    def test_is_sha1(self):
        data = b"chunk content"
        assert fingerprint(data) == hashlib.sha1(data).digest()
        assert len(fingerprint(data)) == FINGERPRINT_SIZE

    def test_deterministic(self):
        assert fingerprint(b"x") == fingerprint(b"x")

    def test_distinct_content_distinct_fp(self):
        assert fingerprint(b"a") != fingerprint(b"b")

    def test_fp_bucket_uses_leading_bits(self):
        fp = bytes([0b10110000]) + b"\x00" * 19
        assert fp_bucket(fp, 4) == 0b1011
        assert fp_bucket(fp, 8) == 0b10110000

    def test_fp_hex_short(self):
        assert len(fp_hex(fingerprint(b"z"))) == 12

    @given(st.binary(max_size=64))
    def test_fp_bucket_consistent_with_int(self, data):
        fp = fingerprint(data)
        n = 16
        expected = int.from_bytes(fp, "big") >> (FINGERPRINT_SIZE * 8 - n)
        assert fp_bucket(fp, n) == expected


class TestValidation:
    def test_validate_fingerprint_ok(self):
        fp = fingerprint(b"ok")
        assert validate_fingerprint(fp) == fp

    def test_validate_fingerprint_wrong_length(self):
        with pytest.raises(ValueError):
            validate_fingerprint(b"short")

    def test_validate_fingerprint_wrong_type(self):
        with pytest.raises(ValueError):
            validate_fingerprint("not bytes")

    def test_validate_container_id_bounds(self):
        assert validate_container_id(0) == 0
        assert validate_container_id(MAX_CONTAINER_ID) == MAX_CONTAINER_ID
        with pytest.raises(ValueError):
            validate_container_id(-1)
        with pytest.raises(ValueError):
            validate_container_id(MAX_CONTAINER_ID + 1)

    def test_container_id_space_is_40_bits(self):
        # 40-bit IDs x 8 MB containers = 8 EB (Section 3.4).
        assert MAX_CONTAINER_ID == (1 << 40) - 1


class TestSyntheticFingerprints:
    def test_counter_sha1(self):
        gen = SyntheticFingerprints(0)
        assert gen.at(5) == hashlib.sha1((5).to_bytes(8, "big")).digest()

    def test_subspaces_disjoint(self):
        a = set(SyntheticFingerprints(0).fresh(500))
        b = set(SyntheticFingerprints(1).fresh(500))
        assert not a & b

    def test_fresh_never_repeats(self):
        gen = SyntheticFingerprints(0)
        first = gen.fresh(100)
        second = gen.fresh(100)
        assert not set(first) & set(second)
        assert gen.generated == 200

    def test_range_reproduces(self):
        gen = SyntheticFingerprints(3)
        fps = gen.fresh(50)
        assert gen.range(0, 50) == fps

    def test_subspace_offset(self):
        gen = SyntheticFingerprints(2, subspace_bits=58)
        counter = (2 << 58) + 7
        assert gen.at(7) == hashlib.sha1(counter.to_bytes(8, "big")).digest()

    def test_bad_subspace(self):
        with pytest.raises(ValueError):
            SyntheticFingerprints(64, subspace_bits=58)
        with pytest.raises(ValueError):
            SyntheticFingerprints(0, subspace_bits=0)

    def test_offset_out_of_range(self):
        gen = SyntheticFingerprints(0, subspace_bits=4)
        with pytest.raises(ValueError):
            gen.at(16)

    def test_exhaustion(self):
        gen = SyntheticFingerprints(0, subspace_bits=4)
        gen.fresh(16)
        with pytest.raises(ValueError):
            gen.fresh(1)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            SyntheticFingerprints(0).fresh(-1)

    def test_uniformity_of_buckets(self):
        # SHA-1 over counters must spread evenly over 16 buckets.
        gen = SyntheticFingerprints(0)
        fps = gen.fresh(8000)
        counts = [0] * 16
        for fp in fps:
            counts[fp_bucket(fp, 4)] += 1
        expected = len(fps) / 16
        assert all(0.8 * expected < c < 1.2 * expected for c in counts)
