"""Tests for retention (forget) and garbage collection in the vault."""

import pytest

from repro.core.disk_index import DiskIndex
from repro.system import DebarVault, VaultError
from repro.workloads import FileTreeGenerator, mutate_tree
from tests.conftest import make_fps


def vault_with_two_generations(tmp_path, overlap=True):
    """Two runs; the second shares most chunks with the first iff overlap."""
    src = tmp_path / "src"
    FileTreeGenerator(seed=11).generate(
        src, n_files=6, n_dirs=2, min_size=8 * 1024, max_size=32 * 1024
    )
    vault = DebarVault(tmp_path / "vault", container_bytes=64 * 1024)
    run1 = vault.backup("docs", [src])
    if overlap:
        mutate_tree(src, seed=12, edit_fraction=0.3, new_files=1, delete_files=0)
    else:
        for p in list(src.rglob("*.bin")):
            p.unlink()
        FileTreeGenerator(seed=99).generate(
            src / "fresh", n_files=6, n_dirs=1, min_size=8 * 1024, max_size=32 * 1024
        )
    run2 = vault.backup("docs", [src])
    return vault, src, run1, run2


class TestIndexDelete:
    def test_delete_present(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(40)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        assert index.delete(fps[7])
        assert index.lookup(fps[7]) is None
        assert len(index) == 39
        # Everything else intact.
        assert all(index.lookup(fp) is not None for fp in fps if fp != fps[7])

    def test_delete_absent(self):
        index = DiskIndex(6, bucket_bytes=512)
        assert not index.delete(make_fps(1)[0])

    def test_delete_overflowed_entry(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        target, offset = [], 0
        while len(target) < cap + 2:
            target.extend(
                fp for fp in make_fps(300, start=offset) if index.bucket_number(fp) == 6
            )
            offset += 300
        target = target[: cap + 2]
        for i, fp in enumerate(target):
            index.insert(fp, i)
        # The overflowed entries live in neighbours; delete must find them.
        for fp in target:
            assert index.delete(fp)
        assert len(index) == 0


class TestForget:
    def test_forget_removes_from_catalog(self, tmp_path):
        vault, _, run1, run2 = vault_with_two_generations(tmp_path)
        vault.forget(run1.run_id)
        assert [r.run_id for r in vault.runs()] == [run2.run_id]

    def test_forget_unknown_run(self, tmp_path):
        vault = DebarVault(tmp_path / "vault")
        with pytest.raises(VaultError):
            vault.forget(7)

    def test_chunks_survive_until_gc(self, tmp_path):
        vault, _, run1, run2 = vault_with_two_generations(tmp_path)
        physical = vault.stats()["physical_bytes"]
        vault.forget(run1.run_id)
        assert vault.stats()["physical_bytes"] == physical  # nothing reclaimed yet


class TestGc:
    def test_noop_when_everything_live(self, tmp_path):
        vault, _, _, _ = vault_with_two_generations(tmp_path)
        report = vault.gc()
        assert report.containers_removed == 0
        assert report.containers_rewritten == 0
        assert report.bytes_reclaimed == 0

    def test_reclaims_after_forgetting_disjoint_run(self, tmp_path):
        vault, src, run1, run2 = vault_with_two_generations(tmp_path, overlap=False)
        before = vault.stats()["physical_bytes"]
        vault.forget(run1.run_id)
        report = vault.gc(rewrite_threshold=1.0)
        assert report.bytes_reclaimed > 0
        assert vault.stats()["physical_bytes"] < before
        # The surviving run still restores byte-identically.
        vault.restore(run2.run_id, tmp_path / "out", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "out" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_copy_forward_preserves_shared_chunks(self, tmp_path):
        vault, src, run1, run2 = vault_with_two_generations(tmp_path, overlap=True)
        vault.forget(run1.run_id)
        report = vault.gc(rewrite_threshold=1.0)  # rewrite every mixed container
        # Shared chunks were copied forward, not dropped.
        assert vault.verify()["fingerprints"] > 0
        vault.restore(run2.run_id, tmp_path / "out2", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "out2" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()
        # Index contains exactly the live set afterwards.
        assert vault.stats()["index_entries"] == len(vault.live_fingerprints())

    def test_threshold_zero_keeps_mixed_containers(self, tmp_path):
        vault, _, run1, _ = vault_with_two_generations(tmp_path, overlap=True)
        vault.forget(run1.run_id)
        report = vault.gc(rewrite_threshold=0.0)
        assert report.containers_rewritten == 0
        # Mixed containers are kept; fully dead ones may still be removed.
        assert report.containers_kept_with_dead + report.containers_removed > 0

    def test_forget_all_runs_empties_vault(self, tmp_path):
        vault, _, run1, run2 = vault_with_two_generations(tmp_path)
        vault.forget(run1.run_id)
        vault.forget(run2.run_id)
        report = vault.gc()
        assert vault.stats()["physical_bytes"] == 0
        assert vault.stats()["index_entries"] == 0
        assert report.containers_removed > 0

    def test_invalid_threshold(self, tmp_path):
        vault = DebarVault(tmp_path / "vault")
        with pytest.raises(VaultError):
            vault.gc(rewrite_threshold=2.0)

    def test_gc_survives_reopen(self, tmp_path):
        vault, src, run1, run2 = vault_with_two_generations(tmp_path, overlap=True)
        vault.forget(run1.run_id)
        vault.gc(rewrite_threshold=1.0)
        vault.close()
        with DebarVault(tmp_path / "vault") as reopened:
            assert reopened.verify()["runs"] == 1
            reopened.restore(run2.run_id, tmp_path / "out3", strip_prefix=tmp_path)


class TestGcCli:
    def test_cli_forget_and_gc(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        vault, _, run1, _ = vault_with_two_generations(tmp_path, overlap=False)
        vault.close()
        root = str(tmp_path / "vault")
        assert cli_main(["forget", "--vault", root, "--run", str(run1.run_id)]) == 0
        assert cli_main(["gc", "--vault", root, "--rewrite-threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        assert cli_main(["verify", "--vault", root]) == 0
