"""Tests for the backup client engine, File Store sessions and Chunk Store."""

import pytest

from repro.chunking import ContentDefinedChunker
from repro.client import BackupEngine
from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.server import BackupServer, BackupServerConfig, ChunkStore, FileStore
from repro.storage import ChunkRepository
from tests.conftest import make_fps


def small_chunker():
    return ContentDefinedChunker(avg_bits=8, min_size=64, max_size=1024)


def make_tpds(materialize=True):
    index = DiskIndex(8, bucket_bytes=512)
    repo = ChunkRepository()
    return TwoPhaseDeduplicator(
        index, repo, filter_capacity=4096, cache_capacity=1 << 20,
        container_bytes=64 * 1024, materialize=materialize,
    )


class TestBackupEngine:
    def test_scan_dataset_expands_dirs(self, tmp_path):
        (tmp_path / "a.txt").write_bytes(b"a" * 100)
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.txt").write_bytes(b"b" * 100)
        engine = BackupEngine("c1")
        files = engine.scan_dataset([tmp_path])
        assert [f.name for f in files] == ["a.txt", "b.txt"]

    def test_scan_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            BackupEngine("c1").scan_dataset(["/definitely/not/here"])

    def test_read_file_metadata_and_chunks(self, tmp_path):
        path = tmp_path / "f.bin"
        data = bytes(range(256)) * 40
        path.write_bytes(data)
        engine = BackupEngine("c1", chunker=small_chunker())
        metadata, chunks = engine.read_file(path)
        assert metadata.size == len(data)
        assert b"".join(c.data for c in chunks) == data

    def test_client_needs_name(self):
        with pytest.raises(ValueError):
            BackupEngine("")

    def test_restore_file_roundtrip(self, tmp_path):
        src = tmp_path / "src" / "doc.bin"
        src.parent.mkdir()
        data = bytes(range(256)) * 30
        src.write_bytes(data)
        engine = BackupEngine("c1", chunker=small_chunker())
        metadata, chunks = engine.read_file(src)
        tpds = make_tpds()
        session = FileStore(tpds).begin_session()
        entry = session.add_file(metadata, chunks)
        session.close()
        tpds.dedup2()
        store = ChunkStore(tpds)
        out = engine.restore_file(entry, store, tmp_path / "restore", strip_prefix=tmp_path)
        assert out.read_bytes() == data

    def test_restore_size_mismatch_detected(self, tmp_path):
        engine = BackupEngine("c1")
        fps = make_fps(1)
        tpds = make_tpds()
        session = FileStore(tpds).begin_session()
        session.add_fingerprint_stream([(fps[0], 100, b"x" * 100)], path="/f")
        session.close()
        tpds.dedup2()
        bad_entry = FileIndexEntry(FileMetadata("/f", 999), fps)
        with pytest.raises(IOError):
            engine.restore_file(bad_entry, ChunkStore(tpds), tmp_path)


class TestBackupSession:
    def test_session_buffers_until_close(self):
        tpds = make_tpds(materialize=False)
        session = FileStore(tpds).begin_session()
        fps = make_fps(10)
        session.add_fingerprint_stream([(fp, 8192) for fp in fps])
        assert tpds.undetermined_count == 0  # nothing ran yet
        stats, entries = session.close()
        assert stats.logical_chunks == 10
        assert tpds.undetermined_count == 10
        assert entries[0].fingerprints == fps

    def test_session_close_once(self):
        tpds = make_tpds(materialize=False)
        session = FileStore(tpds).begin_session()
        session.close()
        with pytest.raises(RuntimeError):
            session.close()
        with pytest.raises(RuntimeError):
            session.add_fingerprint_stream([])

    def test_filtering_fps_applied(self):
        tpds = make_tpds(materialize=False)
        fps = make_fps(10)
        s1 = FileStore(tpds).begin_session()
        s1.add_fingerprint_stream([(fp, 8192) for fp in fps])
        s1.close()
        s2 = FileStore(tpds).begin_session(filtering_fps=fps)
        s2.add_fingerprint_stream([(fp, 8192) for fp in fps])
        stats, _ = s2.close()
        assert stats.transferred_chunks == 0


class TestChunkStore:
    def test_read_chunk_via_lpc(self):
        tpds = make_tpds(materialize=False)
        fps = make_fps(20)
        session = FileStore(tpds).begin_session()
        session.add_fingerprint_stream([(fp, 8192) for fp in fps])
        session.close()
        tpds.dedup2()
        store = ChunkStore(tpds, lpc_containers=4)
        for fp in fps:
            assert len(store.read_chunk(fp)) == 8192
        # Sequential restore: few random lookups, high hit rate.
        assert store.random_lookups < len(fps)
        assert store.lpc_hit_rate > 0.5

    def test_read_pending_chunk_via_checking_file(self):
        # Stored but not yet SIU-registered chunks must still restore.
        tpds = make_tpds(materialize=False)
        tpds.siu_every = 10
        fps = make_fps(5)
        session = FileStore(tpds).begin_session()
        session.add_fingerprint_stream([(fp, 8192) for fp in fps])
        session.close()
        tpds.dedup2()  # SIU deferred
        assert len(tpds.index) == 0
        store = ChunkStore(tpds)
        assert len(store.read_chunk(fps[0])) == 8192

    def test_read_missing_raises(self):
        store = ChunkStore(make_tpds(materialize=False))
        with pytest.raises(KeyError):
            store.read_chunk(make_fps(1)[0])


class TestBackupServer:
    def test_composition(self, small_config):
        repo = ChunkRepository()
        server = BackupServer(0, repo, config=small_config)
        assert server.index.n_bits == small_config.index_n_bits
        assert server.undetermined_count == 0
        assert server.chunk_log_bytes == 0
        assert server.owns(make_fps(1)[0])

    def test_index_part_prefix(self, small_config):
        repo = ChunkRepository()
        server = BackupServer(2, repo, config=small_config, w_bits=2)
        assert server.index.prefix_bits == 2
        assert server.index.prefix_value == 2
        owned = [fp for fp in make_fps(100) if server.owns(fp)]
        assert 0 < len(owned) < 100
