"""Tests for the in-memory index cache used by SIL/SIU."""

import pytest

from repro.core.index_cache import (
    FINGERPRINTS_PER_GB,
    PENDING_CONTAINER,
    CacheFullError,
    IndexCache,
    cache_capacity_for_memory,
)
from repro.core.fingerprint import fp_bucket
from repro.util import GB
from tests.conftest import make_fps


class TestCapacityRule:
    def test_1gb_is_44m_fingerprints(self):
        # Section 5.2: "about 1GB memory cache ... about 44 million".
        assert cache_capacity_for_memory(1 * GB) == FINGERPRINTS_PER_GB

    def test_scales_linearly(self):
        assert cache_capacity_for_memory(3 * GB) == 3 * FINGERPRINTS_PER_GB

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cache_capacity_for_memory(0)


class TestBasicOps:
    def test_insert_get(self):
        cache = IndexCache()
        fp = make_fps(1)[0]
        assert cache.insert(fp)
        assert cache.get(fp) is None  # undetermined
        cache.set_container(fp, 9)
        assert cache.get(fp) == 9

    def test_insert_duplicate_returns_false(self):
        cache = IndexCache()
        fp = make_fps(1)[0]
        assert cache.insert(fp)
        assert not cache.insert(fp)
        assert len(cache) == 1

    def test_duplicate_insert_keeps_original_value(self):
        cache = IndexCache()
        fp = make_fps(1)[0]
        cache.insert(fp, 5)
        cache.insert(fp, 99)
        assert cache.get(fp) == 5

    def test_remove(self):
        cache = IndexCache()
        fp = make_fps(1)[0]
        cache.insert(fp, 3)
        assert cache.remove(fp) == 3
        assert fp not in cache
        with pytest.raises(KeyError):
            cache.remove(fp)

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            IndexCache().get(make_fps(1)[0])

    def test_set_container_missing_raises(self):
        with pytest.raises(KeyError):
            IndexCache().set_container(make_fps(1)[0], 1)

    def test_capacity_enforced(self):
        cache = IndexCache(capacity=5)
        for fp in make_fps(5):
            cache.insert(fp)
        with pytest.raises(CacheFullError):
            cache.insert(make_fps(1, start=100)[0])

    def test_clear(self):
        cache = IndexCache()
        for fp in make_fps(10):
            cache.insert(fp)
        cache.clear()
        assert len(cache) == 0

    def test_pending_sentinel_is_not_a_real_container(self):
        assert PENDING_CONTAINER < 0


class TestOrderedViews:
    def test_sorted_is_numeric_order(self):
        cache = IndexCache()
        fps = make_fps(200)
        for fp in fps:
            cache.insert(fp)
        ordered = cache.sorted_fingerprints()
        values = [int.from_bytes(fp, "big") for fp in ordered]
        assert values == sorted(values)

    def test_by_disk_bucket_increasing_and_complete(self):
        cache = IndexCache()
        fps = make_fps(300)
        for fp in fps:
            cache.insert(fp)
        seen = []
        total = 0
        last = -1
        for bucket, group in cache.by_disk_bucket(6):
            assert bucket > last
            last = bucket
            for fp in group:
                assert fp_bucket(fp, 6) == bucket
            total += len(group)
            seen.extend(group)
        assert total == 300
        assert set(seen) == set(fps)

    def test_by_disk_bucket_with_prefix(self):
        # Fingerprints of one index part: bucket = bits after the prefix.
        cache = IndexCache()
        part_fps = [fp for fp in make_fps(400) if fp_bucket(fp, 2) == 1][:50]
        for fp in part_fps:
            cache.insert(fp)
        for bucket, group in cache.by_disk_bucket(4, prefix_bits=2):
            for fp in group:
                assert fp_bucket(fp, 6) & 0b1111 == bucket

    def test_disk_range_mapping(self):
        # Figure 4: cache bucket k covers disk buckets [k*2^(n-m), ...).
        cache = IndexCache(m_bits=4)
        start, count = cache.disk_range_for_cache_bucket(3, n_bits=10)
        assert start == 3 * 64
        assert count == 64

    def test_disk_range_requires_n_ge_m(self):
        cache = IndexCache(m_bits=8)
        with pytest.raises(ValueError):
            cache.disk_range_for_cache_bucket(0, n_bits=4)

    def test_cache_bucket(self):
        cache = IndexCache(m_bits=4)
        fp = make_fps(1)[0]
        assert cache.cache_bucket(fp) == fp_bucket(fp, 4)

    def test_items_iterates_nodes(self):
        cache = IndexCache()
        fps = make_fps(5)
        for i, fp in enumerate(fps):
            cache.insert(fp, i)
        assert dict(cache.items()) == {fp: i for i, fp in enumerate(fps)}
