"""Tests for the page-sparse block store and the append cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simdisk import DiskModel
from repro.storage import MemoryBlockStore, SparseMemoryBlockStore
from repro.util import MB


class TestSparseMemoryBlockStore:
    def test_zero_initialised(self):
        store = SparseMemoryBlockStore(1 << 20)
        assert store.read(12345, 100) == b"\x00" * 100
        assert store.resident_bytes == 0

    def test_write_read_roundtrip(self):
        store = SparseMemoryBlockStore(1 << 20)
        store.write(5000, b"hello sparse world")
        assert store.read(5000, 18) == b"hello sparse world"

    def test_write_spanning_pages(self):
        store = SparseMemoryBlockStore(1 << 20)
        payload = bytes(range(256)) * 40  # 10240 bytes, > 2 pages
        store.write(4000, payload)  # crosses page boundaries
        assert store.read(4000, len(payload)) == payload
        # Neighbouring bytes stay zero.
        assert store.read(3999, 1) == b"\x00"
        assert store.read(4000 + len(payload), 1) == b"\x00"

    def test_resident_tracks_touched_pages(self):
        store = SparseMemoryBlockStore(1 << 30)  # 1 GB addressable
        store.write(0, b"x")
        store.write(1 << 29, b"y")
        assert store.resident_bytes == 2 * SparseMemoryBlockStore.PAGE

    def test_bounds_checked(self):
        store = SparseMemoryBlockStore(1024)
        with pytest.raises(ValueError):
            store.read(1000, 100)
        with pytest.raises(ValueError):
            store.write(1020, b"too long")
        with pytest.raises(ValueError):
            SparseMemoryBlockStore(0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=60_000), st.binary(min_size=1, max_size=5000)),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_equivalent_to_dense(self, writes):
        """The sparse store is observably identical to a dense one."""
        size = 1 << 16
        sparse = SparseMemoryBlockStore(size)
        dense = MemoryBlockStore(size)
        for offset, data in writes:
            data = data[: size - offset]
            if not data:
                continue
            sparse.write(offset, data)
            dense.write(offset, data)
        assert sparse.read(0, size) == dense.read(0, size)


class TestAppendCostModel:
    def test_append_write_has_no_positioning(self):
        disk = DiskModel(seq_write_rate=100 * MB, random_io_time=0.015)
        assert disk.append_write_time(100 * MB) == pytest.approx(1.0)
        assert disk.seq_write_time(100 * MB) == pytest.approx(1.015)

    def test_append_read_has_no_positioning(self):
        disk = DiskModel(seq_read_rate=100 * MB, random_io_time=0.015)
        assert disk.append_read_time(100 * MB) == pytest.approx(1.0)

    def test_zero_bytes_free(self):
        disk = DiskModel()
        assert disk.append_write_time(0) == 0.0
        assert disk.append_read_time(0) == 0.0

    def test_negative_rejected(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.append_write_time(-1)
        with pytest.raises(ValueError):
            disk.append_read_time(-1)
