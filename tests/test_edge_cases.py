"""Edge-case coverage across modules: overflow paths, scaling-in-cluster,
schedule arithmetic, dataset scanning, synthetic generator limits."""

import pytest

from repro.analysis.overflow import UtilizationSimulator
from repro.client import BackupEngine
from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.director.jobs import Schedule
from repro.server import BackupServerConfig
from repro.storage import ChunkRepository
from repro.system import DebarCluster
from repro.workloads import SyntheticConfig, SyntheticUniverse
from tests.conftest import make_fps


class TestClusterCapacityScaling:
    def test_index_part_scales_during_psiu(self):
        """A tiny index part must capacity-scale (2^n -> 2^(n+1)) inside
        PSIU without losing entries, keeping its server prefix."""
        cfg = BackupServerConfig(
            index_n_bits=2,  # 4 buckets x 20 entries per part
            index_bucket_bytes=512,
            container_bytes=64 * 1024,
            filter_capacity=4096,
            cache_capacity=1 << 16,
        )
        cluster = DebarCluster(w_bits=1, config=cfg)
        fps = make_fps(400)
        job = cluster.director.define_job("big", "c", [])
        cluster.backup_streams([(job, [(fp, 8192) for fp in fps])])
        cluster.run_dedup2(force_psiu=True)
        assert sum(len(s.index) for s in cluster.servers) == 400
        for server in cluster.servers:
            assert server.index.n_bits > 2  # scaled
            assert server.index.prefix_bits == 1  # prefix preserved
            assert server.tpds.capacity_scalings >= 1
        for fp in fps:
            owner = cluster.owner_of(fp)
            assert cluster.servers[owner].index.lookup(fp) is not None

    def test_owner_sil_batches_when_over_cache(self):
        """An owner receiving more than a cache-full runs multiple sweeps
        and still classifies every fingerprint."""
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=4096, cache_capacity=64,  # forces many sweeps
        )
        cluster = DebarCluster(w_bits=1, config=cfg)
        fps = make_fps(500)
        job = cluster.director.define_job("j", "c", [])
        cluster.backup_streams([(job, [(fp, 8192) for fp in fps])])
        stats = cluster.run_dedup2(force_psiu=True)
        assert stats.new_chunks_stored == 500
        assert sum(len(s.index) for s in cluster.servers) == 500


class TestTpdsEdges:
    def _tpds(self, **kwargs):
        defaults = dict(
            filter_capacity=4096, cache_capacity=1 << 16, container_bytes=64 * 1024
        )
        defaults.update(kwargs)
        return TwoPhaseDeduplicator(
            DiskIndex(8, bucket_bytes=512), ChunkRepository(), **defaults
        )

    def test_store_from_log_with_no_new_fps(self):
        tpds = self._tpds()
        fps = make_fps(10)
        tpds.dedup1_backup([(fp, 8192) for fp in fps])
        tpds.drain_undetermined()
        stored, stats = tpds.store_from_log([])
        assert stored == {}
        assert stats.new_chunks_stored == 0
        assert stats.log_records_discarded == 10

    def test_zero_size_chunks_allowed(self):
        tpds = self._tpds()
        fp = make_fps(1)[0]
        stats, _ = tpds.dedup1_backup([(fp, 0)])
        assert stats.logical_bytes == 0
        d2 = tpds.dedup2()
        assert d2.new_chunks_stored == 1

    def test_run_siu_now_noop_when_empty(self):
        tpds = self._tpds()
        stats = tpds.run_siu_now()
        assert not stats.siu_performed

    def test_filter_eviction_relog_resolved_in_dedup2(self):
        """A filter small enough to evict causes the same fingerprint to be
        logged twice; chunk storing stores it once."""
        tpds = self._tpds(filter_capacity=4)
        fps = make_fps(8)
        stream = [(fp, 8192) for fp in fps + fps]  # revisits after eviction
        stats, _ = tpds.dedup1_backup(stream)
        assert stats.transferred_chunks > 8  # re-logged duplicates
        d2 = tpds.dedup2()
        assert d2.new_chunks_stored == 8
        assert tpds.physical_chunk_bytes() == 8 * 8192


class TestScheduleArithmetic:
    def test_weekly_next_run(self):
        s = Schedule("weekly", 2, 0)
        offset = 2 * 3600
        assert s.next_run_time(0.0) == offset
        assert s.next_run_time(offset) == 7 * 86400 + offset

    def test_hourly_series_is_periodic(self):
        s = Schedule("hourly", 0, 15)
        t = 0.0
        times = []
        for _ in range(5):
            t = s.next_run_time(t)
            times.append(t)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == 3600 for d in diffs)


class TestBackupEngineEdges:
    def test_scan_single_file(self, tmp_path):
        f = tmp_path / "one.bin"
        f.write_bytes(b"data")
        assert BackupEngine("c").scan_dataset([f]) == [f]

    def test_scan_mixed_dataset(self, tmp_path):
        f = tmp_path / "a.bin"
        f.write_bytes(b"data")
        d = tmp_path / "dir"
        d.mkdir()
        (d / "b.bin").write_bytes(b"more")
        files = BackupEngine("c").scan_dataset([f, d])
        assert [p.name for p in files] == ["a.bin", "b.bin"]

    def test_empty_file_roundtrip(self, tmp_path):
        f = tmp_path / "empty.bin"
        f.write_bytes(b"")
        metadata, chunks = BackupEngine("c").read_file(f)
        assert metadata.size == 0
        assert chunks == []


class TestSyntheticGeneratorLimits:
    def test_many_streams_narrow_subspaces(self):
        cfg = SyntheticConfig(n_streams=128, section_chunks=16, seed=1)
        universe = SyntheticUniverse(cfg)
        a = universe.next_version(0, 64)
        b = universe.next_version(127, 64)
        fps_a = {fp for s in a for fp in universe.fingerprints_of(s)}
        fps_b = {fp for s in b for fp in universe.fingerprints_of(s)}
        assert not fps_a & fps_b  # subspaces stay disjoint

    def test_iter_fresh_matches_fresh(self):
        from repro.core.fingerprint import SyntheticFingerprints

        a = SyntheticFingerprints(0)
        b = SyntheticFingerprints(0)
        assert list(a.iter_fresh(10)) == b.fresh(10)


class TestOverflowSimulatorEdges:
    def test_exact_simulator_deterministic(self):
        a = UtilizationSimulator(8, 20, seed=3).run_exact()
        b = UtilizationSimulator(8, 20, seed=3).run_exact()
        assert a == b

    def test_fast_simulator_deterministic(self):
        a = UtilizationSimulator(10, 40, seed=4).run_fast()
        b = UtilizationSimulator(10, 40, seed=4).run_fast()
        assert a == b
