"""Tests for the simulated clock, lanes, barriers and the time ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.simdisk import ClockLane, Meter, SimClock, barrier


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_zero_ok(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_forward_only(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        clock.advance_to(5.0)  # no-op
        assert clock.now == 10.0

    def test_elapsed_since(self):
        clock = SimClock()
        t0 = clock.now
        clock.advance(3.0)
        assert clock.elapsed_since(t0) == 3.0

    def test_elapsed_since_future_rejected(self):
        with pytest.raises(ValueError):
            SimClock().elapsed_since(1.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=30))
    def test_monotone(self, deltas):
        clock = SimClock()
        last = 0.0
        for d in deltas:
            clock.advance(d)
            assert clock.now >= last
            last = clock.now


class TestBarrier:
    def test_barrier_syncs_to_max(self):
        lanes = [ClockLane(f"s{i}") for i in range(4)]
        lanes[2].advance(7.0)
        lanes[0].advance(3.0)
        t = barrier(lanes)
        assert t == 7.0
        assert all(lane.now == 7.0 for lane in lanes)

    def test_barrier_empty_rejected(self):
        with pytest.raises(ValueError):
            barrier([])

    def test_lane_has_name(self):
        assert ClockLane("server-3").name == "server-3"


class TestMeter:
    def test_charge_advances_clock(self):
        clock = SimClock()
        meter = Meter(clock)
        meter.charge("sil.scan", 2.0)
        meter.charge("sil.scan", 1.0)
        meter.charge("siu.write", 4.0)
        assert clock.now == 7.0
        assert meter.by_category["sil.scan"] == 3.0

    def test_record_does_not_advance(self):
        clock = SimClock()
        meter = Meter(clock)
        meter.record("dedup1.network", 5.0)
        assert clock.now == 0.0
        assert meter.by_category["dedup1.network"] == 5.0

    def test_total_prefix(self):
        meter = Meter(SimClock())
        meter.charge("sil.scan", 1.0)
        meter.charge("sil.cpu", 0.5)
        meter.charge("siu.read", 2.0)
        assert meter.total("sil") == 1.5
        assert meter.total() == 3.5

    def test_negative_rejected(self):
        meter = Meter(SimClock())
        with pytest.raises(ValueError):
            meter.charge("x", -1)
        with pytest.raises(ValueError):
            meter.record("x", -1)

    def test_snapshot_is_copy(self):
        meter = Meter(SimClock())
        meter.charge("a", 1.0)
        snap = meter.snapshot()
        snap["a"] = 99.0
        assert meter.by_category["a"] == 1.0
