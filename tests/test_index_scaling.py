"""Tests for the disk index's two scaling properties (Section 4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disk_index import DiskIndex
from repro.storage import FileBlockStore, MemoryBlockStore, SparseMemoryBlockStore
from repro.util import bit_prefix
from tests.conftest import make_fps


class TestCapacityScaling:
    def test_doubles_bucket_count(self):
        index = DiskIndex(4, bucket_bytes=512)
        scaled = index.scale_capacity()
        assert scaled.n_bits == 5
        assert scaled.n_buckets == 32
        assert scaled.bucket_bytes == index.bucket_bytes

    def test_preserves_every_entry(self):
        index = DiskIndex(4, bucket_bytes=512)
        fps = make_fps(150)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        assert len(scaled) == 150
        for i, fp in enumerate(fps):
            assert scaled.lookup(fp) == i

    def test_entries_rehomed_by_extra_bit(self):
        index = DiskIndex(4, bucket_bytes=512)
        fps = make_fps(100)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        # Old bucket k's residents split between new buckets 2k and 2k+1
        # according to bit n+1 of the fingerprint — i.e. every entry sits in
        # (or adjacent to) its 5-bit home.
        for k in range(scaled.n_buckets):
            for fp, _ in scaled.read_bucket(k).entries:
                home = scaled.bucket_number(fp)
                assert k in (home, (home - 1) % 32, (home + 1) % 32)
                assert home >> 1 == bit_prefix(fp, 4)

    def test_resolves_fullness(self):
        # Fill one bucket and its two neighbours, then scale: the scaled
        # index must accept the fingerprint that previously overflowed.
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        offset = 0
        for bucket in (4, 5, 6):
            placed = 0
            while placed < cap:
                for fp in make_fps(200, start=offset):
                    if index.bucket_number(fp) == bucket and placed < cap:
                        index.insert(fp, placed)
                        placed += 1
                offset += 200
        scaled = index.scale_capacity()
        assert len(scaled) == 3 * cap
        extra = next(
            fp for fp in make_fps(500, start=99_000) if index.bucket_number(fp) == 5
        )
        scaled.insert(extra, 7)
        assert scaled.lookup(extra) == 7

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=120))
    def test_property_scaling_preserves_mapping(self, count):
        index = DiskIndex(4, bucket_bytes=512)
        fps = make_fps(count)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        assert dict(scaled.iter_entries()) == dict(index.iter_entries())


class TestScalingStorePreservation:
    """Regression: scaling a file-backed index must stay file-backed —
    the successor is built in a sibling temp file and atomically renamed
    over the original, never silently migrated to memory."""

    def test_file_backed_scaling_stays_on_disk(self, tmp_path):
        path = tmp_path / "idx.bin"
        index = DiskIndex(4, bucket_bytes=512, store=FileBlockStore(path, 16 * 512))
        fps = make_fps(150)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        assert isinstance(scaled.store, FileBlockStore)
        assert scaled.store.path == path
        assert not path.with_name("idx.bin.scale").exists()
        assert len(scaled) == 150
        for i, fp in enumerate(fps):
            assert scaled.lookup(fp) == i

    def test_file_backed_scaling_survives_reopen(self, tmp_path):
        path = tmp_path / "idx.bin"
        index = DiskIndex(4, bucket_bytes=512, store=FileBlockStore(path, 16 * 512))
        fps = make_fps(100)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        scaled.store.flush()
        scaled.store.close()
        # The on-disk file now has the doubled geometry.
        assert path.stat().st_size == 32 * 512
        reopened = DiskIndex(
            5, bucket_bytes=512, store=FileBlockStore(path, 32 * 512)
        )
        assert dict(reopened.iter_entries()) == {fp: i for i, fp in enumerate(fps)}

    def test_stale_scale_temp_is_discarded(self, tmp_path):
        # A leftover temp from an interrupted scaling must not poison the
        # next attempt (a non-empty store would mis-load bucket counts).
        path = tmp_path / "idx.bin"
        path.with_name("idx.bin.scale").write_bytes(b"\xff" * 32 * 512)
        index = DiskIndex(4, bucket_bytes=512, store=FileBlockStore(path, 16 * 512))
        for i, fp in enumerate(make_fps(50)):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        assert len(scaled) == 50
        assert not path.with_name("idx.bin.scale").exists()

    def test_sparse_store_scaling_stays_sparse(self):
        index = DiskIndex(
            4, bucket_bytes=512, store=SparseMemoryBlockStore(16 * 512)
        )
        for i, fp in enumerate(make_fps(60)):
            index.insert(fp, i)
        scaled = index.scale_capacity()
        assert isinstance(scaled.store, SparseMemoryBlockStore)
        assert len(scaled) == 60

    def test_explicit_store_is_honoured(self):
        index = DiskIndex(4, bucket_bytes=512)
        for i, fp in enumerate(make_fps(40)):
            index.insert(fp, i)
        target = MemoryBlockStore(32 * 512)
        scaled = index.scale_capacity(store=target)
        assert scaled.store is target

    def test_checkpoint_called_per_source_bucket(self):
        index = DiskIndex(4, bucket_bytes=512)
        for i, fp in enumerate(make_fps(40)):
            index.insert(fp, i)
        seen = []
        index.scale_capacity(checkpoint=seen.append)
        assert seen == list(range(16))


class TestPerformanceScaling:
    def test_split_partitions_by_prefix(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(300)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        parts = index.split(2)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 300
        for k, part in enumerate(parts):
            assert part.n_bits == 4
            assert part.prefix_bits == 2
            assert part.prefix_value == k
            for fp, _ in part.iter_entries():
                assert bit_prefix(fp, 2) == k

    def test_split_parts_still_resolve_lookups(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(200)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        parts = index.split(2)
        for i, fp in enumerate(fps):
            part = parts[bit_prefix(fp, 2)]
            assert part.lookup(fp) == i

    def test_part_rejects_foreign_fingerprints(self):
        index = DiskIndex(6, bucket_bytes=512)
        parts = index.split(2)
        foreign = next(fp for fp in make_fps(100) if bit_prefix(fp, 2) != 0)
        assert not parts[0].owns(foreign)
        with pytest.raises(ValueError):
            parts[0].insert(foreign, 0)
        with pytest.raises(ValueError):
            parts[0].lookup(foreign)

    def test_invalid_split_width(self):
        index = DiskIndex(4, bucket_bytes=512)
        with pytest.raises(ValueError):
            index.split(0)
        with pytest.raises(ValueError):
            index.split(4)

    def test_owns_without_prefix(self):
        index = DiskIndex(4, bucket_bytes=512)
        assert all(index.owns(fp) for fp in make_fps(10))

    def test_part_capacity_scaling_keeps_prefix(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(100)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        part = index.split(1)[1]
        scaled = part.scale_capacity()
        assert scaled.prefix_bits == 1
        assert scaled.prefix_value == 1
        assert scaled.n_bits == part.n_bits + 1
        assert dict(scaled.iter_entries()) == dict(part.iter_entries())
