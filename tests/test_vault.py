"""Tests for the persistent on-disk vault and its CLI."""

import pytest

from repro.cli import main as cli_main
from repro.system import DebarVault, VaultError
from repro.workloads import FileTreeGenerator, mutate_tree


def make_source(tmp_path, seed=1, n_files=6):
    src = tmp_path / "src"
    FileTreeGenerator(seed=seed).generate(
        src, n_files=n_files, n_dirs=2, min_size=8 * 1024, max_size=48 * 1024
    )
    return src


class TestVaultLifecycle:
    def test_backup_and_restore(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            run = vault.backup("docs", [src])
            assert run.run_id == 1
            assert run.logical_bytes > 0
            vault.restore(run.run_id, tmp_path / "out", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "out" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_job_chain_filters_second_run(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            run1 = vault.backup("docs", [src])
            mutate_tree(src, seed=3, new_files=1, delete_files=0)
            run2 = vault.backup("docs", [src])
            assert run2.transferred_bytes < run1.transferred_bytes
            assert run2.transferred_bytes < run2.logical_bytes

    def test_persistence_across_reopen(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            run = vault.backup("docs", [src])
            stats1 = vault.stats()
        # Fresh process: reopen and restore from cold state.
        with DebarVault(tmp_path / "vault") as vault2:
            assert len(vault2.runs()) == 1
            assert vault2.stats()["index_entries"] == stats1["index_entries"]
            vault2.restore(run.run_id, tmp_path / "out2", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "out2" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_dedup_across_reopen(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            vault.backup("docs", [src])
            physical1 = vault.stats()["physical_bytes"]
        with DebarVault(tmp_path / "vault") as vault2:
            # Unmodified re-backup: the reopened index + job chain dedups it.
            run2 = vault2.backup("docs", [src])
            assert run2.transferred_bytes == 0
            assert vault2.stats()["physical_bytes"] == physical1

    def test_verify(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            vault.backup("docs", [src])
            report = vault.verify()
            assert report["runs"] == 1
            assert report["fingerprints"] > 0

    def test_recover_index(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            run = vault.backup("docs", [src])
            entries_before = vault.stats()["index_entries"]
        # Destroy the index file; reopen; rebuild from containers.
        (tmp_path / "vault" / "index.bin").unlink()
        with DebarVault(tmp_path / "vault") as vault2:
            assert vault2.stats()["index_entries"] == 0
            recovered = vault2.recover_index()
            assert recovered == entries_before
            assert vault2.verify()["fingerprints"] > 0
            vault2.restore(run.run_id, tmp_path / "out3", strip_prefix=tmp_path)

    def test_restore_unknown_run(self, tmp_path):
        with DebarVault(tmp_path / "vault") as vault:
            with pytest.raises(VaultError):
                vault.restore(42, tmp_path / "nowhere")

    def test_backup_requires_job_name(self, tmp_path):
        with DebarVault(tmp_path / "vault") as vault:
            with pytest.raises(VaultError):
                vault.backup("", [tmp_path])

    def test_stats_shape(self, tmp_path):
        src = make_source(tmp_path)
        with DebarVault(tmp_path / "vault") as vault:
            vault.backup("docs", [src])
            s = vault.stats()
        assert s["runs"] == 1
        assert s["compression_ratio"] >= 1.0
        assert s["containers"] >= 1
        assert 0 < s["index_utilization"] < 1


class TestCli:
    def test_backup_list_restore_verify_stats(self, tmp_path, capsys):
        src = make_source(tmp_path)
        vault = str(tmp_path / "vault")
        assert cli_main(["backup", "--vault", vault, "--job", "docs", str(src)]) == 0
        assert cli_main(["list", "--vault", vault]) == 0
        out = capsys.readouterr().out
        assert "docs" in out
        assert (
            cli_main(
                ["restore", "--vault", vault, "--run", "1",
                 "--dest", str(tmp_path / "cli-out"), "--strip-prefix", str(tmp_path)]
            )
            == 0
        )
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            restored = tmp_path / "cli-out" / p.relative_to(tmp_path)
            assert restored.read_bytes() == p.read_bytes()
        assert cli_main(["verify", "--vault", vault]) == 0
        assert cli_main(["stats", "--vault", vault]) == 0

    def test_cli_recover_index(self, tmp_path):
        src = make_source(tmp_path)
        vault = str(tmp_path / "vault")
        cli_main(["backup", "--vault", vault, "--job", "docs", str(src)])
        (tmp_path / "vault" / "index.bin").unlink()
        assert cli_main(["recover-index", "--vault", vault]) == 0
        assert cli_main(["verify", "--vault", vault]) == 0

    def test_cli_error_path(self, tmp_path, capsys):
        vault = str(tmp_path / "vault")
        rc = cli_main(["restore", "--vault", vault, "--run", "9", "--dest", str(tmp_path)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
