"""Fuzz/property tests on the repro.net wire framing and message codecs.

Style follows ``tests/test_fuzz_serialization.py``: hypothesis drives
round trips and adversarial byte streams; every malformed input must
raise a :class:`~repro.net.framing.FrameError` subclass, never an
unhandled struct/index error, and never be silently accepted.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fingerprint import FINGERPRINT_SIZE
from repro.net import messages as m
from repro.net.framing import (
    FRAME_HEADER_SIZE,
    MAX_PAYLOAD,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    BadFrame,
    Frame,
    FrameError,
    TruncatedFrame,
    decode_frame,
    decode_header,
    read_frame,
)

fp_strategy = st.binary(min_size=FINGERPRINT_SIZE, max_size=FINGERPRINT_SIZE)
msg_type_strategy = st.sampled_from(sorted(m.MSG_NAMES))
rid_strategy = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _reader(blob: bytes):
    """A recv-like callable over a byte string (may return short reads)."""
    view = memoryview(blob)
    state = {"pos": 0}

    def recv(n: int) -> bytes:
        start = state["pos"]
        block = bytes(view[start : start + n])
        state["pos"] = start + len(block)
        return block

    return recv


class TestFrameRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(msg_type_strategy, rid_strategy, st.binary(max_size=4096))
    def test_encode_decode_roundtrip(self, msg_type, rid, payload):
        frame = Frame(msg_type, rid, payload)
        blob = frame.encode()
        assert len(blob) == FRAME_HEADER_SIZE + len(payload) == frame.wire_size
        assert decode_frame(blob) == frame

    @settings(max_examples=60, deadline=None)
    @given(msg_type_strategy, rid_strategy, st.binary(max_size=2048))
    def test_read_frame_from_stream(self, msg_type, rid, payload):
        frame = Frame(msg_type, rid, payload)
        assert read_frame(_reader(frame.encode())) == frame

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(msg_type_strategy, rid_strategy,
                              st.binary(max_size=512)),
                    min_size=1, max_size=6))
    def test_read_frame_sequence(self, frames):
        stream = b"".join(Frame(*f).encode() for f in frames)
        recv = _reader(stream)
        for msg_type, rid, payload in frames:
            assert read_frame(recv) == Frame(msg_type, rid, payload)


class TestMalformedFrames:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=4, max_size=4).filter(lambda b: b != PROTOCOL_MAGIC),
           rid_strategy, st.binary(max_size=64))
    def test_bad_magic_rejected(self, magic, rid, payload):
        blob = struct.pack(">4sBBQI", magic, PROTOCOL_VERSION, m.PING,
                           rid, len(payload)) + payload
        with pytest.raises(BadFrame):
            decode_header(blob[:FRAME_HEADER_SIZE])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=255)
             .filter(lambda v: v != PROTOCOL_VERSION))
    def test_bad_version_rejected(self, version):
        blob = struct.pack(">4sBBQI", PROTOCOL_MAGIC, version, m.PING, 1, 0)
        with pytest.raises(BadFrame):
            decode_header(blob)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=MAX_PAYLOAD + 1, max_value=(1 << 32) - 1))
    def test_oversized_length_rejected(self, length):
        # The length field alone must trip the guard -- a reader must
        # never try to allocate/await an absurd payload.
        blob = struct.pack(">4sBBQI", PROTOCOL_MAGIC, PROTOCOL_VERSION,
                           m.PING, 1, length)
        with pytest.raises(BadFrame):
            decode_header(blob)

    def test_oversized_payload_refused_at_encode(self):
        frame = Frame(m.PING, 1, b"\0" * (MAX_PAYLOAD + 1))
        with pytest.raises(BadFrame):
            frame.encode()

    @settings(max_examples=60, deadline=None)
    @given(msg_type_strategy, rid_strategy, st.binary(min_size=1, max_size=512),
           st.data())
    def test_truncated_frame_detected(self, msg_type, rid, payload, data):
        blob = Frame(msg_type, rid, payload).encode()
        cut = data.draw(st.integers(min_value=1, max_value=len(blob) - 1))
        with pytest.raises(TruncatedFrame):
            read_frame(_reader(blob[:cut]))

    @settings(max_examples=60, deadline=None)
    @given(msg_type_strategy, rid_strategy, st.binary(max_size=256),
           st.binary(min_size=1, max_size=64))
    def test_trailing_garbage_rejected(self, msg_type, rid, payload, extra):
        blob = Frame(msg_type, rid, payload).encode()
        with pytest.raises(BadFrame):
            decode_frame(blob + extra)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=0, max_size=FRAME_HEADER_SIZE + 64))
    def test_random_bytes_never_crash(self, blob):
        # Arbitrary garbage either parses (it happened to be a valid
        # frame) or raises a protocol error -- nothing else.
        try:
            read_frame(_reader(blob))
        except FrameError:
            pass


class TestMessageCodecs:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(fp_strategy, max_size=50))
    def test_fps_roundtrip(self, fps):
        blob = m.encode_fps(fps)
        decoded, offset = m.decode_fps(blob)
        assert decoded == fps and offset == len(blob)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(fp_strategy,
                              st.integers(min_value=0, max_value=(1 << 32) - 1)),
                    max_size=40))
    def test_sized_fps_roundtrip(self, entries):
        blob = m.encode_sized_fps(entries)
        decoded, offset = m.decode_sized_fps(blob)
        assert decoded == entries and offset == len(blob)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(fp_strategy, st.binary(max_size=300)), max_size=12))
    def test_chunk_batch_roundtrip(self, chunks):
        blob = m.encode_chunk_batch(chunks)
        decoded, offset = m.decode_chunk_batch(blob)
        assert decoded == chunks and offset == len(blob)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.booleans(), max_size=70))
    def test_bitmap_roundtrip(self, bits):
        decoded, offset = m.decode_bitmap(m.encode_bitmap(bits))
        assert decoded == bits and offset == 4 + (len(bits) + 7) // 8

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(fp_strategy,
                              st.integers(min_value=0, max_value=(1 << 40) - 1)),
                    max_size=30))
    def test_cid_records_roundtrip(self, records):
        blob = m.encode_cid_records(records)
        decoded, offset = m.decode_cid_records(blob, 0)
        assert decoded == records and offset == len(blob)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=63),
           st.dictionaries(st.integers(min_value=0, max_value=63),
                           st.lists(fp_strategy, max_size=12), max_size=4))
    def test_exchange_roundtrip(self, sender, parts):
        blob = m.encode_exchange(sender, parts)
        got_sender, got_parts, offset = m.decode_exchange(blob, 0)
        assert got_sender == sender and offset == len(blob)
        assert got_parts == parts

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=200))
    def test_codecs_reject_garbage_without_crashing(self, blob):
        for decoder in (
            m.decode_fps,
            m.decode_sized_fps,
            m.decode_chunk_batch,
            lambda b: m.decode_cid_records(b, 0),
            lambda b: m.decode_exchange(b, 0),
            lambda b: m.decode_json(b),
            lambda b: m.decode_file_entries(b),
        ):
            try:
                decoder(blob)
            except m.MessageError:
                pass
