"""Tests for the chunk repository: placement, IDs, recovery, defrag."""

import pytest

from repro.storage import ChunkRepository, ContainerWriter, StorageNode
from tests.conftest import make_fps


def sealed(cid, start=0, n=3):
    writer = ContainerWriter(capacity=4096)
    for fp in make_fps(n, start=start):
        writer.add(fp, data=b"d" * 32)
    return writer.seal(cid)


class TestStorageNode:
    def test_append_fetch(self):
        node = StorageNode(0)
        c = sealed(5)
        node.append(c)
        assert node.fetch(5) is c
        assert 5 in node
        assert len(node) == 1

    def test_duplicate_append_rejected(self):
        node = StorageNode(0)
        node.append(sealed(1))
        with pytest.raises(ValueError):
            node.append(sealed(1, start=10))

    def test_fetch_missing(self):
        with pytest.raises(KeyError):
            StorageNode(0).fetch(9)

    def test_remove(self):
        node = StorageNode(0)
        node.append(sealed(2))
        node.remove(2)
        assert 2 not in node
        with pytest.raises(KeyError):
            node.remove(2)


class TestRepository:
    def test_allocate_sequential_40bit_ids(self):
        repo = ChunkRepository()
        assert [repo.allocate_id() for _ in range(4)] == [0, 1, 2, 3]

    def test_round_robin_placement(self):
        repo = ChunkRepository(n_nodes=3)
        nodes = [repo.store(sealed(repo.allocate_id(), start=i * 10)) for i in range(6)]
        assert nodes == [0, 1, 2, 0, 1, 2]

    def test_affinity_placement(self):
        repo = ChunkRepository(n_nodes=4)
        for i in range(3):
            assert repo.store(sealed(repo.allocate_id(), start=i * 10), affinity=2) == 2
        assert len(repo.nodes[2]) == 3

    def test_locate_and_fetch(self):
        repo = ChunkRepository(n_nodes=2)
        cid = repo.allocate_id()
        c = sealed(cid)
        repo.store(c, affinity=1)
        assert repo.locate(cid) == 1
        assert repo.fetch(cid) is c
        with pytest.raises(KeyError):
            repo.locate(999)

    def test_duplicate_store_rejected(self):
        repo = ChunkRepository()
        c = sealed(0)
        repo.store(c)
        with pytest.raises(ValueError):
            repo.store(c)

    def test_stored_chunk_bytes(self):
        repo = ChunkRepository()
        repo.store(sealed(repo.allocate_id(), n=3))
        repo.store(sealed(repo.allocate_id(), start=10, n=2))
        assert repo.stored_chunk_bytes == 5 * 32

    def test_iter_index_entries_supports_recovery(self):
        # Scanning the repository must yield exactly the index mapping
        # (the Section 4.1 corrupted-index recovery path).
        from repro.core.disk_index import DiskIndex

        repo = ChunkRepository(n_nodes=2)
        expected = {}
        for i in range(4):
            cid = repo.allocate_id()
            c = sealed(cid, start=i * 10)
            repo.store(c)
            for fp in c.fingerprints:
                expected[fp] = cid
        rebuilt = DiskIndex.rebuild_from_entries(repo.iter_index_entries(), 6, bucket_bytes=512)
        assert dict(rebuilt.iter_entries()) == expected

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            ChunkRepository(0)


class TestDefragmentation:
    def _spread_repo(self):
        repo = ChunkRepository(n_nodes=4)
        cids = []
        for i in range(8):
            cid = repo.allocate_id()
            repo.store(sealed(cid, start=i * 10))  # round robin over 4 nodes
            cids.append(cid)
        return repo, cids

    def test_fragmentation_metric(self):
        repo, cids = self._spread_repo()
        # 8 containers over 4 nodes round-robin: majority node holds 2/8.
        assert repo.fragmentation(cids) == pytest.approx(0.75)
        assert repo.fragmentation([]) == 0.0

    def test_defragment_aggregates(self):
        repo, cids = self._spread_repo()
        moves = repo.defragment(cids, target_node=1)
        assert moves == 6  # 2 were already on node 1
        assert repo.fragmentation(cids) == 0.0
        for cid in cids:
            assert repo.locate(cid) == 1
            repo.fetch(cid)  # still fetchable after the move

    def test_defragment_invalid_target(self):
        repo, cids = self._spread_repo()
        with pytest.raises(ValueError):
            repo.defragment(cids, target_node=9)
