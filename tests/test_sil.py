"""Tests for sequential index lookup (SIL, Section 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disk_index import DiskIndex
from repro.core.index_cache import CacheFullError
from repro.core.sil import SequentialIndexLookup
from repro.simdisk import Meter, SimClock, paper_cpu, paper_index_disk
from repro.util import bit_prefix
from tests.conftest import make_fps


def _populated_index(n_entries=100, n_bits=6):
    index = DiskIndex(n_bits, bucket_bytes=512)
    fps = make_fps(n_entries)
    for i, fp in enumerate(fps):
        index.insert(fp, i)
    return index, fps


class TestClassification:
    def test_all_new_on_empty_index(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(50)
        result = SequentialIndexLookup(index).run(fps)
        assert result.new_fingerprints == 50
        assert result.duplicate_fingerprints == 0
        assert set(fp for fp, _ in result.new_cache.items()) == set(fps)

    def test_all_duplicates_when_present(self):
        index, fps = _populated_index(80)
        result = SequentialIndexLookup(index).run(fps)
        assert result.duplicate_fingerprints == 80
        assert result.new_fingerprints == 0
        assert result.duplicates == {fp: i for i, fp in enumerate(fps)}

    def test_mixed_classified_exactly(self):
        index, present = _populated_index(60)
        absent = make_fps(40, start=500)
        result = SequentialIndexLookup(index).run(present[:30] + absent)
        assert set(result.duplicates) == set(present[:30])
        assert set(fp for fp, _ in result.new_cache.items()) == set(absent)

    def test_batch_internal_duplicates_collapse(self):
        index = DiskIndex(6, bucket_bytes=512)
        fps = make_fps(20)
        result = SequentialIndexLookup(index).run(fps + fps + fps)
        assert result.fingerprints_processed == 60
        assert result.fingerprints_distinct == 20
        assert result.new_fingerprints == 20

    def test_new_cache_nodes_are_undetermined(self):
        index = DiskIndex(6, bucket_bytes=512)
        result = SequentialIndexLookup(index).run(make_fps(10))
        assert all(cid is None for _, cid in result.new_cache.items())

    def test_finds_overflowed_entries(self):
        index = DiskIndex(4, bucket_bytes=512)
        cap = index.bucket_capacity
        target = []
        offset = 0
        while len(target) < cap + 3:
            target.extend(
                fp for fp in make_fps(200, start=offset) if index.bucket_number(fp) == 7
            )
            offset += 200
        target = target[: cap + 3]
        for i, fp in enumerate(target):
            index.insert(fp, i)
        result = SequentialIndexLookup(index).run(target)
        assert result.duplicate_fingerprints == cap + 3

    def test_wrong_part_rejected(self):
        index = DiskIndex(6, bucket_bytes=512)
        parts = index.split(2)
        foreign = next(fp for fp in make_fps(50) if bit_prefix(fp, 2) != 0)
        with pytest.raises(ValueError):
            SequentialIndexLookup(parts[0]).run([foreign])

    def test_works_on_index_part(self):
        index, fps = _populated_index(120)
        parts = index.split(2)
        part_fps = [fp for fp in fps if bit_prefix(fp, 2) == 1]
        result = SequentialIndexLookup(parts[1]).run(part_fps)
        assert result.duplicate_fingerprints == len(part_fps)

    def test_cache_capacity_enforced(self):
        index = DiskIndex(6, bucket_bytes=512)
        sil = SequentialIndexLookup(index, cache_capacity=10)
        with pytest.raises(CacheFullError):
            sil.run(make_fps(11))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=60))
    def test_property_duplicate_iff_in_index(self, n_present, n_absent):
        index = DiskIndex(6, bucket_bytes=512)
        present = make_fps(n_present)
        absent = make_fps(n_absent, start=10_000)
        for i, fp in enumerate(present):
            index.insert(fp, i)
        result = SequentialIndexLookup(index).run(present + absent)
        assert set(result.duplicates) == set(present)
        assert set(fp for fp, _ in result.new_cache.items()) == set(absent)


class TestCostAccounting:
    def test_charges_full_sequential_scan(self):
        index, fps = _populated_index(50)
        clock = SimClock()
        meter = Meter(clock)
        disk = paper_index_disk()
        result = SequentialIndexLookup(index).run(fps, meter=meter, disk=disk, cpu=paper_cpu())
        assert result.index_bytes_read == index.size_bytes
        assert meter.by_category["sil.scan"] == pytest.approx(
            disk.seq_read_time(index.size_bytes)
        )
        assert meter.by_category["sil.cpu"] > 0
        assert clock.now == meter.total()

    def test_scan_time_independent_of_batch_size(self):
        # The SIL law: t = s / r regardless of how many fingerprints ride.
        disk = paper_index_disk()
        times = []
        for n in (10, 100):
            index = DiskIndex(6, bucket_bytes=512)
            meter = Meter(SimClock())
            SequentialIndexLookup(index).run(make_fps(n), meter=meter, disk=disk)
            times.append(meter.by_category["sil.scan"])
        assert times[0] == times[1]

    def test_no_meter_no_charges(self):
        index, fps = _populated_index(20)
        result = SequentialIndexLookup(index).run(fps)
        assert result.duplicate_fingerprints == 20  # logic independent of metering

    def test_buckets_probed_bounded(self):
        index, fps = _populated_index(100)
        result = SequentialIndexLookup(index).run(fps)
        assert 0 < result.buckets_probed <= index.n_buckets + 2
