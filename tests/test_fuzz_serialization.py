"""Fuzz/property tests on the binary serialization layers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.disk_index import pack_bucket, unpack_bucket
from repro.core.fingerprint import FINGERPRINT_SIZE
from repro.storage.container import Container, ContainerWriter

fp_strategy = st.binary(min_size=FINGERPRINT_SIZE, max_size=FINGERPRINT_SIZE)
cid_strategy = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestBucketFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(fp_strategy, cid_strategy), max_size=20))
    def test_roundtrip_any_entries(self, entries):
        blob = pack_bucket(entries, 512)
        assert len(blob) == 512
        assert unpack_bucket(blob) == entries

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(fp_strategy, cid_strategy), max_size=320),
        st.sampled_from([512, 4096, 8192]),
    )
    def test_roundtrip_various_slot_sizes(self, entries, slot):
        capacity = (slot - 4) // 25
        entries = entries[:capacity]
        assert unpack_bucket(pack_bucket(entries, slot)) == entries


class TestContainerFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(fp_strategy, st.binary(min_size=0, max_size=300)),
            min_size=1,
            max_size=12,
            unique_by=lambda t: t[0],
        )
    )
    def test_serialize_roundtrip_any_chunks(self, chunks):
        writer = ContainerWriter(capacity=8192)
        accepted = []
        for fp, data in chunks:
            if writer.add(fp, data=data):
                accepted.append((fp, data))
        container = writer.seal(7)
        restored = Container.deserialize(7, container.serialize(), capacity=8192)
        assert restored.records == container.records
        for fp, data in accepted:
            assert restored.get(fp) == data

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_writer_never_overflows_capacity(self, data):
        capacity = data.draw(st.sampled_from([256, 1024, 4096]))
        writer = ContainerWriter(capacity=capacity)
        for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
            fp = data.draw(fp_strategy)
            size = data.draw(st.integers(min_value=0, max_value=capacity))
            writer.add(fp, data=b"q" * size)
            assert writer.used_bytes <= capacity
        # Whatever was accepted must serialize within the fixed size.
        container = writer.seal(0)
        assert len(container.serialize()) == capacity


class TestTruncatedInputs:
    def test_empty_container_image(self):
        container = ContainerWriter(capacity=4096).seal(1)
        blob = container.serialize()
        restored = Container.deserialize(1, blob, capacity=4096)
        assert restored.records == []
        assert restored.data_bytes == 0

    def test_bucket_with_max_count(self):
        entries = [(bytes([i]) * FINGERPRINT_SIZE, i) for i in range(20)]
        assert len(unpack_bucket(pack_bucket(entries, 512))) == 20
