"""Tests for the example-workload file-tree generator."""

import pytest

from repro.workloads import FileTreeGenerator, mutate_tree


class TestGenerate:
    def test_creates_requested_files(self, tmp_path):
        files = FileTreeGenerator(seed=1).generate(
            tmp_path, n_files=8, n_dirs=3, min_size=1024, max_size=4096
        )
        assert len(files) == 8
        for f in files:
            assert f.exists()
            assert 1024 <= f.stat().st_size <= 4096

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        FileTreeGenerator(seed=5).generate(a, n_files=3, min_size=512, max_size=1024)
        FileTreeGenerator(seed=5).generate(b, n_files=3, min_size=512, max_size=1024)
        for fa, fb in zip(sorted(a.rglob("*.bin")), sorted(b.rglob("*.bin"))):
            assert fa.read_bytes() == fb.read_bytes()

    def test_invalid_args(self, tmp_path):
        with pytest.raises(ValueError):
            FileTreeGenerator().generate(tmp_path, n_files=0)


class TestMutate:
    def test_edits_create_and_delete(self, tmp_path):
        FileTreeGenerator(seed=2).generate(tmp_path, n_files=6, min_size=4096, max_size=8192)
        before = {p: p.read_bytes() for p in tmp_path.rglob("*") if p.is_file()}
        stats = mutate_tree(tmp_path, seed=3, new_files=2, delete_files=1)
        after = {p: p.read_bytes() for p in tmp_path.rglob("*") if p.is_file()}
        assert stats["created"] == 2
        assert stats["deleted"] == 1
        assert stats["edited"] >= 1
        changed = sum(1 for p, data in before.items() if after.get(p) != data)
        assert changed >= stats["edited"]
        assert len(after) == len(before) + 2 - 1

    def test_mutate_empty_tree_rejected(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        with pytest.raises(ValueError):
            mutate_tree(tmp_path)

    def test_most_bytes_survive_edits(self, tmp_path):
        # Edits are local: the bulk of the tree's content is unchanged,
        # which is what gives CDC its savings in the examples.
        FileTreeGenerator(seed=7).generate(tmp_path, n_files=10, min_size=8192, max_size=16384)
        before = b"".join(p.read_bytes() for p in sorted(tmp_path.rglob("*")) if p.is_file())
        mutate_tree(tmp_path, seed=8, edit_fraction=0.3, new_files=0, delete_files=0)
        after = b"".join(p.read_bytes() for p in sorted(tmp_path.rglob("*")) if p.is_file())
        assert abs(len(after) - len(before)) < 0.2 * len(before)
