"""Shared fixtures and helpers for the DEBAR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig


def make_fps(count: int, subspace: int = 0, start: int = 0):
    """Deterministic distinct fingerprints (counter -> SHA-1, Section 6.2)."""
    gen = SyntheticFingerprints(subspace)
    return gen.range(start, count)


@pytest.fixture
def fps100():
    return make_fps(100)


@pytest.fixture
def small_config():
    """A scaled-down backup-server configuration for fast tests."""
    return BackupServerConfig(
        index_n_bits=8,
        index_bucket_bytes=512,
        container_bytes=64 * 1024,
        filter_capacity=4096,
        cache_capacity=1 << 20,
        lpc_containers=8,
        siu_every=1,
        materialize=False,
    )
