"""Shared fixtures and helpers for the DEBAR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig


def make_fps(count: int, subspace: int = 0, start: int = 0):
    """Deterministic distinct fingerprints (counter -> SHA-1, Section 6.2)."""
    gen = SyntheticFingerprints(subspace)
    return gen.range(start, count)


@pytest.fixture
def fps100():
    return make_fps(100)


@pytest.fixture
def small_config():
    """A scaled-down backup-server configuration for fast tests."""
    return BackupServerConfig(
        index_n_bits=8,
        index_bucket_bytes=512,
        container_bytes=64 * 1024,
        filter_capacity=4096,
        cache_capacity=1 << 20,
        lpc_containers=8,
        siu_every=1,
        materialize=False,
    )


@pytest.fixture
def live_telemetry():
    """A live registry + tracer installed as the process globals for one test.

    Components bind instruments at construction time, so build the system
    under test *inside* the test body, after this fixture has run.  The
    previous globals (normally the no-op singletons) are restored afterwards.
    """
    from repro import telemetry

    prev_registry = telemetry.get_registry()
    prev_tracer = telemetry.get_tracer()
    registry = telemetry.set_registry(telemetry.MetricsRegistry())
    tracer = telemetry.set_tracer(telemetry.Tracer())
    yield registry, tracer
    telemetry.set_registry(prev_registry)
    telemetry.set_tracer(prev_tracer)
