"""Loopback integration tests: RemoteBackupClient against a live daemon.

One in-process :class:`~repro.net.server.VaultProtocolServer` hosts a real
vault on an ephemeral loopback port; real frames cross a real socket.
Covers the PR's acceptance path — remote backup -> dedup-2 -> remote
restore -> byte-compare against an in-process backup of the same dataset
-> ``repro audit`` — plus frame-level fault injection (drop, truncate,
duplicate) recovering via retry with no duplicate chunk-log entries, and
the ``net.*`` telemetry the client publishes.
"""

import random
import threading

import pytest

from repro.net.client import (
    NetClient,
    RemoteBackupClient,
    RemoteError,
    RemoteUnavailable,
    RetryPolicy,
)
from repro.net import messages as m
from repro.net.faults import FRAME_FAULTS, inject_frames
from repro.net.server import serve_vault
from repro.system.vault import DebarVault
from repro.telemetry.registry import MetricsRegistry

#: Snappy retries so fault tests don't sleep through real backoff.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05, timeout=2.0)


def write_dataset(root, n_files=5, seed=7):
    rng = random.Random(seed)
    data = root / "data"
    data.mkdir(exist_ok=True)
    for i in range(n_files):
        # Half repeated content so dedup has something to find.
        blob = rng.randbytes(3000)
        (data / f"f{i}.bin").write_bytes(blob + blob + bytes([i]) * 500)
    return data


@pytest.fixture(params=["async", "threaded"])
def daemon(tmp_path, request):
    # Every scenario in this module runs against BOTH serving cores: the
    # async multiplexed event loop (default) and the legacy threaded
    # baseline, so their externally observable behaviour stays identical.
    vault = DebarVault(tmp_path / "vault")
    server = serve_vault(vault, threaded=request.param == "threaded")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield vault, host, port
    finally:
        server.shutdown()
        server.server_close()
        vault.close()


@pytest.fixture()
def client(daemon):
    _, host, port = daemon
    with RemoteBackupClient(host, port, retry=FAST_RETRY) as rc:
        yield rc


def restored_bytes(dest, name):
    return next(p for p in dest.rglob(name)).read_bytes()


class TestRemoteBackupRestore:
    def test_backup_restores_byte_identical(self, daemon, client, tmp_path):
        data = write_dataset(tmp_path)
        run = client.backup("homedirs", [str(data)])
        assert run.files == 5
        assert run.logical_bytes == sum(
            p.stat().st_size for p in data.iterdir()
        )
        dest = tmp_path / "restore"
        paths = client.restore(run.run_id, dest)
        assert len(paths) == 5
        for i in range(5):
            assert restored_bytes(dest, f"f{i}.bin") == (
                data / f"f{i}.bin"
            ).read_bytes()

    def test_remote_matches_in_process_backup(self, daemon, client, tmp_path):
        # The same dataset through the wire and through the in-process
        # vault API must store identical content and restore identically.
        vault, _, _ = daemon
        data = write_dataset(tmp_path)
        remote_run = client.backup("wire", [str(data)])
        local_vault = DebarVault(tmp_path / "local-vault")
        local_run = local_vault.backup("wire", [str(data)])
        assert remote_run.logical_bytes == local_run.logical_bytes
        assert remote_run.transferred_bytes == local_run.transferred_bytes

        remote_dest, local_dest = tmp_path / "r", tmp_path / "l"
        client.restore(remote_run.run_id, remote_dest)
        local_vault.restore(local_run.run_id, local_dest)
        for i in range(5):
            name = f"f{i}.bin"
            assert restored_bytes(remote_dest, name) == restored_bytes(
                local_dest, name
            )
        local_vault.close()

    def test_second_run_transfers_nothing(self, client, tmp_path):
        data = write_dataset(tmp_path)
        first = client.backup("j", [str(data)])
        assert first.transferred_bytes > 0
        second = client.backup("j", [str(data)])
        # Job-chain filtering: every chunk of the unchanged dataset is
        # filtered client-side of the wire; none is re-transferred.
        assert second.transferred_bytes == 0

    def test_remote_backup_passes_audit(self, daemon, client, tmp_path):
        vault, _, _ = daemon
        data = write_dataset(tmp_path)
        client.backup("audited", [str(data)])
        report = vault.audit(deep=True)
        assert report.ok, report.findings

    def test_runs_stats_verify_forget_gc(self, daemon, client, tmp_path):
        data = write_dataset(tmp_path)
        run = client.backup("life", [str(data)])
        runs = client.runs()
        assert [r.run_id for r in runs] == [run.run_id]
        assert client.runs(job="other") == []
        stats = client.stats()
        assert stats["runs"] == 1 and stats["physical_bytes"] > 0
        verdict = client.verify(deep=True)
        assert verdict["ok"] is True
        client.forget(run.run_id)
        assert client.runs() == []
        report = client.gc()
        assert report["containers_removed"] >= 1

    def test_remote_deep_verify_reports_corruption_in_band(
        self, daemon, client, tmp_path
    ):
        # Media rot found by a remote deep verify must come back as an
        # in-band finding ({"ok": False, ...} -> exit 3), not as a typed
        # exception lost over the wire (regression: CorruptionError is a
        # MediaError, which _on_verify's VaultError catch used to miss).
        vault, _, _ = daemon
        data = write_dataset(tmp_path, n_files=2)
        client.backup("rot", [str(data)])
        cid = vault.repository.container_ids()[0]
        path = vault.repository.path_for(cid)
        blob = bytearray(path.read_bytes())
        blob[100] ^= 0xFF
        path.write_bytes(bytes(blob))
        # Drop the cached image so the deep verify re-reads the rotted disk.
        vault.repository.invalidate(cid)
        verdict = client.verify(deep=True)
        assert verdict["ok"] is False
        assert verdict["finding"]

    def test_remote_error_for_missing_run(self, client, tmp_path):
        with pytest.raises(RemoteError) as exc:
            client.restore(99, tmp_path / "x")
        assert "99" in str(exc.value)

    def test_unknown_session_is_remote_error(self, client):
        with pytest.raises(RemoteError):
            client.net.call(m.SESSION_COMMIT, m._U32.pack(12345))


class TestFaultRecovery:
    @pytest.mark.parametrize("action", FRAME_FAULTS)
    def test_backup_survives_frame_fault(self, daemon, client, tmp_path, action):
        vault, _, _ = daemon
        data = write_dataset(tmp_path)
        with inject_frames(client.net, action, occurrence=3) as plan:
            run = client.backup(f"job-{action}", [str(data)])
        assert plan.fired
        # Exactly one run recorded despite the retried frame.
        assert [r.run_id for r in client.runs(job=f"job-{action}")] == [run.run_id]
        dest = tmp_path / "out"
        client.restore(run.run_id, dest)
        for i in range(5):
            assert restored_bytes(dest, f"f{i}.bin") == (
                data / f"f{i}.bin"
            ).read_bytes()
        assert vault.audit().ok

    def test_no_duplicate_chunk_log_entries(self, daemon, client, tmp_path):
        # A duplicated CHUNK_APPEND frame must not double-log: the second
        # copy is answered from the idempotency cache.  Every stored
        # chunk appears exactly once across the store.
        vault, _, _ = daemon
        data = write_dataset(tmp_path, n_files=3)
        with inject_frames(client.net, "duplicate", occurrence=4) as plan:
            client.backup("dup-job", [str(data)])
        assert plan.fired
        report = vault.audit(deep=True)
        assert report.ok, report.findings
        seen = set()
        for container in vault.repository.iter_containers():
            for fp in container.fingerprints:
                assert fp not in seen, "chunk stored twice"
                seen.add(fp)

    def test_drop_increments_retry_counter(self, daemon, tmp_path):
        _, host, port = daemon
        registry = MetricsRegistry()
        data = write_dataset(tmp_path, n_files=2)
        with RemoteBackupClient(
            host, port, retry=FAST_RETRY, registry=registry
        ) as rc:
            with inject_frames(rc.net, "drop", occurrence=2):
                rc.backup("retry-job", [str(data)])
        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        assert metrics["net.retries"]["samples"][0]["value"] >= 1
        assert metrics["net.reconnects"]["samples"][0]["value"] >= 1

    def test_retry_budget_exhausts_cleanly(self, tmp_path):
        # Nobody listens on this port: the client must fail with
        # RemoteUnavailable after its budget, not hang or crash.
        probe = NetClient(
            "127.0.0.1",
            1,  # reserved port, nothing listens there
            retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                              max_delay=0.02, timeout=0.2),
        )
        with pytest.raises((RemoteUnavailable, OSError)):
            probe.call(m.PING)


class TestNetTelemetry:
    def test_client_publishes_net_metrics(self, daemon, tmp_path):
        _, host, port = daemon
        registry = MetricsRegistry()
        data = write_dataset(tmp_path, n_files=3)
        with RemoteBackupClient(
            host, port, retry=FAST_RETRY, registry=registry
        ) as rc:
            run = rc.backup("metered", [str(data)])
            rc.restore(run.run_id, tmp_path / "out")
        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        for name in ("net.bytes_sent", "net.bytes_received",
                     "net.requests", "net.rpc_latency"):
            assert name in metrics, sorted(metrics)
        sent = metrics["net.bytes_sent"]["samples"][0]
        assert sent["labels"] == {"role": "client"}
        # The wire carried at least the dataset itself.
        assert sent["value"] > run.logical_bytes
        by_type = {
            tuple(sample["labels"].items()): sample["value"]
            for sample in metrics["net.requests"]["samples"]
        }
        assert any("chunk_append" in str(k) for k in by_type), by_type

    def test_idempotent_replay_is_not_reexecuted(self, daemon, client):
        # Same request id sent twice -> the server must answer the second
        # from its cache: same session id in both responses.
        rid = client.net._next_rid()
        payload = m.encode_json({"job": "replay", "filtering": True})
        frame_payloads = []
        for _ in range(2):
            client.net._ensure_connected()
            from repro.net.framing import Frame

            client.net._send_raw(Frame(m.SESSION_BEGIN, rid, payload).encode())
            frame_payloads.append(client.net._recv_matching(rid).payload)
        assert frame_payloads[0] == frame_payloads[1]
