"""Tests for the TTTD two-threshold two-divisor chunker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking import ContentDefinedChunker, TTTDChunker


def small_tttd(**kwargs):
    defaults = dict(avg_bits=8, min_size=64, max_size=1024)
    defaults.update(kwargs)
    return TTTDChunker(**defaults)


def random_data(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


def low_entropy_data(n, seed=0):
    """Short runs of a small alphabet: anchor-poor but not anchor-free."""
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < n:
        out.extend(bytes([rng.integers(0, 8)]) * rng.integers(16, 64))
    return bytes(out[:n])


class TestParameters:
    def test_defaults(self):
        c = TTTDChunker()
        assert c.expected_size == 8 * 1024
        assert c.backup_bits == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            TTTDChunker(avg_bits=1)
        with pytest.raises(ValueError):
            small_tttd(backup_bits=8)  # not easier than main
        with pytest.raises(ValueError):
            small_tttd(backup_bits=0)
        with pytest.raises(ValueError):
            small_tttd(min_size=16)


class TestCutPoints:
    def test_empty(self):
        assert small_tttd().cut_points(b"") == []

    def test_covers_input(self):
        data = random_data(20_000, seed=1)
        cuts = small_tttd().cut_points(data)
        assert cuts[-1] == len(data)
        assert cuts == sorted(set(cuts))

    def test_bounds_respected(self):
        c = small_tttd()
        data = random_data(50_000, seed=2)
        sizes = np.diff([0] + c.cut_points(data))
        assert all(c.min_size <= s <= c.max_size for s in sizes[:-1])

    def test_deterministic(self):
        data = random_data(10_000, seed=3)
        assert small_tttd().cut_points(data) == small_tttd().cut_points(data)

    def test_reconstruction(self):
        data = random_data(15_000, seed=4)
        chunks = list(small_tttd().chunks(data))
        assert b"".join(ch.data for ch in chunks) == data

    def test_agrees_with_cdc_on_anchor_rich_data(self):
        # Where main anchors are plentiful, TTTD and plain CDC cut alike.
        data = random_data(40_000, seed=5)
        cdc = ContentDefinedChunker(avg_bits=8, min_size=64, max_size=1024)
        tttd = small_tttd()
        a, b = cdc.cut_points(data), tttd.cut_points(data)
        shared = set(a) & set(b)
        assert len(shared) > 0.9 * len(a)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_property_valid_partition(self, n):
        data = random_data(n, seed=n % 17)
        c = small_tttd()
        cuts = c.cut_points(data)
        start = 0
        for cut in cuts:
            assert cut - start <= c.max_size
            start = cut
        assert (not data and not cuts) or cuts[-1] == len(data)


class TestBackupDivisor:
    def test_fewer_forced_cuts_than_cdc(self):
        """The whole point: far fewer hard max_size cuts when main anchors
        are scarce.  With a 9-bit main divisor and a 1 KB ceiling, ~15 % of
        CDC chunks hit max_size on random data; TTTD's 8-bit backup divisor
        rescues most of them."""
        data = random_data(400_000, seed=6)
        cdc = ContentDefinedChunker(avg_bits=9, min_size=64, max_size=1024)
        tttd = TTTDChunker(avg_bits=9, backup_bits=7, min_size=64, max_size=1024)

        def forced_fraction(cuts, max_size):
            sizes = np.diff([0] + cuts)
            return float(np.mean(sizes[:-1] == max_size)) if len(sizes) > 1 else 0.0

        cdc_forced = forced_fraction(cdc.cut_points(data), 1024)
        tttd_forced = tttd.forced_cut_fraction(data)
        assert cdc_forced > 0.08  # CDC really does hit the hard bound
        assert tttd_forced < 0.25 * cdc_forced

    def test_edit_resilience_on_low_entropy_data(self):
        data = bytearray(low_entropy_data(80_000, seed=7))
        tttd = small_tttd()
        before = {ch.fingerprint for ch in tttd.chunks(bytes(data))}
        data[40_000:40_001] = b"\xff\xfe"  # 1-byte insert mid-stream
        after = {ch.fingerprint for ch in tttd.chunks(bytes(data))}
        assert len(before & after) > 0.5 * len(before)

    def test_backup_anchor_used_when_main_absent(self):
        # Construct a window with backup anchors but (statistically) few
        # main anchors by shrinking the gap: backup_bits=4 fires every ~16
        # bytes, main 12 bits almost never within 1 KB.
        c = small_tttd(avg_bits=10, backup_bits=4, min_size=64, max_size=1024)
        data = random_data(30_000, seed=8)
        sizes = np.diff([0] + c.cut_points(data))
        # Hard cuts exactly at max_size should be rare: backups catch them.
        assert float(np.mean(sizes[:-1] == 1024)) < 0.05
