"""Tests for content-defined chunking (CDC) and the fixed-size baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking import Chunk, ContentDefinedChunker, FixedSizeChunker, chunk_bytes
from repro.core.fingerprint import fingerprint


def small_chunker():
    """Fast test geometry: 256 B expected, 64 B min, 1 KB max."""
    return ContentDefinedChunker(avg_bits=8, min_size=64, max_size=1024)


def random_data(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


class TestParameters:
    def test_paper_defaults(self):
        c = ContentDefinedChunker()
        assert c.expected_size == 8 * 1024
        assert c.min_size == 2 * 1024
        assert c.max_size == 64 * 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_bits=0)
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_bits=13, min_size=16)  # below window
        with pytest.raises(ValueError):
            ContentDefinedChunker(avg_bits=4, min_size=64, max_size=1024)  # 16 < min


class TestCutPoints:
    def test_empty_input(self):
        assert small_chunker().cut_points(b"") == []
        assert list(small_chunker().chunks(b"")) == []

    def test_covers_input_exactly(self):
        data = random_data(10_000)
        cuts = small_chunker().cut_points(data)
        assert cuts[-1] == len(data)
        assert cuts == sorted(cuts)
        assert len(set(cuts)) == len(cuts)

    def test_size_bounds_respected(self):
        c = small_chunker()
        data = random_data(50_000, seed=3)
        cuts = c.cut_points(data)
        sizes = np.diff([0] + cuts)
        # Every chunk except possibly the last obeys [min, max].
        assert all(c.min_size <= s <= c.max_size for s in sizes[:-1])
        assert sizes[-1] <= c.max_size

    def test_max_size_forced_on_anchor_free_data(self):
        # Constant data has one window value everywhere; unless that value
        # anchors, every cut lands at max_size.
        c = small_chunker()
        data = b"\x7a" * 10_000
        cuts = c.cut_points(data)
        sizes = np.diff([0] + cuts)
        assert all(s == c.max_size for s in sizes[:-1])

    def test_deterministic(self):
        data = random_data(20_000, seed=5)
        assert small_chunker().cut_points(data) == small_chunker().cut_points(data)

    def test_mean_size_near_expected(self):
        c = small_chunker()
        stats = c.chunk_stats(random_data(400_000, seed=11))
        # Expected size 256 B (plus min-size offset); generous band.
        assert 150 < stats["mean"] < 600

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=0, max_size=4096))
    def test_property_vectorised_equals_streaming(self, data):
        c = small_chunker()
        assert c.cut_points(data) == c.cut_points_streaming(data)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=30_000))
    def test_property_vectorised_equals_streaming_random(self, n):
        c = small_chunker()
        data = random_data(n, seed=n)
        assert c.cut_points(data) == c.cut_points_streaming(data)


class TestChunks:
    def test_concatenation_reconstructs_input(self):
        data = random_data(30_000, seed=2)
        chunks = list(small_chunker().chunks(data))
        assert b"".join(ch.data for ch in chunks) == data

    def test_fingerprints_are_sha1_of_payload(self):
        data = random_data(5_000, seed=4)
        for ch in small_chunker().chunks(data):
            assert ch.fingerprint == fingerprint(ch.data)
            assert ch.size == len(ch.data)

    def test_offsets_sequential(self):
        data = random_data(10_000, seed=6)
        offset = 0
        for ch in small_chunker().chunks(data):
            assert ch.offset == offset
            offset += ch.size

    def test_chunk_bytes_convenience(self):
        chunks = chunk_bytes(random_data(5_000, seed=1), avg_bits=8, min_size=64, max_size=1024)
        assert all(isinstance(ch, Chunk) for ch in chunks)


class TestContentDefinedProperty:
    """The reason CDC exists: edits only perturb nearby chunks."""

    def test_prepend_preserves_most_chunks(self):
        c = small_chunker()
        data = random_data(60_000, seed=9)
        original = {ch.fingerprint for ch in c.chunks(data)}
        edited = {ch.fingerprint for ch in c.chunks(b"INSERTED AT FRONT" + data)}
        shared = original & edited
        # The overwhelming majority of chunks must survive the prepend.
        assert len(shared) >= 0.7 * len(original)

    def test_fixed_size_blocking_destroyed_by_prepend(self):
        fixed = FixedSizeChunker(256)
        data = random_data(60_000, seed=9)
        original = {ch.fingerprint for ch in fixed.chunks(data)}
        edited = {ch.fingerprint for ch in fixed.chunks(b"X" + data)}
        # One byte at the front shifts every block: almost nothing survives.
        assert len(original & edited) <= 0.05 * len(original)

    def test_interior_edit_local_damage(self):
        c = small_chunker()
        data = bytearray(random_data(60_000, seed=10))
        original = {ch.fingerprint for ch in c.chunks(bytes(data))}
        data[30_000:30_010] = b"0123456789"
        edited = {ch.fingerprint for ch in c.chunks(bytes(data))}
        assert len(original & edited) >= 0.8 * len(original)


class TestFixedSizeChunker:
    def test_exact_blocks(self):
        chunks = list(FixedSizeChunker(100).chunks(bytes(250)))
        assert [ch.size for ch in chunks] == [100, 100, 50]

    def test_exact_multiple(self):
        chunks = list(FixedSizeChunker(100).chunks(bytes(300)))
        assert [ch.size for ch in chunks] == [100, 100, 100]

    def test_empty(self):
        assert list(FixedSizeChunker(100).chunks(b"")) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_reconstruction(self):
        data = random_data(1234, seed=8)
        assert b"".join(ch.data for ch in FixedSizeChunker(97).chunks(data)) == data
