"""Tests for job scheduling / load balancing and the dedup-2 policy."""

import pytest

from repro.director.jobs import JobObject
from repro.director.scheduler import Dedup2Policy, JobScheduler


class TestJobScheduler:
    def test_round_robin_for_fresh_cluster(self):
        sched = JobScheduler(4)
        jobs = [JobObject(f"j{i}", "c", []) for i in range(4)]
        assert sorted(sched.assign(j) for j in jobs) == [0, 1, 2, 3]

    def test_sticky_assignment(self):
        sched = JobScheduler(4)
        job = JobObject("j", "c", [])
        first = sched.assign(job, expected_bytes=100)
        assert sched.assign(job, expected_bytes=100) == first
        assert sched.server_for(job) == first

    def test_least_loaded_wins(self):
        sched = JobScheduler(2)
        heavy = JobObject("heavy", "c", [])
        sched.assign(heavy, expected_bytes=10_000)
        light = JobObject("light", "c", [])
        assert sched.assign(light, expected_bytes=10) == 1

    def test_loads_and_imbalance(self):
        sched = JobScheduler(2)
        a, b = JobObject("a", "c", []), JobObject("b", "c", [])
        sched.assign(a, expected_bytes=100)
        sched.assign(b, expected_bytes=100)
        assert sched.loads() == [100, 100]
        assert sched.imbalance == pytest.approx(1.0)

    def test_imbalance_of_empty(self):
        assert JobScheduler(3).imbalance == 1.0

    def test_unassigned_lookup_raises(self):
        with pytest.raises(KeyError):
            JobScheduler(2).server_for(JobObject("x", "c", []))

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            JobScheduler(0)


class TestDedup2Policy:
    def test_triggers_on_undetermined_backlog(self):
        policy = Dedup2Policy(undetermined_threshold=100)
        assert not policy.should_run([50, 99], [0, 0])
        assert policy.should_run([50, 100], [0, 0])

    def test_triggers_on_log_size(self):
        policy = Dedup2Policy(undetermined_threshold=10**9, log_bytes_threshold=1 << 20)
        assert not policy.should_run([0], [1 << 19])
        assert policy.should_run([0], [1 << 20])

    def test_any_server_triggers_the_cluster(self):
        policy = Dedup2Policy(undetermined_threshold=10)
        assert policy.should_run([0, 0, 0, 10], [0, 0, 0, 0])
