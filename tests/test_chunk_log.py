"""Tests for the dedup-1 chunk log."""

import pytest

from repro.core.fingerprint import FINGERPRINT_SIZE
from repro.storage import ChunkLog
from tests.conftest import make_fps


class TestChunkLog:
    def test_append_replay_order(self):
        log = ChunkLog()
        fps = make_fps(5)
        for i, fp in enumerate(fps):
            log.append(fp, data=bytes([i]) * 10)
        replayed = list(log.replay())
        assert [r.fingerprint for r in replayed] == fps
        assert [r.data for r in replayed] == [bytes([i]) * 10 for i in range(5)]

    def test_virtual_records(self):
        log = ChunkLog()
        fp = make_fps(1)[0]
        log.append(fp, size=8192)
        record = next(log.replay())
        assert record.data is None
        assert record.size == 8192
        assert record.log_bytes == 8192 + FINGERPRINT_SIZE

    def test_size_bytes_accumulates(self):
        log = ChunkLog()
        log.append(make_fps(1)[0], data=b"x" * 100)
        log.append(make_fps(1, start=5)[0], size=200)
        assert log.size_bytes == (100 + FINGERPRINT_SIZE) + (200 + FINGERPRINT_SIZE)

    def test_clear(self):
        log = ChunkLog()
        log.append(make_fps(1)[0], size=10)
        log.clear()
        assert len(log) == 0
        assert log.size_bytes == 0
        assert not log

    def test_bool_and_len(self):
        log = ChunkLog()
        assert not log
        log.append(make_fps(1)[0], size=1)
        assert log and len(log) == 1

    def test_requires_data_or_size(self):
        with pytest.raises(ValueError):
            ChunkLog().append(make_fps(1)[0])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ChunkLog().append(make_fps(1)[0], size=-1)

    def test_duplicate_fingerprints_allowed(self):
        # The log is an append log: re-admitted chunks (after filter
        # eviction) appear twice and dedup-2 discards the extras.
        log = ChunkLog()
        fp = make_fps(1)[0]
        log.append(fp, size=10)
        log.append(fp, size=10)
        assert len(log) == 2
