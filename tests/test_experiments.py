"""Tests for the experiment drivers behind Figures 6-9 and 13-15."""

import pytest

from repro.analysis.cluster_experiment import (
    measure_psil_psiu,
    run_read_experiment,
    run_write_experiment,
    scaled_cluster,
)
from repro.analysis.hust_experiment import paper_scaled_configs, run_hust_comparison
from repro.util import GB
from repro.workloads import HustConfig


SMALL_SIGMA = 1.0 / 32768  # keeps driver tests fast


class TestHustExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        hust, debar = paper_scaled_configs(scale=0.05)
        cfg = HustConfig(
            mean_daily_chunks=hust.mean_daily_chunks, days=8, seed=5,
            section_chunks=hust.section_chunks,
        )
        return run_hust_comparison(cfg, debar_config=debar)

    def test_daily_records_complete(self, result):
        assert len(result.days) == 8
        for r in result.days:
            assert r.logical_bytes > 0
            assert 0 < r.dedup1_transferred_bytes <= r.logical_bytes
            assert r.dedup1_time > 0
            assert r.ddfs_time > 0

    def test_dedup2_runs_are_flagged_consistently(self, result):
        for r in result.days:
            if r.dedup2_ran:
                assert r.dedup2_time > 0
                assert r.dedup2_log_bytes > 0
            else:
                assert r.dedup2_time == 0
        assert result.days[-1].dedup2_ran  # final-day flush

    def test_both_systems_store_comparable_bytes(self, result):
        last = result.days[-1]
        assert last.debar_physical_cum > 0
        assert last.ddfs_physical_cum == pytest.approx(last.debar_physical_cum, rel=0.1)

    def test_cumulative_ratios_ordered(self, result):
        # overall = dedup-1 x dedup-2 (up to day-0 boundary effects).
        product = result.dedup1_ratio_cum() * result.dedup2_ratio_cum()
        assert result.debar_ratio_cum() == pytest.approx(product, rel=0.15)

    def test_throughputs_positive_and_ordered(self, result):
        assert result.dedup1_throughput_cum() > result.debar_total_throughput_cum()
        assert result.debar_total_throughput_cum() > 0
        assert result.ddfs_throughput_cum() > 0

    def test_no_ddfs_mode(self):
        hust, debar = paper_scaled_configs(scale=0.02)
        cfg = HustConfig(mean_daily_chunks=hust.mean_daily_chunks, days=3, seed=5)
        result = run_hust_comparison(cfg, debar_config=debar, run_ddfs=False)
        assert all(r.ddfs_time == 0 for r in result.days)

    def test_scaled_config_validation(self):
        with pytest.raises(ValueError):
            paper_scaled_configs(scale=0)


class TestClusterExperiment:
    def test_scaled_cluster_geometry(self):
        cluster = scaled_cluster(2, 32 * GB, sigma=SMALL_SIGMA)
        assert cluster.n_servers == 4
        # Part bytes ~ 1 MB at this sigma -> 2^11 x 512 B buckets.
        assert cluster.servers[0].index.size_bytes == pytest.approx(
            32 * GB * SMALL_SIGMA, rel=1.0
        )
        with pytest.raises(ValueError):
            scaled_cluster(2, 32 * GB, sigma=2.0)

    def test_measure_psil_psiu_point(self):
        point = measure_psil_psiu(32 * GB, w_bits=1, sigma=SMALL_SIGMA)
        assert point.total_index_modeled_bytes == 64 * GB
        assert point.psil_kfps > 0
        assert point.psiu_kfps > 0
        assert point.fingerprints > 0

    def test_write_experiment_accounting(self):
        result = run_write_experiment(
            w_bits=1, part_modeled_bytes=32 * GB, versions=2,
            version_chunks=256, sigma=SMALL_SIGMA,
        )
        assert result.n_servers == 2
        assert result.logical_bytes == 2 * 2 * 4 * 256 * 8192  # v x srv x cli x chunks x B
        assert result.dedup1_wall > 0
        assert result.dedup2_wall > 0
        assert result.total_throughput > 0
        assert result.supported_capacity_bytes > 0

    def test_read_experiment_requires_kept_cluster(self):
        result = run_write_experiment(
            w_bits=1, part_modeled_bytes=32 * GB, versions=2,
            version_chunks=256, sigma=SMALL_SIGMA,
        )
        with pytest.raises(ValueError):
            run_read_experiment(result)

    def test_read_experiment_points(self):
        result = run_write_experiment(
            w_bits=1, part_modeled_bytes=32 * GB, versions=2,
            version_chunks=256, sigma=SMALL_SIGMA, keep_cluster=True,
        )
        points = run_read_experiment(result)
        assert len(points) == 2
        for p in points:
            assert p.bytes_read == result.logical_bytes // 2
            assert p.wall > 0
            assert 0 < p.lpc_hit_rate <= 1
