"""``repro serve`` graceful shutdown: SIGINT/SIGTERM drain to exit 0.

Two layers: subprocess tests send real signals to a real daemon and
assert a clean exit ("shutdown complete", code 0); in-process tests pin
the drain semantics — in-flight requests finish, the replication queue
flushes, post-drain requests are refused, and a wedged request loses to
the timeout rather than hanging the shutdown forever.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.net import messages as m
from repro.net.client import NetClient, RetryPolicy
from repro.net.server import serve_vault
from repro.replication.replicator import Replicator
from repro.system.vault import DebarVault

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, timeout=2.0)

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def start_serve_process(tmp_path, *extra_args):
    port_file = tmp_path / "port"
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--vault", str(tmp_path / "vault"),
            "--port-file", str(port_file),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 15.0
    while not port_file.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"serve exited early ({proc.returncode}): {proc.stdout.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("serve never wrote its port file")
        time.sleep(0.05)
    return proc, int(port_file.read_text().strip())


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_signal_shuts_down_cleanly(tmp_path, sig):
    proc, port = start_serve_process(tmp_path)
    try:
        with NetClient("127.0.0.1", port, retry=FAST_RETRY) as net:
            assert net.ping()
        proc.send_signal(sig)
        out, _ = proc.communicate(timeout=15.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
    assert "shutdown complete" in out


def test_sigterm_drains_replication_queue(tmp_path):
    # The daemon replicates to a peer; a SIGTERM right after a backup must
    # flush the queued shipments before the process exits.
    peer_vault = DebarVault(tmp_path / "peer")
    peer = serve_vault(peer_vault, node_name="b")
    peer_thread = threading.Thread(target=peer.serve_forever, daemon=True)
    peer_thread.start()
    try:
        proc, port = start_serve_process(
            tmp_path,
            "--node-name", "a",
            "--replicate-to", f"b=127.0.0.1:{peer.port}",
        )
        try:
            data = tmp_path / "data"
            data.mkdir()
            (data / "x.bin").write_bytes(os.urandom(4000) * 2)
            backup = subprocess.run(
                [
                    sys.executable, "-m", "repro", "backup",
                    "--connect", f"127.0.0.1:{port}",
                    "--job", "j", str(data),
                ],
                capture_output=True, text=True, timeout=30.0,
                env=dict(os.environ, PYTHONPATH=SRC),
            )
            assert backup.returncode == 0, backup.stderr
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=20.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "shutdown complete" in out
        assert "drain timed out" not in out
        # Every container the daemon sealed arrived at the peer.
        with DebarVault(tmp_path / "vault") as vault_a:
            sealed = vault_a.repository.container_ids()
        assert sealed  # the backup really stored something
        assert peer.replica_store.container_ids("a") == sealed
        assert peer.replica_store.has_catalog("a")
    finally:
        peer.shutdown()
        peer.server_close()
        peer_vault.close()


class TestGracefulDrainInProcess:
    @pytest.mark.parametrize("threaded", [False, True], ids=["async", "threaded"])
    def test_drain_under_load_completes_without_timeout(self, tmp_path, threaded):
        # Regression for the drain-flag ordering bug: persistent
        # connections hammering the daemon used to keep admitting new
        # requests while shutdown_gracefully waited for in-flight to hit
        # zero, so every drain under load exited via its timeout.  With
        # the flag raised BEFORE the wait, the hammering clients are
        # refused and the drain completes promptly.
        vault = DebarVault(tmp_path / "vault")
        server = serve_vault(vault, threaded=threaded)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        stop_hammer = threading.Event()
        counts = [0] * 4

        def hammer(slot):
            net = NetClient("127.0.0.1", server.port, retry=FAST_RETRY)
            try:
                while not stop_hammer.is_set():
                    net.call(m.PING, b"x")
                    counts[slot] += 1
            except Exception:
                pass  # refused/dropped once the drain begins
            finally:
                net.close()

        hammers = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(len(counts))
        ]
        for t in hammers:
            t.start()
        # Let the load establish itself before draining.
        deadline = time.monotonic() + 5.0
        while sum(counts) < 20 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sum(counts) >= 20, "hammer clients never got going"
        t0 = time.monotonic()
        try:
            drained = server.shutdown_gracefully(timeout=10.0)
            elapsed = time.monotonic() - t0
            assert drained is True
            assert elapsed < 8.0, f"drain under load took {elapsed:.1f}s"
        finally:
            stop_hammer.set()
            for t in hammers:
                t.join(5.0)
            vault.close()

    def test_drain_finishes_in_flight_then_refuses(self, tmp_path):
        vault = DebarVault(tmp_path / "vault")
        server = serve_vault(vault)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        release = threading.Event()
        entered = threading.Event()
        from repro.net import server as server_mod

        original = server_mod._HANDLERS[m.STATS]

        def slow_stats(srv, payload):
            entered.set()
            release.wait(5.0)
            return original(srv, payload)

        server_mod._HANDLERS[m.STATS] = slow_stats
        try:
            net = NetClient("127.0.0.1", server.port, retry=FAST_RETRY)
            result = {}

            def slow_call():
                result["stats"] = net.call_json(m.STATS)

            caller = threading.Thread(target=slow_call, daemon=True)
            caller.start()
            assert entered.wait(5.0)

            done = {}

            def shut():
                done["drained"] = server.shutdown_gracefully(timeout=10.0)

            shutter = threading.Thread(target=shut, daemon=True)
            shutter.start()
            time.sleep(0.2)
            assert "drained" not in done  # still waiting on the slow request
            release.set()
            shutter.join(10.0)
            caller.join(10.0)
            assert done.get("drained") is True
            assert "runs" in result["stats"]  # the in-flight request finished
            # Post-drain, the daemon refuses further work on the old line.
            from repro.net.framing import ProtocolError

            with pytest.raises((ProtocolError, OSError)):
                net.call(m.PING, b"ping")
            net.close()
        finally:
            server_mod._HANDLERS[m.STATS] = original
            vault.close()

    def test_drain_timeout_forces_close(self, tmp_path):
        vault = DebarVault(tmp_path / "vault")
        server = serve_vault(vault)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        stuck = threading.Event()
        from repro.net import server as server_mod

        original = server_mod._HANDLERS[m.PING]

        def wedge(srv, payload):
            stuck.set()
            time.sleep(3.0)
            return m.PONG, payload

        server_mod._HANDLERS[m.PING] = wedge
        try:
            net = NetClient("127.0.0.1", server.port, retry=FAST_RETRY)

            def doomed_ping():
                try:
                    net.call(m.PING, b"x")
                except Exception:
                    pass  # the forced close is expected to kill this call

            threading.Thread(target=doomed_ping, daemon=True).start()
            assert stuck.wait(5.0)
            t0 = time.monotonic()
            assert server.shutdown_gracefully(timeout=0.5) is False
            assert time.monotonic() - t0 < 5.0
            net.close()
        finally:
            vault.close()

    def test_graceful_close_drains_replicator(self, tmp_path):
        peer_vault = DebarVault(tmp_path / "peer")
        peer = serve_vault(peer_vault, node_name="b")
        threading.Thread(target=peer.serve_forever, daemon=True).start()
        vault = DebarVault(tmp_path / "vault")
        server = serve_vault(vault, node_name="a")
        threading.Thread(target=server.serve_forever, daemon=True).start()
        replicator = Replicator(
            vault, "a", {"b": ("127.0.0.1", peer.port)}, retry=FAST_RETRY
        )
        vault.replicator = replicator
        server.replicator = replicator
        try:
            replicator.pause()  # queue builds up while stalled
            data = tmp_path / "data"
            data.mkdir()
            (data / "x.bin").write_bytes(os.urandom(3000))
            vault.backup("j", [str(data)])
            assert peer.replica_store.container_ids("a") == []
            replicator.resume()
            assert server.shutdown_gracefully(timeout=15.0) is True
            assert peer.replica_store.container_ids("a") == (
                vault.repository.container_ids()
            )
        finally:
            vault.replicator = None
            peer.shutdown()
            peer.server_close()
            peer_vault.close()
            vault.close()
