"""Fault-injection harness: crash dedup-2 at every step boundary and prove
the auditor either passes (the state is a legal window) or pinpoints the
damage, and that index reconstruction recovers it (Sections 4.1 and 5.4).
"""

import pytest

from repro.audit import (
    CONTAINER_SEALED,
    CRASH_POINTS,
    POST_SIL,
    POST_SIU,
    PRE_SIU,
    SCALE_BUCKET,
    FaultPlan,
    InjectedCrash,
    audit_index,
    audit_tpds,
    inject,
)
from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.storage import ChunkRepository, FileBlockStore
from repro.system.vault import DebarVault
from tests.conftest import make_fps


def make_tpds(siu_every=1, n_bits=8, cache_capacity=1 << 20):
    index = DiskIndex(n_bits, bucket_bytes=512)
    repo = ChunkRepository()
    tpds = TwoPhaseDeduplicator(
        index,
        repo,
        filter_capacity=4096,
        cache_capacity=cache_capacity,
        container_bytes=64 * 1024,
        siu_every=siu_every,
    )
    return tpds, repo


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


def rebuild_index(tpds, repo):
    """The paper's disaster recovery: rebuild the index part from the
    repository's container metadata sections."""
    tpds.index = DiskIndex.rebuild_from_entries(
        repo.iter_index_entries(), tpds.index.n_bits, bucket_bytes=512
    )


def replay_from_log(tpds):
    """Seed the engine from its surviving chunk log, the way the vault's
    startup RecoveryManager does after a crash."""
    seen = set()
    undetermined = []
    for record in tpds.chunk_log._records:
        if record.fingerprint not in seen:
            seen.add(record.fingerprint)
            undetermined.append(record.fingerprint)
    tpds._undetermined = undetermined + tpds._undetermined
    tpds._inflight = []
    tpds._unregistered.update(tpds.checking.pending())


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("mid_air")
        with pytest.raises(ValueError):
            FaultPlan(POST_SIL, occurrence=0)

    def test_fires_exactly_once_at_nth_hit(self):
        plan = FaultPlan(CONTAINER_SEALED, occurrence=2)
        plan(POST_SIL)
        plan(CONTAINER_SEALED)
        with pytest.raises(InjectedCrash) as exc:
            plan(CONTAINER_SEALED)
        assert exc.value.point == CONTAINER_SEALED
        assert exc.value.occurrence == 2
        plan(CONTAINER_SEALED)  # spent: never fires again
        assert plan.hits == {POST_SIL: 1, CONTAINER_SEALED: 3}

    def test_inject_restores_previous_hook(self):
        tpds, _ = make_tpds()
        previous = FaultPlan(PRE_SIU, occurrence=99)
        tpds.fault_hook = previous
        with inject(tpds, POST_SIL) as plan:
            assert tpds.fault_hook is plan
        assert tpds.fault_hook is previous

    def test_hook_checkpoints_cover_the_pipeline(self):
        tpds, _ = make_tpds()
        seen = []
        tpds.fault_hook = seen.append
        tpds.dedup1_backup(stream(make_fps(30)))
        tpds.dedup2(force_siu=True)
        assert seen[0] == POST_SIL
        assert CONTAINER_SEALED in seen
        assert seen.index(PRE_SIU) > seen.index(CONTAINER_SEALED)
        assert seen[-1] == POST_SIU
        assert set(seen) <= set(CRASH_POINTS)


class TestCrashPoints:
    """Kill dedup-2 at each boundary; the auditor must classify the wreck."""

    def test_crash_post_sil_leaves_store_consistent(self):
        tpds, _ = make_tpds()
        tpds.dedup1_backup(stream(make_fps(50)))
        with inject(tpds, POST_SIL):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)
        # Nothing was persisted yet; the chunk log still holds the records.
        assert audit_tpds(tpds).ok
        assert len(tpds.chunk_log) == 50

    def test_crash_mid_chunk_storing_is_covered_by_checking(self):
        tpds, repo = make_tpds()
        fps = make_fps(50)
        tpds.dedup1_backup(stream(fps))
        with inject(tpds, CONTAINER_SEALED, occurrence=2):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)
        # Sealed containers landed, and the checking file learned their
        # fingerprints at seal time — no orphan window opens.
        report = audit_tpds(tpds)
        assert report.ok, report.summary()
        assert not report.has("chunk-orphaned")
        # Replay the surviving chunk log the way startup recovery does:
        # the checking screen skips what is already stored, the rest lands,
        # and SIU registers everything exactly once.
        replay_from_log(tpds)
        tpds.dedup2(force_siu=True)
        report = audit_tpds(tpds)
        assert report.ok, report.summary()
        assert not report.has("duplicate-store")
        for fp in fps:
            assert tpds.index.lookup(fp) is not None

    def test_crash_pre_siu_is_a_legal_window(self):
        tpds, repo = make_tpds()
        fps = make_fps(50)
        tpds.dedup1_backup(stream(fps))
        with inject(tpds, PRE_SIU):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)
        # The checking file covers every stored chunk: legal state.
        assert audit_tpds(tpds).ok
        assert len(tpds.index) == 0
        assert len(tpds.checking) == 50
        # Losing the checking file turns the window into damage...
        tpds.checking = CheckingFile()
        report = audit_tpds(tpds)
        assert not report.ok
        assert report.has("chunk-orphaned")
        # ...and reconstruction from container metadata repairs it.
        rebuild_index(tpds, repo)
        assert audit_tpds(tpds).ok
        for fp in fps:
            assert tpds.index.lookup(fp) is not None

    def test_crash_post_siu_is_fully_durable(self):
        tpds, _ = make_tpds()
        tpds.dedup1_backup(stream(make_fps(50)))
        with inject(tpds, POST_SIU):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)
        assert audit_tpds(tpds).ok
        assert len(tpds.index) == 50
        assert len(tpds.checking) == 0


class TestScaleCrash:
    def test_crash_between_bucket_migrations_preserves_old_index(self):
        tpds, repo = make_tpds(n_bits=2)
        fps = make_fps(120)
        tpds.dedup1_backup(stream(fps))
        with inject(tpds, SCALE_BUCKET, occurrence=2):
            with pytest.raises(InjectedCrash):
                tpds.dedup2(force_siu=True)
        # The scaling aborted: the engine still holds the old index, and
        # every stored chunk is covered by the checking file.
        assert tpds.index.n_bits == 2
        assert audit_tpds(tpds).ok
        # A restart retries SIU; scaling completes and everything lands.
        tpds.run_siu_now()
        assert tpds.index.n_bits > 2
        assert audit_tpds(tpds).ok
        for fp in fps:
            assert tpds.index.lookup(fp) is not None

    def test_file_backed_crash_leaves_original_file_untouched(self, tmp_path):
        path = tmp_path / "idx.bin"
        index = DiskIndex(4, bucket_bytes=512, store=FileBlockStore(path, 16 * 512))
        fps = make_fps(100)
        for i, fp in enumerate(fps):
            index.insert(fp, i)
        index.store.flush()

        calls = []

        def crash_at_third(k):
            calls.append(k)
            if len(calls) == 3:
                raise InjectedCrash(SCALE_BUCKET, 3)

        with pytest.raises(InjectedCrash):
            index.scale_capacity(checkpoint=crash_at_third)
        # The temp successor is cleaned up and the original never renamed.
        assert not path.with_name("idx.bin.scale").exists()
        assert index.store.path == path
        assert audit_index(index).ok
        for i, fp in enumerate(fps):
            assert index.lookup(fp) == i
        # A retry from the same index completes normally.
        scaled = index.scale_capacity()
        assert scaled.n_bits == 5
        assert scaled.store.path == path
        assert dict(scaled.iter_entries()) == {fp: i for i, fp in enumerate(fps)}


class TestSilSiuWindow:
    """The Section 5.4 window: asynchronous SIU (siu_every > 1) with
    interleaved backups, with and without a crash inside the window."""

    def test_interleaved_backups_store_once_and_audit_clean(self):
        tpds, repo = make_tpds(siu_every=3)
        fps = make_fps(60)
        tpds.dedup1_backup(stream(fps))
        s1 = tpds.dedup2()
        assert not s1.siu_performed and s1.new_chunks_stored == 60
        assert audit_tpds(tpds).ok  # window open, checking file covers
        # A second backup of the same data inside the window: the checking
        # file (not the still-empty index) must resolve every duplicate.
        tpds.dedup1_backup(stream(fps))
        s2 = tpds.dedup2()
        assert s2.new_chunks_stored == 0
        assert s2.duplicate_chunks == 60
        assert audit_tpds(tpds).ok
        # Third round: fresh data, and the SIU policy finally fires.
        more = make_fps(40, start=1000)
        tpds.dedup1_backup(stream(more))
        s3 = tpds.dedup2()
        assert s3.siu_performed
        assert len(tpds.index) == 100
        assert len(tpds.checking) == 0
        report = audit_tpds(tpds)
        assert report.ok
        assert not report.has("duplicate-store")

    def test_crash_inside_window_recovers(self):
        tpds, repo = make_tpds(siu_every=5)
        first = make_fps(40)
        tpds.dedup1_backup(stream(first))
        tpds.dedup2()  # stores, no SIU: window open
        second = make_fps(40, start=500)
        tpds.dedup1_backup(stream(second))
        with inject(tpds, CONTAINER_SEALED):
            with pytest.raises(InjectedCrash):
                tpds.dedup2()
        # Both rounds' stored chunks are covered by the checking file —
        # the crashed round's sealed container included, because each seal
        # appends its batch to the checking file before moving on.
        report = audit_tpds(tpds)
        assert report.ok, report.summary()
        assert not report.has("duplicate-store")
        # Restart-style recovery: replay the surviving chunk log and force
        # SIU; every fingerprint registers exactly once.
        replay_from_log(tpds)
        tpds.dedup2(force_siu=True)
        report = audit_tpds(tpds)
        assert report.ok, report.summary()
        assert not report.has("duplicate-store")
        for fp in first + second:
            assert tpds.index.lookup(fp) is not None


class TestVaultCrashRoundTrip:
    """The acceptance round trip: backup -> crash -> audit -> rebuild ->
    restore, all against a real file-backed vault."""

    def _write_tree(self, root, tag, files=3, size=40 * 1024):
        # Deterministic incompressible content: repeating patterns would
        # collapse under CDC and not exercise the index at all.
        import random

        root.mkdir(exist_ok=True)
        for i in range(files):
            rng = random.Random(sum(tag.encode()) * 1000 + i)
            (root / f"{tag}-{i}.bin").write_bytes(rng.randbytes(size))

    def test_backup_crash_audit_rebuild_restore(self, tmp_path):
        data = tmp_path / "data"
        self._write_tree(data, "gen1")
        vault = DebarVault(tmp_path / "vault", index_n_bits=6)
        run1 = vault.backup("job", [data], timestamp=1.0)
        assert vault.audit(deep=True).ok

        # New generation of data, then a crash mid chunk-storing: sealed
        # containers are on disk, the chunk log still holds the records,
        # and the checking file knows which chunks made it into containers.
        self._write_tree(data, "gen2")
        with inject(vault.tpds, CONTAINER_SEALED):
            with pytest.raises(InjectedCrash):
                vault.backup("job", [data], timestamp=2.0)
        vault.close()

        # "Restart": reopen from disk alone.  Startup recovery replays the
        # interrupted dedup-2 from the persistent chunk log + checking file
        # — the checking-file screen guarantees nothing is stored twice.
        vault = DebarVault(tmp_path / "vault")
        assert vault.recovery_report is not None
        assert vault.recovery_report.replayed
        assert vault.recovery_report.log_records_replayed > 0
        report = vault.audit(deep=True)
        assert report.ok, report.summary()
        assert not report.has("duplicate-store")

        # The recorded run restores byte-identically.
        restored = vault.restore(run1.run_id, tmp_path / "out")
        assert len(restored) == 3
        for path in restored:
            original = data / path.name
            assert path.read_bytes() == original.read_bytes()

        # And the healed vault accepts the interrupted backup cleanly.
        run2 = vault.backup("job", [data], timestamp=3.0)
        assert vault.audit(deep=True).ok
        restored2 = vault.restore(run2.run_id, tmp_path / "out2")
        assert len(restored2) == 6
        vault.close()

    def test_vault_scaling_crash_keeps_vault_reopenable(self, tmp_path):
        data = tmp_path / "data"
        self._write_tree(data, "bulk", files=8, size=64 * 1024)
        # A tiny index so the backup forces capacity scaling mid-SIU.
        vault = DebarVault(tmp_path / "vault", index_n_bits=1)
        with inject(vault.tpds, SCALE_BUCKET):
            with pytest.raises(InjectedCrash):
                vault.backup("job", [data], timestamp=1.0)
        vault.close()
        # The aborted scaling left no temp file behind.
        vault_dir = tmp_path / "vault"
        assert not (vault_dir / "index.bin.scale").exists()
        # Reopen: startup recovery finds the stored-but-unregistered
        # fingerprints in the checking file, re-runs SIU (scaling the index
        # as needed this time) and leaves a consistent vault.
        vault = DebarVault(vault_dir)
        assert vault.recovery_report is not None
        assert vault.recovery_report.replayed
        report = vault.audit()
        assert report.ok, report.summary()
        vault.close()
