"""End-to-end tests for the single-server DebarSystem facade."""

import pytest

from repro import DebarSystem
from repro.director.scheduler import Dedup2Policy
from repro.server import BackupServerConfig
from repro.workloads import FileTreeGenerator, mutate_tree
from tests.conftest import make_fps


def file_config():
    return BackupServerConfig(
        index_n_bits=8,
        index_bucket_bytes=512,
        container_bytes=256 * 1024,
        filter_capacity=8192,
        cache_capacity=1 << 20,
        materialize=True,
    )


def stream_config():
    cfg = file_config()
    cfg.materialize = False
    return cfg


class TestFileMode:
    def test_backup_restore_byte_identical(self, tmp_path):
        src = tmp_path / "src"
        FileTreeGenerator(seed=1).generate(src, n_files=5, n_dirs=2, min_size=8192, max_size=65536)
        system = DebarSystem(config=file_config())
        job = system.define_job("tree", client="c1", dataset=[src])
        run, stats = system.run_backup(job)
        assert stats.logical_bytes > 0
        system.run_dedup2()
        system.restore_run(run, tmp_path / "out", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "out" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_second_run_filtered_by_job_chain(self, tmp_path):
        src = tmp_path / "src"
        FileTreeGenerator(seed=2).generate(src, n_files=5, n_dirs=1, min_size=8192, max_size=32768)
        system = DebarSystem(config=file_config())
        job = system.define_job("tree", client="c1", dataset=[src])
        _, s1 = system.run_backup(job)
        system.run_dedup2()
        mutate_tree(src, seed=3, new_files=1, delete_files=0)
        _, s2 = system.run_backup(job)
        # Most chunks unchanged: the preliminary filter suppresses them.
        assert s2.filtered_chunks > 0
        assert s2.transferred_bytes < s1.transferred_bytes

    def test_restore_after_mutation_restores_latest(self, tmp_path):
        src = tmp_path / "src"
        FileTreeGenerator(seed=4).generate(src, n_files=4, n_dirs=1, min_size=8192, max_size=32768)
        system = DebarSystem(config=file_config())
        job = system.define_job("tree", client="c1", dataset=[src])
        run1, _ = system.run_backup(job)
        system.run_dedup2()
        mutate_tree(src, seed=5, new_files=1, delete_files=0)
        run2, _ = system.run_backup(job)
        system.run_dedup2()
        system.restore_run(run2, tmp_path / "v2", strip_prefix=tmp_path)
        for p in sorted(x for x in src.rglob("*") if x.is_file()):
            assert (tmp_path / "v2" / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()
        # And the first version is still independently restorable.
        system.restore_run(run1, tmp_path / "v1", strip_prefix=tmp_path)


class TestVerifyRun:
    def test_verify_clean_file_mode_run(self, tmp_path):
        src = tmp_path / "src"
        FileTreeGenerator(seed=6).generate(src, n_files=4, n_dirs=1, min_size=8192, max_size=32768)
        system = DebarSystem(config=file_config())
        job = system.define_job("v", client="c1", dataset=[src])
        run, _ = system.run_backup(job)
        system.run_dedup2()
        report = system.verify_run(run)
        assert report["chunks"] > 0
        assert report["payloads_verified"] == report["chunks"]

    def test_verify_stream_mode_shallow(self):
        system = DebarSystem(config=stream_config())
        job = system.define_job("v", client="c1")
        run, _ = system.backup_stream(job, [(fp, 8192) for fp in make_fps(25)], auto_dedup2=False)
        system.run_dedup2()
        report = system.verify_run(run)
        assert report["chunks"] == 25
        assert report["payloads_verified"] == 0  # virtual payloads: shallow only


class TestStreamMode:
    def test_stream_backup_and_compression_accounting(self):
        system = DebarSystem(config=stream_config())
        job = system.define_job("stream", client="c1")
        fps = make_fps(200)
        run, stats = system.backup_stream(job, [(fp, 8192) for fp in fps], auto_dedup2=False)
        system.run_dedup2()
        # Same job again: everything filtered.
        run2, stats2 = system.backup_stream(job, [(fp, 8192) for fp in fps], auto_dedup2=False)
        system.run_dedup2()
        assert stats2.transferred_chunks == 0
        assert system.logical_bytes_protected == 2 * 200 * 8192
        assert system.physical_bytes_stored == 200 * 8192
        assert system.compression_ratio == pytest.approx(2.0)

    def test_restore_fingerprints(self):
        system = DebarSystem(config=stream_config())
        job = system.define_job("stream", client="c1")
        fps = make_fps(30)
        run, _ = system.backup_stream(job, [(fp, 8192) for fp in fps], auto_dedup2=False)
        system.run_dedup2()
        payloads = system.restore_fingerprints(run)
        assert len(payloads) == 30
        assert all(len(p) == 8192 for p in payloads)

    def test_auto_dedup2_policy_trigger(self):
        cfg = stream_config()
        system = DebarSystem(
            config=cfg, policy=Dedup2Policy(undetermined_threshold=50)
        )
        job = system.define_job("s", client="c1")
        system.backup_stream(job, [(fp, 8192) for fp in make_fps(49)])
        assert system.director.dedup2_runs == 0
        job2 = system.define_job("s2", client="c1")
        system.backup_stream(job2, [(fp, 8192) for fp in make_fps(60, start=100)])
        assert system.director.dedup2_runs == 1
        assert system.server.undetermined_count == 0

    def test_elapsed_advances(self):
        system = DebarSystem(config=stream_config())
        job = system.define_job("s", client="c1")
        system.backup_stream(job, [(fp, 8192) for fp in make_fps(10)], auto_dedup2=False)
        t1 = system.elapsed
        assert t1 > 0
        system.run_dedup2()
        assert system.elapsed > t1
