"""Tests for the single-server two-phase de-duplication scheme."""

import pytest

from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.storage import ChunkRepository
from tests.conftest import make_fps


def make_tpds(siu_every=1, n_bits=8, container_bytes=64 * 1024, **kwargs):
    index = DiskIndex(n_bits, bucket_bytes=512)
    repo = ChunkRepository()
    tpds = TwoPhaseDeduplicator(
        index,
        repo,
        filter_capacity=4096,
        cache_capacity=1 << 20,
        container_bytes=container_bytes,
        siu_every=siu_every,
        **kwargs,
    )
    return tpds, repo


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


class TestDedup1:
    def test_new_data_fully_transferred(self):
        tpds, _ = make_tpds()
        fps = make_fps(100)
        stats, file_index = tpds.dedup1_backup(stream(fps))
        assert stats.logical_chunks == 100
        assert stats.transferred_chunks == 100
        assert stats.filtered_chunks == 0
        assert file_index == fps
        assert tpds.undetermined_count == 100
        assert len(tpds.chunk_log) == 100

    def test_filtering_fps_suppress_transfer(self):
        tpds, _ = make_tpds()
        fps = make_fps(100)
        tpds.dedup1_backup(stream(fps))
        stats, _ = tpds.dedup1_backup(stream(fps), filtering_fps=fps)
        assert stats.transferred_chunks == 0
        assert stats.filtered_chunks == 100
        assert stats.compression_ratio == float("inf")

    def test_internal_duplication_filtered(self):
        tpds, _ = make_tpds()
        fps = make_fps(50)
        stats, _ = tpds.dedup1_backup(stream(fps + fps))
        assert stats.transferred_chunks == 50
        assert stats.filtered_chunks == 50
        assert stats.compression_ratio == pytest.approx(2.0)

    def test_file_index_includes_duplicates(self):
        # The file index must reference every chunk, filtered or not.
        tpds, _ = make_tpds()
        fps = make_fps(10)
        _, file_index = tpds.dedup1_backup(stream(fps + fps))
        assert file_index == fps + fps

    def test_time_charged(self):
        tpds, _ = make_tpds()
        stats, _ = tpds.dedup1_backup(stream(make_fps(100)))
        assert stats.elapsed > 0
        assert stats.throughput > 0
        assert tpds.meter.by_category["dedup1.pipeline"] > 0


class TestDedup2:
    def test_stores_new_chunks(self):
        tpds, repo = make_tpds()
        fps = make_fps(100)
        tpds.dedup1_backup(stream(fps))
        stats = tpds.dedup2()
        assert stats.new_chunks_stored == 100
        assert stats.siu_performed
        assert repo.stored_chunk_bytes == 100 * 8192
        assert len(tpds.index) == 100
        assert tpds.undetermined_count == 0
        assert len(tpds.chunk_log) == 0

    def test_sil_identifies_duplicates_across_jobs(self):
        tpds, repo = make_tpds()
        fps = make_fps(100)
        tpds.dedup1_backup(stream(fps))
        tpds.dedup2()
        # Same data, different job (no filtering fps): SIL must catch it.
        tpds.dedup1_backup(stream(fps))
        stats = tpds.dedup2()
        assert stats.new_chunks_stored == 0
        assert stats.duplicate_chunks == 100
        assert len(tpds.index) == 100

    def test_within_log_duplicates_stored_once(self):
        # Two jobs in one dedup-2 cycle sharing chunks (separate filters).
        tpds, repo = make_tpds()
        fps = make_fps(60)
        tpds.dedup1_backup(stream(fps))
        tpds.dedup1_backup(stream(fps))
        assert tpds.undetermined_count == 120
        stats = tpds.dedup2()
        assert stats.new_chunks_stored == 60
        assert stats.log_records_discarded == 60
        assert len(tpds.index) == 60

    def test_empty_dedup2(self):
        tpds, _ = make_tpds()
        stats = tpds.dedup2()
        assert stats.new_chunks_stored == 0
        assert stats.sil_rounds == 0
        assert not stats.siu_performed

    def test_multiple_sil_rounds_when_cache_small(self):
        tpds, _ = make_tpds()
        tpds.cache_capacity = 30
        tpds.dedup1_backup(stream(make_fps(100)))
        stats = tpds.dedup2()
        assert stats.sil_rounds == 4
        assert stats.new_chunks_stored == 100

    def test_cross_round_duplicate_counted_and_stored_once(self):
        """Regression: a fingerprint split across two SIL rounds (separate
        dedup-1 sessions, so the preliminary filter cannot merge them) is
        'new' in both rounds; the cache merge must count the later sighting
        as a duplicate so the stats add up with the chunk-log replay."""
        tpds, repo = make_tpds()
        tpds.cache_capacity = 4
        fps = make_fps(7)
        tpds.dedup1_backup(stream(fps[:4]))          # round 1: a b c d
        tpds.dedup1_backup(stream([fps[0]] + fps[4:]))  # round 2: a e f g
        assert tpds.undetermined_count == 8
        stats = tpds.dedup2()
        assert stats.sil_rounds == 2
        assert stats.new_chunks_stored == 7
        assert stats.log_records_discarded == 1
        assert stats.duplicate_chunks == 1
        # Accounting identity: every log record is stored or discarded,
        # and every undetermined fingerprint is new or duplicate.
        assert stats.log_chunks_processed == 8
        assert stats.new_chunks_stored + stats.duplicate_chunks == 8
        assert len(tpds.index) == 7
        assert repo.stored_chunk_bytes == 7 * 8192

    def test_stats_timing_decomposition(self):
        tpds, _ = make_tpds()
        tpds.dedup1_backup(stream(make_fps(100)))
        stats = tpds.dedup2()
        assert stats.sil_time > 0
        assert stats.storing_time > 0
        assert stats.siu_time > 0
        assert stats.elapsed == pytest.approx(
            stats.sil_time + stats.storing_time + stats.siu_time, rel=1e-6
        )

    def test_containers_have_affinity_and_ids(self):
        tpds, repo = make_tpds()
        tpds.dedup1_backup(stream(make_fps(40)))
        stats = tpds.dedup2()
        assert stats.containers_written == len(repo)
        assert stats.containers_written >= 40 * 8192 // (64 * 1024)


class TestAsynchronousSiu:
    def test_siu_deferred_until_policy(self):
        tpds, _ = make_tpds(siu_every=2)
        tpds.dedup1_backup(stream(make_fps(30)))
        s1 = tpds.dedup2()
        assert not s1.siu_performed
        assert len(tpds.index) == 0
        assert tpds.unregistered_count == 30
        tpds.dedup1_backup(stream(make_fps(30, start=100)))
        s2 = tpds.dedup2()
        assert s2.siu_performed
        assert len(tpds.index) == 60
        assert tpds.unregistered_count == 0

    def test_checking_file_prevents_duplicate_store(self):
        """A chunk stored before its SIU must not be stored again by a
        later SIL round (the Section 5.4 mechanism)."""
        tpds, repo = make_tpds(siu_every=10)  # SIU effectively disabled
        fps = make_fps(50)
        tpds.dedup1_backup(stream(fps))
        s1 = tpds.dedup2()
        assert s1.new_chunks_stored == 50
        assert not s1.siu_performed
        # Same fingerprints again: index still empty, checking file must act.
        tpds.dedup1_backup(stream(fps))
        s2 = tpds.dedup2()
        assert s2.new_chunks_stored == 0
        assert s2.duplicate_chunks == 50
        assert repo.stored_chunk_bytes == 50 * 8192

    def test_force_siu_override(self):
        tpds, _ = make_tpds(siu_every=10)
        tpds.dedup1_backup(stream(make_fps(10)))
        stats = tpds.dedup2(force_siu=True)
        assert stats.siu_performed
        tpds.dedup1_backup(stream(make_fps(10, start=50)))
        stats = tpds.dedup2(force_siu=False)
        assert not stats.siu_performed


class TestCapacityScalingPath:
    def test_index_scales_when_full(self):
        # A tiny index (4 buckets x 20 entries = 80) forced past capacity.
        tpds, _ = make_tpds(n_bits=2)
        fps = make_fps(120)
        tpds.dedup1_backup(stream(fps))
        stats = tpds.dedup2()
        assert stats.capacity_scalings >= 1
        assert tpds.index.n_bits > 2
        assert len(tpds.index) == 120
        for fp in fps:
            assert tpds.index.lookup(fp) is not None

    def test_scaling_charged_to_meter(self):
        tpds, _ = make_tpds(n_bits=2)
        tpds.dedup1_backup(stream(make_fps(120)))
        tpds.dedup2()
        assert tpds.meter.by_category["scale.read"] > 0
        assert tpds.meter.by_category["scale.write"] > 0


class TestClusterHooks:
    def test_drain_undetermined(self):
        tpds, _ = make_tpds()
        fps = make_fps(20)
        tpds.dedup1_backup(stream(fps))
        drained = tpds.drain_undetermined()
        assert drained == fps
        assert tpds.undetermined_count == 0

    def test_store_from_log_respects_external_decisions(self):
        tpds, repo = make_tpds()
        fps = make_fps(20)
        tpds.dedup1_backup(stream(fps))
        tpds.drain_undetermined()
        stored, stats = tpds.store_from_log(fps[:5])
        assert set(stored) == set(fps[:5])
        assert stats.new_chunks_stored == 5
        assert stats.log_records_discarded == 15
        assert repo.stored_chunk_bytes == 5 * 8192

    def test_accept_unregistered_then_siu(self):
        tpds, _ = make_tpds()
        entries = {fp: 3 for fp in make_fps(10)}
        tpds.accept_unregistered(entries)
        assert tpds.unregistered_count == 10
        tpds.run_siu_now()
        assert tpds.unregistered_count == 0
        assert len(tpds.index) == 10

    def test_invalid_siu_every(self):
        index = DiskIndex(4, bucket_bytes=512)
        with pytest.raises(ValueError):
            TwoPhaseDeduplicator(index, ChunkRepository(), siu_every=0)
