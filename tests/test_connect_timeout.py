"""``--connect-timeout``: fast failure against a listener that never
accepts (satellite of the front-door PR).

A router probing a hung node — or a CLI client pointed at one — must
not wait out the full I/O timeout just to learn the TCP connection is
going nowhere.  :class:`RetryPolicy.connect_timeout` bounds the
``connect()`` itself, separately from the per-operation I/O timeout.

The "never accepts" condition is manufactured portably: a listening
socket with a minimal backlog whose accept queue is saturated by
pre-opened connections, so further handshakes hang in SYN purgatory
instead of completing.
"""

import socket
import time

import pytest

from repro.net.client import NetClient, RemoteUnavailable, RetryPolicy


@pytest.fixture()
def swamped_listener():
    """A bound, listening, never-accepting socket with a full backlog."""
    lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(0)
    addr = lsock.getsockname()
    fillers = []
    # Saturate the accept queue (kernels round the backlog up, so pile
    # on well past it) with non-blocking connects that are never served.
    for _ in range(32):
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setblocking(False)
        try:
            s.connect(addr)
        except BlockingIOError:
            pass
        fillers.append(s)
    time.sleep(0.05)
    try:
        yield addr
    finally:
        for s in fillers:
            s.close()
        lsock.close()


def test_connect_timeout_bounds_the_handshake(swamped_listener):
    host, port = swamped_listener
    retry = RetryPolicy(
        max_attempts=1, timeout=30.0, connect_timeout=0.3, base_delay=0.01
    )
    client = NetClient(host, port, retry=retry)
    started = time.monotonic()
    with pytest.raises(RemoteUnavailable):
        client.ping()
    elapsed = time.monotonic() - started
    # Well under the 30s I/O timeout the old behaviour would have used.
    assert elapsed < 5.0, f"connect hung {elapsed:.1f}s despite connect_timeout"
    client.close()


def test_connect_timeout_retries_each_attempt_bounded(swamped_listener):
    host, port = swamped_listener
    retry = RetryPolicy(
        max_attempts=3, timeout=30.0, connect_timeout=0.2,
        base_delay=0.01, max_delay=0.02,
    )
    client = NetClient(host, port, retry=retry)
    started = time.monotonic()
    with pytest.raises(RemoteUnavailable):
        client.ping()
    elapsed = time.monotonic() - started
    assert elapsed < 6.0
    client.close()


def test_connect_timeout_defaults_to_io_timeout():
    retry = RetryPolicy(timeout=7.5)
    assert retry.effective_connect_timeout == 7.5
    tighter = RetryPolicy(timeout=7.5, connect_timeout=0.5)
    assert tighter.effective_connect_timeout == 0.5


def test_connect_timeout_does_not_shrink_io_timeout(tmp_path):
    """A live server keeps the full I/O timeout after a fast connect."""
    from repro.net.server import serve_vault
    from repro.system.vault import DebarVault
    import threading

    vault = DebarVault(tmp_path / "v")
    server = serve_vault(vault, node_name="a")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        retry = RetryPolicy(
            max_attempts=1, timeout=5.0, connect_timeout=0.3, base_delay=0.01
        )
        with NetClient(server.host, server.port, retry=retry) as client:
            assert client.ping() is True
            assert client._sock.gettimeout() == 5.0
    finally:
        server.shutdown()
        server.server_close()
        vault.close()
