"""Tests for job objects, schedules and job chains."""

import pytest

from repro.director.jobs import JobChain, JobObject, JobRun, Schedule


class TestSchedule:
    def test_parse_daily(self):
        s = Schedule.parse("daily at 1.05am")
        assert (s.period, s.hour, s.minute) == ("daily", 1, 5)

    def test_parse_pm(self):
        s = Schedule.parse("daily at 11:30pm")
        assert (s.hour, s.minute) == (23, 30)

    def test_parse_noon_and_midnight(self):
        assert Schedule.parse("daily at 12.00pm").hour == 12
        assert Schedule.parse("daily at 12.00am").hour == 0

    def test_parse_weekly_hourly(self):
        assert Schedule.parse("weekly at 2.00am").period_seconds == 7 * 86400
        assert Schedule.parse("hourly at 0.15").period_seconds == 3600

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Schedule.parse("whenever")
        with pytest.raises(ValueError):
            Schedule.parse("daily at 25.00")

    def test_next_run_time_daily(self):
        s = Schedule("daily", 1, 5)
        offset = 1 * 3600 + 5 * 60
        assert s.next_run_time(0.0) == offset
        assert s.next_run_time(offset) == 86400 + offset
        assert s.next_run_time(offset - 1) == offset

    def test_next_run_strictly_after(self):
        s = Schedule("hourly", 0, 30)
        t = s.next_run_time(1800.0)
        assert t == 3600 + 1800

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Schedule("monthly", 1, 0)
        with pytest.raises(ValueError):
            Schedule("daily", 24, 0)


class TestJobObject:
    def test_unique_ids(self):
        a = JobObject("a", "c1", ["/x"])
        b = JobObject("b", "c1", ["/y"])
        assert a.job_id != b.job_id

    def test_requires_name_and_client(self):
        with pytest.raises(ValueError):
            JobObject("", "c1", [])
        with pytest.raises(ValueError):
            JobObject("a", "", [])

    def test_default_schedule_is_papers_example(self):
        job = JobObject("a", "c1", [])
        assert (job.schedule.hour, job.schedule.minute) == (1, 5)


class TestJobChain:
    def test_chronological_chain(self):
        job = JobObject("j", "c", [])
        chain = JobChain(job)
        assert chain.latest() is None
        r1 = JobRun(job, timestamp=1.0)
        r2 = JobRun(job, timestamp=2.0)
        chain.record(r1)
        chain.record(r2)
        assert chain.latest() is r2
        assert len(chain) == 2
        assert chain.runs == (r1, r2)

    def test_rejects_out_of_order(self):
        job = JobObject("j", "c", [])
        chain = JobChain(job)
        chain.record(JobRun(job, timestamp=5.0))
        with pytest.raises(ValueError):
            chain.record(JobRun(job, timestamp=4.0))

    def test_rejects_foreign_run(self):
        chain = JobChain(JobObject("j", "c", []))
        other = JobObject("k", "c", [])
        with pytest.raises(ValueError):
            chain.record(JobRun(other, timestamp=1.0))
