"""repro.archive: delta objects, chains, merge/compaction, retention,
the async shipper, and point-in-time restore (DESIGN.md §15).

The cluster tests run a real archive daemon ("vaultkeep") on a loopback
socket beside an in-process origin vault ("a") whose
:class:`~repro.archive.shipper.ArchiveShipper` ships per-run deltas over
real frames.  Covers the PR's acceptance path: after the primary vault is
destroyed outright, ``restore --as-of`` reproduces every retained run
byte-identically from the archive — directly, over ``--connect``, and
through the front-door router — and crash injection at each archive
checkpoint (mid-merge, mid-push) never loses a restorable point.
"""

import json
import random
import shutil
import threading
import time

import pytest

from repro.archive.delta import (
    Delta,
    cut_delta,
    fold,
    merge_deltas,
    pack_delta,
    recipe_fps,
    unpack_delta,
)
from repro.archive.restore import restore_local, restore_remote
from repro.archive.retention import RetentionPolicy
from repro.archive.shipper import ArchiveShipper, peers_from_state
from repro.archive.store import ArchiveError, ArchiveStore
from repro.audit.faults import (
    ARCHIVE_MERGE_PRECLEANUP,
    ARCHIVE_MERGE_PREPUBLISH,
    ARCHIVE_SHIP_PREACK,
    FaultPlan,
    InjectedCrash,
    inject,
)
from repro.core.fingerprint import fingerprint as sha1
from repro.director.director import Director
from repro.durability.errors import CorruptionError, TornWriteError
from repro.net import messages as m
from repro.net.client import NetClient, RemoteBackupClient, RetryPolicy
from repro.net.server import serve_vault
from repro.system.vault import DebarVault
from repro.telemetry.registry import MetricsRegistry

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, timeout=5.0)


# -- helpers ---------------------------------------------------------------------
def start_daemon(vault, node_name):
    server = serve_vault(vault, node_name=node_name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def mutate_dataset(root, r):
    """Advance the dataset to run ``r``'s content; returns name -> bytes."""
    rng = random.Random(100 + r)
    data = root / "data"
    data.mkdir(exist_ok=True)
    (data / "stable.bin").write_bytes(b"unchanging payload " * 200)
    (data / "churn.bin").write_bytes(rng.randbytes(3000))
    (data / f"new{r}.bin").write_bytes(rng.randbytes(1200) * 2)
    return {p.name: p.read_bytes() for p in data.iterdir()}


def restored_map(dest):
    return {p.name: p.read_bytes() for p in dest.rglob("*.bin")}


def make_entry(path, payloads):
    """A catalog-shaped recipe entry + its fp->payload chunk map."""
    fps = [sha1(d) for d in payloads]
    entry = {
        "path": path,
        "size": sum(len(d) for d in payloads),
        "mode": 0o644,
        "mtime": 1.0,
        "fingerprints": [fp.hex() for fp in fps],
    }
    return entry, dict(zip(fps, payloads))


def chain_deltas(n, job="homes", origin="a", day_seconds=86400.0):
    """A synthetic n-run chain: a shared file plus one churning file.

    Returns ``(deltas, recipes)`` where ``recipes[i]`` is the full recipe
    at run ``i+1``.  Timestamps are one day apart (retention tests).
    """
    shared, shared_chunks = make_entry("/data/shared", [b"shared-payload" * 40])
    deltas, recipes = [], []
    recipe = {}
    for i in range(1, n + 1):
        mut, mut_chunks = make_entry("/data/mut", [b"mut-%04d-" % i * 50])
        if i == 1:
            files = {"/data/shared": shared, "/data/mut": mut}
            chunks = {**shared_chunks, **mut_chunks}
        else:
            files = {"/data/mut": mut}
            chunks = dict(mut_chunks)
        deltas.append(
            Delta(
                origin=origin, job=job, run_id=i, base_run_id=i - 1,
                timestamp=i * day_seconds, full=(i == 1),
                files=files, chunks=chunks,
            )
        )
        recipe = fold(recipe, deltas[-1])
        recipes.append(dict(recipe))
    return deltas, recipes


def ingest_chain(store, deltas, origin="a", job="homes"):
    for delta in deltas:
        stored, _ = store.ingest(origin, job, pack_delta(delta))
        assert stored


# -- the delta format ------------------------------------------------------------
class TestDeltaFormat:
    def test_pack_unpack_roundtrip(self):
        (delta,), _ = chain_deltas(1)
        blob = pack_delta(delta)
        back = unpack_delta(blob)
        assert back.origin == "a" and back.job == "homes"
        assert (back.run_id, back.base_run_id) == (1, 0)
        assert back.full and back.files == delta.files
        assert back.chunks == delta.chunks
        assert back.timestamp == delta.timestamp

    def test_corrupt_payload_rejected(self):
        (delta,), _ = chain_deltas(1)
        blob = bytearray(pack_delta(delta))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(CorruptionError):
            unpack_delta(bytes(blob))

    def test_torn_tail_rejected(self):
        (delta,), _ = chain_deltas(1)
        blob = pack_delta(delta)
        with pytest.raises((TornWriteError, CorruptionError)):
            unpack_delta(blob[:-7])

    def test_wrong_kind_rejected(self):
        from repro.durability.framing import Superblock

        blob = Superblock(b"XXXX", 1, b"{}").pack()
        with pytest.raises(CorruptionError):
            unpack_delta(blob)


class TestCutAndFold(object):
    def test_cut_against_previous_run(self, tmp_path):
        vault = DebarVault(tmp_path / "v")
        try:
            mutate_dataset(tmp_path, 1)
            run1 = vault.backup("homes", [str(tmp_path / "data")])
            mutate_dataset(tmp_path, 2)
            run2 = vault.backup("homes", [str(tmp_path / "data")])
            d1 = cut_delta(vault, run1, base_run_id=0, origin="a")
            d2 = cut_delta(vault, run2, base_run_id=1, origin="a")
        finally:
            vault.close()
        assert d1.full and not d2.full
        recipe1 = fold({}, d1)
        recipe2 = fold(recipe1, d2)
        assert set(recipe1) == {e.metadata.path for e in run1.files}
        assert set(recipe2) == {e.metadata.path for e in run2.files}
        # The incremental delta carries exactly the chunks new to the chain.
        assert set(d2.chunks) == recipe_fps(recipe2) - recipe_fps(recipe1)
        # Every fingerprint either delta's recipe references is covered.
        assert recipe_fps(recipe2) <= set(d1.chunks) | set(d2.chunks)

    def test_cut_falls_back_to_full_when_base_forgotten(self, tmp_path):
        vault = DebarVault(tmp_path / "v")
        try:
            mutate_dataset(tmp_path, 1)
            vault.backup("homes", [str(tmp_path / "data")])
            mutate_dataset(tmp_path, 2)
            run2 = vault.backup("homes", [str(tmp_path / "data")])
            vault.forget(1, job="homes")
            d2 = cut_delta(vault, run2, base_run_id=1, origin="a")
        finally:
            vault.close()
        assert d2.full  # base recipe gone: a full delta is the safe superset
        assert recipe_fps(fold({}, d2)) == set(d2.chunks)


class TestMergeAlgebra:
    def test_merge_composes_and_prunes(self):
        (d1, d2, d3), recipes = chain_deltas(3)
        merged = merge_deltas(d2, d3, base_recipe=recipes[0])
        assert (merged.base_run_id, merged.run_id) == (1, 3)
        assert fold(recipes[0], merged) == recipes[2]
        # Compaction: run 2's churned chunks are merged away; what's kept
        # is exactly recipe(3) \ recipe(1).
        assert set(merged.chunks) == recipe_fps(recipes[2]) - recipe_fps(recipes[0])

    def test_merge_full_propagates(self):
        (d1, d2, _), recipes = chain_deltas(3)
        merged = merge_deltas(d1, d2)
        assert merged.full and merged.base_run_id == 0
        assert fold({}, merged) == recipes[1]
        assert set(merged.chunks) == recipe_fps(recipes[1])

    def test_merge_composes_removals(self):
        (d1,), _ = chain_deltas(1)
        gone = Delta(
            origin="a", job="homes", run_id=2, base_run_id=1,
            timestamp=2.0, full=False, files={"/data/mut": None},
        )
        merged = merge_deltas(d1, gone)
        assert "/data/mut" not in fold({}, merged)
        assert "/data/shared" in fold({}, merged)

    def test_merge_rejects_non_adjacent_and_cross_job(self):
        (d1, d2, d3), _ = chain_deltas(3)
        with pytest.raises(ValueError):
            merge_deltas(d1, d3)
        other = Delta(
            origin="a", job="other", run_id=2, base_run_id=1,
            timestamp=2.0, full=False, files={},
        )
        with pytest.raises(ValueError):
            merge_deltas(d1, other)


# -- the archive store -----------------------------------------------------------
class TestArchiveStore:
    def test_fifo_ingest_and_idempotency(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, _ = chain_deltas(3)
        assert store.ingest("a", "homes", pack_delta(deltas[0])) == (True, 1)
        # A re-push of an applied run is a no-op ack, not an error.
        assert store.ingest("a", "homes", pack_delta(deltas[0])) == (False, 1)
        with pytest.raises(ArchiveError):  # ahead of tip, base != tip
            store.ingest("a", "homes", pack_delta(deltas[2]))
        assert store.ingest("a", "homes", pack_delta(deltas[1])) == (True, 2)
        assert store.ingest("a", "homes", pack_delta(deltas[2])) == (True, 3)
        assert store.points("a", "homes") == [1, 2, 3]

    def test_out_of_order_refused(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, _ = chain_deltas(3)
        ingest_chain(store, deltas[:1])
        with pytest.raises(ArchiveError):
            store.ingest("a", "homes", pack_delta(deltas[2]))
        assert store.points("a", "homes") == [1]

    def test_unsafe_names_refused(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        (d1,), _ = chain_deltas(1)
        with pytest.raises(ArchiveError):
            store.ingest("../evil", "homes", pack_delta(d1))

    def test_restore_points_along_chain(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, recipes = chain_deltas(3)
        ingest_chain(store, deltas)
        assert store.points("a", "homes") == [1, 2, 3]
        for as_of in (1, 2, 3):
            recipe, chunks = store.restore_point("a", "homes", as_of)
            assert recipe == recipes[as_of - 1]
            assert recipe_fps(recipe) <= set(chunks)
        with pytest.raises(ArchiveError):
            store.restore_point("a", "homes", 9)

    def test_compaction_drops_points_keeps_survivors(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, recipes = chain_deltas(4)
        ingest_chain(store, deltas)
        before = sum(s.bytes for s in store.chain("a", "homes"))
        expired = store.compact("a", "homes", keep={1, 4})
        assert expired == [2, 3]
        assert store.points("a", "homes") == [1, 4]
        # Compaction reclaims bytes (runs 2 and 3's churn merged away)...
        assert sum(s.bytes for s in store.chain("a", "homes")) < before
        # ...and every survivor still restores its exact recipe.
        for as_of in (1, 4):
            recipe, chunks = store.restore_point("a", "homes", as_of)
            assert recipe == recipes[as_of - 1]
            assert recipe_fps(recipe) <= set(chunks)

    @pytest.mark.parametrize(
        "point", [ARCHIVE_MERGE_PREPUBLISH, ARCHIVE_MERGE_PRECLEANUP]
    )
    def test_crash_mid_merge_resumes_clean(self, tmp_path, point):
        store = ArchiveStore(tmp_path / "archive")
        deltas, recipes = chain_deltas(3)
        ingest_chain(store, deltas)
        with inject(store, point):
            with pytest.raises(InjectedCrash):
                store.compact("a", "homes", keep={3})
        # "Restart": a fresh open resolves the cursor (forward past the
        # publish point, back before it) — the chain is clean either way.
        reopened = ArchiveStore(tmp_path / "archive")
        job_dir = tmp_path / "archive" / "a" / "homes"
        assert not (job_dir / "merge.json").exists()
        assert not list(job_dir.glob("*.tmp"))
        points = reopened.points("a", "homes")
        assert 3 in points  # the tip is never lost
        for as_of in points:
            recipe, chunks = reopened.restore_point("a", "homes", as_of)
            assert recipe == recipes[as_of - 1]
            assert recipe_fps(recipe) <= set(chunks)
        # The interrupted compaction completes on re-run.
        reopened.compact("a", "homes", keep={3})
        assert reopened.points("a", "homes") == [3]
        recipe, chunks = reopened.restore_point("a", "homes", 3)
        assert recipe == recipes[2]

    def test_restore_local_resolution(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, recipes = chain_deltas(2)
        ingest_chain(store, deltas)
        dest = tmp_path / "out"
        paths = restore_local(store, 2, dest)
        assert len(paths) == len(recipes[1])
        assert (dest / "data" / "shared").read_bytes() == b"shared-payload" * 40
        with pytest.raises(KeyError):
            restore_local(store, 9, tmp_path / "none")

    def test_restore_local_ambiguity_requires_job(self, tmp_path):
        store = ArchiveStore(tmp_path / "archive")
        deltas, _ = chain_deltas(1)
        other, _ = chain_deltas(1, job="mail")
        ingest_chain(store, deltas)
        ingest_chain(store, other, job="mail")
        with pytest.raises(KeyError, match="qualify"):
            restore_local(store, 1, tmp_path / "out")
        restore_local(store, 1, tmp_path / "out", job="mail")


class TestRetentionPolicy:
    def test_parse_spec_roundtrip(self):
        policy = RetentionPolicy.parse("keep-last=3,daily=7,weekly=4")
        assert policy == RetentionPolicy(keep_last=3, keep_daily=7, keep_weekly=4)
        assert RetentionPolicy.parse(policy.spec()) == policy
        with pytest.raises(ValueError):
            RetentionPolicy.parse("keep=everything")
        with pytest.raises(ValueError):
            RetentionPolicy(keep_last=0)

    def test_keep_last_and_tip(self):
        policy = RetentionPolicy(keep_last=2)
        points = [(i, i * 86400.0) for i in range(1, 6)]
        assert policy.keep(points) == {4, 5}
        assert policy.expired(points) == [1, 2, 3]

    def test_daily_keeps_newest_per_day(self):
        policy = RetentionPolicy(keep_last=1, keep_daily=2)
        day = 86400.0
        points = [(1, 1 * day), (2, 1.5 * day), (3, 2 * day), (4, 2.5 * day)]
        # Newest of each of the last 2 days: runs 2 and 4; plus the tip (4).
        assert policy.keep(points) == {2, 4}


# -- the cluster path ------------------------------------------------------------
@pytest.fixture()
def archive_cluster(tmp_path):
    """Origin vault "a" (in-process, shipping) + archive daemon "vaultkeep"."""
    vault_k = DebarVault(tmp_path / "keep")
    server_k = start_daemon(vault_k, "vaultkeep")
    registry = MetricsRegistry()
    vault_a = DebarVault(tmp_path / "a", telemetry=registry)
    shipper = ArchiveShipper(
        vault_a,
        "a",
        {"vaultkeep": (server_k.host, server_k.port)},
        retry=FAST_RETRY,
        registry=registry,
    )
    vault_a.archive_shipper = shipper
    try:
        yield vault_a, shipper, server_k, vault_k, registry
    finally:
        shipper.close(drain=False, timeout=1.0)
        server_k.shutdown()
        server_k.server_close()
        vault_k.close()
        try:
            vault_a.close()
        except Exception:
            pass  # DR tests destroy this vault's directory on purpose


class TestArchiveCluster:
    def backup_runs(self, vault, tmp_path, n=5, job="homes"):
        originals = {}
        for r in range(1, n + 1):
            originals[r] = mutate_dataset(tmp_path, r)
            vault.backup(job, [str(tmp_path / "data")])
        return originals

    def test_dr_restore_after_primary_destroyed(self, archive_cluster, tmp_path):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        originals = self.backup_runs(vault_a, tmp_path, n=5)
        assert shipper.drain(timeout=10.0)
        assert wait_until(
            lambda: server_k.archive_store.tip("a", "homes") == 5
        )
        assert server_k.archive_store.points("a", "homes") == [1, 2, 3, 4, 5]
        # Destroy the primary vault entirely: catalog, containers, index.
        vault_a.close()
        shutil.rmtree(vault_a.root)
        for as_of in (2, 5):
            dest = tmp_path / f"dr{as_of}"
            with NetClient(
                server_k.host, server_k.port, client_name="dr", retry=FAST_RETRY
            ) as net:
                restore_remote(net, as_of, dest)
            assert restored_map(dest) == originals[as_of]

    def test_shipping_state_survives_restart(self, archive_cluster, tmp_path):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        self.backup_runs(vault_a, tmp_path, n=3)
        assert shipper.drain(timeout=10.0)
        shipper.close(drain=False)
        assert peers_from_state(vault_a.root) == {
            "vaultkeep": (server_k.host, server_k.port)
        }
        # A restarted shipper owes nothing: the ack state persisted.
        fresh = ArchiveShipper(
            vault_a, "a",
            {"vaultkeep": (server_k.host, server_k.port)},
            retry=FAST_RETRY,
        )
        try:
            assert fresh.sync() == 0
        finally:
            fresh.close(drain=False)
        # A lost state file merely re-pushes; the archive no-ops each one.
        (vault_a.root / "archive.json").unlink()
        repush = ArchiveShipper(
            vault_a, "a",
            {"vaultkeep": (server_k.host, server_k.port)},
            retry=FAST_RETRY,
        )
        try:
            assert repush.sync() == 3
            assert repush.drain(timeout=10.0)
        finally:
            repush.close(drain=False)
        assert server_k.archive_store.points("a", "homes") == [1, 2, 3]
        status = server_k.archive_store.status()
        assert len(status["origins"]["a"]["homes"]["segments"]) == 3

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crash_mid_push_resumes_without_double_apply(
        self, archive_cluster, tmp_path
    ):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        # Crash the worker after the push lands but before the ack is
        # recorded — the canonical lost-ack window.
        shipper.fault_hook = FaultPlan(ARCHIVE_SHIP_PREACK)
        originals = self.backup_runs(vault_a, tmp_path, n=1)
        assert wait_until(
            lambda: server_k.archive_store.tip("a", "homes") == 1
        )
        channel = shipper._channels["vaultkeep"]
        assert wait_until(lambda: not channel.thread.is_alive())
        assert shipper._acked["vaultkeep"].get("homes", 0) == 0  # ack lost
        shipper.close(drain=False)
        # Restart: the re-push is answered stored=False (idempotent no-op)
        # and the ack cursor advances past it.
        fresh = ArchiveShipper(
            vault_a, "a",
            {"vaultkeep": (server_k.host, server_k.port)},
            retry=FAST_RETRY,
        )
        vault_a.archive_shipper = fresh
        try:
            assert fresh.sync() == 1
            assert fresh.drain(timeout=10.0)
            assert fresh._acked["vaultkeep"]["homes"] == 1
        finally:
            fresh.close(drain=False)
        assert server_k.archive_store.points("a", "homes") == [1]
        dest = tmp_path / "out"
        with NetClient(
            server_k.host, server_k.port, client_name="dr", retry=FAST_RETRY
        ) as net:
            restore_remote(net, 1, dest)
        assert restored_map(dest) == originals[1]

    def test_retention_compacts_at_the_archive(self, archive_cluster, tmp_path):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        server_k.archive_director = Director(
            retention=RetentionPolicy(keep_last=2)
        )
        originals = self.backup_runs(vault_a, tmp_path, n=4)
        assert shipper.drain(timeout=10.0)
        assert wait_until(
            lambda: server_k.archive_store.points("a", "homes") == [3, 4]
        )
        # Every surviving --as-of point is byte-identical after expiry.
        for as_of in (3, 4):
            dest = tmp_path / f"kept{as_of}"
            with NetClient(
                server_k.host, server_k.port, client_name="dr", retry=FAST_RETRY
            ) as net:
                restore_remote(net, as_of, dest)
            assert restored_map(dest) == originals[as_of]

    def test_archive_merge_and_status_over_wire(self, archive_cluster, tmp_path):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        self.backup_runs(vault_a, tmp_path, n=3)
        assert shipper.drain(timeout=10.0)
        client = RemoteBackupClient(
            server_k.host, server_k.port, retry=FAST_RETRY
        )
        try:
            status = client.archive_status()
            assert status["node"] == "vaultkeep"
            assert status["origins"]["a"]["homes"]["points"] == [1, 2, 3]
            report = client.archive_merge(retention="keep-last=1")
            assert report["expired"] == {"a": {"homes": [1, 2]}}
            assert client.archive_status()["origins"]["a"]["homes"]["points"] == [3]
        finally:
            client.close()

    def test_runs_carry_chunks_over_wire(self, archive_cluster, tmp_path):
        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        mutate_dataset(tmp_path, 1)
        run = vault_a.backup("homes", [str(tmp_path / "data")])
        assert shipper.drain(timeout=10.0)
        # The origin daemon reports per-run chunk counts on the wire; so
        # does any serve daemon — ask the archive about its own (empty)
        # catalog first, then a daemon over the origin vault.
        server_a = start_daemon(vault_a, "a2")
        try:
            client = RemoteBackupClient(
                server_a.host, server_a.port, retry=FAST_RETRY
            )
            try:
                runs = client.runs()
                assert runs[0].chunks == sum(
                    len(e.fingerprints) for e in run.files
                )
                assert runs[0].chunks > 0
            finally:
                client.close()
        finally:
            server_a.shutdown()
            server_a.server_close()

    def test_restore_as_of_through_front_door(self, archive_cluster, tmp_path):
        from repro.frontdoor.client import RouterClient
        from repro.frontdoor.membership import ClusterMembership
        from repro.frontdoor.router import FrontDoorRouter

        vault_a, shipper, server_k, vault_k, registry = archive_cluster
        originals = self.backup_runs(vault_a, tmp_path, n=3)
        assert shipper.drain(timeout=10.0)
        # The cluster after the disaster: only the archive node is left.
        vault_a.close()
        shutil.rmtree(vault_a.root)
        membership = ClusterMembership(tmp_path / "state", replication_factor=1)
        membership.join("vaultkeep", f"{server_k.host}:{server_k.port}")
        router = FrontDoorRouter(
            membership, state_dir=tmp_path / "state",
            probe_interval=3600.0, probe_timeout=0.5,
        )
        thread = threading.Thread(target=router.serve_forever, daemon=True)
        thread.start()
        try:
            # Redirect mode: the smart client sweeps the live archives.
            with RouterClient(
                router.server_address[0], router.server_address[1],
                retry=FAST_RETRY,
            ) as rc:
                client, origin, job = rc.locate_archive_point(2)
                assert (origin, job) == ("a", "homes")
                try:
                    dest = tmp_path / "routed2"
                    client.restore_as_of(2, dest, job=job, origin=origin)
                finally:
                    client.close()
                assert restored_map(dest) == originals[2]
                with pytest.raises(KeyError):
                    rc.locate_archive_point(99)
            # Proxy mode: ARCHIVE_STATUS fans out and merges; DELTA_FETCH
            # fails over — a dumb client pointed at the router just works.
            with NetClient(
                router.server_address[0], router.server_address[1],
                client_name="dr", retry=FAST_RETRY,
            ) as net:
                merged = net.call_json(m.ARCHIVE_STATUS, {})
                assert "vaultkeep" in merged["nodes"]
                assert merged["origins"]["a"]["homes"]["points"] == [1, 2, 3]
                dest = tmp_path / "routed3"
                restore_remote(net, 3, dest)
            assert restored_map(dest) == originals[3]
        finally:
            router.shutdown()
            router.server_close()
            thread.join(timeout=5)


# -- the CLI surface -------------------------------------------------------------
class TestArchiveCli:
    def test_runs_json_lists_archive_fields(self, tmp_path, capsys):
        from repro import cli

        mutate_dataset(tmp_path, 1)
        vault_dir = tmp_path / "v"
        assert cli.main([
            "backup", "--vault", str(vault_dir), "--job", "homes",
            str(tmp_path / "data"),
        ]) == 0
        capsys.readouterr()
        assert cli.main(["runs", "--vault", str(vault_dir), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        row = rows[0]
        assert row["run_id"] == 1 and row["job"] == "homes"
        assert row["chunks"] > 0 and row["logical_bytes"] > 0
        assert row["timestamp"] > 0

    def test_forget_gc_reclaims_in_one_invocation(self, tmp_path, capsys):
        from repro import cli

        vault_dir = tmp_path / "v"
        for r in (1, 2):
            mutate_dataset(tmp_path, r)
            assert cli.main([
                "backup", "--vault", str(vault_dir), "--job", "homes",
                str(tmp_path / "data"),
            ]) == 0
        capsys.readouterr()
        assert cli.main([
            "forget", "--vault", str(vault_dir), "--run", "1", "--gc",
        ]) == 0
        out = capsys.readouterr().out
        assert "gc reclaimed" in out
        # Run 2 survives the combined forget+gc untouched.
        dest = tmp_path / "out"
        assert cli.main([
            "restore", "--vault", str(vault_dir), "--run", "2",
            "--dest", str(dest),
        ]) == 0

    def test_restore_requires_exactly_one_selector(self, tmp_path, capsys):
        from repro import cli

        assert cli.main([
            "restore", "--vault", str(tmp_path / "v"), "--dest", str(tmp_path),
        ]) == cli.EXIT_USAGE
        assert cli.main([
            "restore", "--vault", str(tmp_path / "v"), "--run", "1",
            "--as-of", "2", "--dest", str(tmp_path),
        ]) == cli.EXIT_USAGE

    def test_restore_as_of_local_archive(self, tmp_path, capsys):
        from repro import cli

        vault_dir = tmp_path / "v"
        DebarVault(vault_dir).close()  # an archive daemon's (empty) vault
        store = ArchiveStore(vault_dir / "archive")
        deltas, recipes = chain_deltas(2)
        ingest_chain(store, deltas)
        dest = tmp_path / "out"
        assert cli.main([
            "restore", "--vault", str(vault_dir), "--as-of", "2",
            "--dest", str(dest),
        ]) == 0
        assert (dest / "data" / "shared").read_bytes() == b"shared-payload" * 40
        capsys.readouterr()
        assert cli.main([
            "restore", "--vault", str(vault_dir), "--as-of", "9",
            "--dest", str(dest),
        ]) == cli.EXIT_ERROR
        assert "no archived chain retains" in capsys.readouterr().err

    def test_archive_status_local_json(self, tmp_path, capsys):
        from repro import cli

        vault_dir = tmp_path / "v"
        DebarVault(vault_dir).close()
        store = ArchiveStore(vault_dir / "archive")
        deltas, _ = chain_deltas(2)
        ingest_chain(store, deltas)
        out_path = tmp_path / "archive.json"
        assert cli.main([
            "archive-status", "--vault", str(vault_dir),
            "--json", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["origins"]["a"]["homes"]["points"] == [1, 2]
