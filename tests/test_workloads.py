"""Tests for the synthetic (Section 6.2) and HUSt (Section 6.1) workloads."""

import pytest

from repro.workloads import HustConfig, HustWorkload, SyntheticConfig, SyntheticUniverse
from repro.workloads.synthetic import Section


class TestSyntheticUniverse:
    def _universe(self, **kwargs):
        defaults = dict(n_streams=4, section_chunks=32, seed=1)
        defaults.update(kwargs)
        return SyntheticUniverse(SyntheticConfig(**defaults))

    def test_first_version_all_new(self):
        u = self._universe()
        sections = u.next_version(0, 500)
        fps = [fp for s in sections for fp in u.fingerprints_of(s)]
        assert len(fps) == 500
        assert len(set(fps)) == 500

    def test_version_sizes(self):
        u = self._universe()
        sections = u.next_version(0, 321)
        assert u.version_chunks(sections) == 321

    def test_duplication_fractions_near_target(self):
        u = self._universe(dup_fraction=0.9, cross_fraction=0.3)
        for sid in range(4):
            u.next_version(sid, 1000)
        prior = {
            sid: {fp for s in u._history[sid] for fp in u.fingerprints_of(s)}
            for sid in range(4)
        }
        sections = u.next_version(0, 1000)
        fps = [fp for s in sections for fp in u.fingerprints_of(s)]
        dup = sum(1 for fp in fps if any(fp in prior[s] for s in range(4)))
        cross = sum(1 for fp in fps if any(fp in prior[s] for s in range(1, 4)))
        assert dup / len(fps) == pytest.approx(0.9, abs=0.1)
        assert cross / len(fps) == pytest.approx(0.3, abs=0.12)

    def test_cross_stream_sections_reference_other_subspaces(self):
        u = self._universe()
        for sid in range(4):
            u.next_version(sid, 500)
        sections = u.next_version(1, 500)
        donors = {s.subspace for s in sections}
        assert donors - {1}  # at least one foreign subspace

    def test_deterministic_given_seed(self):
        a = self._universe(seed=9)
        b = self._universe(seed=9)
        for sid in range(2):
            assert a.next_version(sid, 200) == b.next_version(sid, 200)

    def test_stream_materialisation(self):
        u = self._universe()
        sections = u.next_version(0, 100)
        chunks = list(u.version_stream(sections))
        assert len(chunks) == 100
        assert all(size == u.config.chunk_size for _, size in chunks)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(dup_fraction=0.2, cross_fraction=0.5)
        with pytest.raises(ValueError):
            SyntheticConfig(n_streams=0)

    def test_invalid_stream_args(self):
        u = self._universe()
        with pytest.raises(ValueError):
            u.next_version(99, 10)
        with pytest.raises(ValueError):
            u.next_version(0, 0)


class TestHustWorkload:
    def _workload(self, **kwargs):
        defaults = dict(n_clients=4, days=10, mean_daily_chunks=2000, seed=3)
        defaults.update(kwargs)
        return HustWorkload(HustConfig(**defaults))

    def test_day_zero_all_fresh(self):
        w = self._workload()
        streams = w.day_streams(0)
        assert len(streams) == 4
        for _, sections in streams:
            fps = [fp for s in sections for fp in w.fingerprints_of(s)]
            assert len(set(fps)) == len(fps)

    def test_daily_volumes_vary(self):
        w = self._workload()
        day_totals = []
        for day in range(10):
            streams = w.day_streams(day)
            day_totals.append(sum(w.section_chunk_count(s) for _, s in streams))
        assert max(day_totals) > 1.3 * min(day_totals)

    def test_later_days_heavily_duplicated(self):
        w = self._workload()
        seen = set()
        dup_rates = []
        for day in range(6):
            streams = w.day_streams(day)
            day_fps = [fp for _, sec in streams for s in sec for fp in w.fingerprints_of(s)]
            dups = sum(1 for fp in day_fps if fp in seen)
            dup_rates.append(dups / len(day_fps))
            seen.update(day_fps)
        assert dup_rates[0] == 0.0
        # Composition: ~55 % adjacent + ~22 % old + internal repeats.
        assert all(r > 0.6 for r in dup_rates[1:])

    def test_new_fraction_matches_config(self):
        cfg = HustConfig(n_clients=4, days=8, mean_daily_chunks=4000, seed=5)
        w = HustWorkload(cfg)
        seen = set()
        total = new = 0
        for day in range(8):
            for _, sec in w.day_streams(day):
                for s in sec:
                    for fp in w.fingerprints_of(s):
                        total += 1
                        if fp not in seen:
                            new += 1
                            seen.add(fp)
        # Day 0 is all new; later days ~cfg.new_fraction. Loose band.
        assert 0.05 < new / total < 0.5

    def test_day_bounds(self):
        w = self._workload()
        with pytest.raises(ValueError):
            w.day_streams(-1)
        with pytest.raises(ValueError):
            w.day_streams(10)

    def test_deterministic(self):
        a, b = self._workload(seed=8), self._workload(seed=8)
        assert a.day_streams(0) == b.day_streams(0)

    def test_stream_of(self):
        w = self._workload()
        _, sections = w.day_streams(0)[0]
        chunks = list(w.stream_of(sections))
        assert len(chunks) == w.section_chunk_count(sections)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HustConfig(internal_fraction=0.5, adjacent_fraction=0.4, old_fraction=0.2)
        with pytest.raises(ValueError):
            HustConfig(n_clients=0)


class TestSection:
    def test_immutable_value_object(self):
        s = Section(1, 10, 5)
        assert (s.subspace, s.start, s.length) == (1, 10, 5)
        with pytest.raises(AttributeError):
            s.start = 3
