"""Tests for the metadata manager and the director's metadata store."""

import pytest

from repro.director.metadata import (
    FileIndexEntry,
    FileMetadata,
    MetadataManager,
    MetadataStore,
)
from repro.util import MB
from tests.conftest import make_fps


def entries_for(n_files=3, fps_per_file=4):
    out = []
    for i in range(n_files):
        fps = make_fps(fps_per_file, start=i * 100)
        out.append(FileIndexEntry(FileMetadata(f"/data/f{i}", fps_per_file * 8192), fps))
    return out


class TestMetadataManager:
    def test_record_and_fetch(self):
        mm = MetadataManager()
        entries = entries_for()
        mm.record_run_files(1, entries)
        assert 1 in mm
        assert mm.files_for_run(1) == entries

    def test_duplicate_run_rejected(self):
        mm = MetadataManager()
        mm.record_run_files(1, entries_for())
        with pytest.raises(ValueError):
            mm.record_run_files(1, entries_for())

    def test_missing_run(self):
        mm = MetadataManager()
        with pytest.raises(KeyError):
            mm.files_for_run(99)
        with pytest.raises(KeyError):
            mm.fingerprints_for_run(99)

    def test_fingerprints_flattened_in_order(self):
        mm = MetadataManager()
        entries = entries_for(2, 3)
        mm.record_run_files(5, entries)
        expected = entries[0].fingerprints + entries[1].fingerprints
        assert mm.fingerprints_for_run(5) == expected

    def test_file_index_lookup_by_path(self):
        mm = MetadataManager()
        entries = entries_for()
        mm.record_run_files(2, entries)
        assert mm.file_index(2, "/data/f1") is entries[1]
        with pytest.raises(KeyError):
            mm.file_index(2, "/nope")

    def test_index_bytes(self):
        entry = entries_for(1, 5)[0]
        assert entry.index_bytes == 5 * 20


class TestMetadataStore:
    def test_counts_and_time(self):
        store = MetadataStore()
        store.write(10 * MB)
        store.read(5 * MB)
        assert store.bytes_written == 10 * MB
        assert store.bytes_read == 5 * MB
        assert store.clock.now > 0

    def test_aggregate_throughput_near_100mbps(self):
        # The Section 6.3 subsystem: >100 MB/s aggregate.
        store = MetadataStore()
        for _ in range(50):
            store.write(4 * MB)
        assert store.aggregate_throughput == pytest.approx(100 * MB, rel=0.05)

    def test_negative_rejected(self):
        store = MetadataStore()
        with pytest.raises(ValueError):
            store.write(-1)
        with pytest.raises(ValueError):
            store.read(-1)

    def test_manager_charges_store(self):
        store = MetadataStore()
        mm = MetadataManager(store=store)
        mm.record_run_files(1, entries_for())
        t_write = store.clock.now
        assert t_write > 0
        mm.files_for_run(1)
        assert store.clock.now > t_write
