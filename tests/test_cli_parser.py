"""Tests for the CLI argument surface (independent of vault state)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        assert set(sub.choices) == {
            "backup", "list", "runs", "restore", "verify", "audit", "stats",
            "forget", "gc", "scrub", "recover-index", "serve", "trace",
            "rebuild", "repl-status", "archive-status", "migrate",
            "tier-status", "route", "cluster-status", "rebalance",
        }

    def test_backup_requires_job_and_paths(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["backup", "--vault", "/v"])
        args = parser.parse_args(["backup", "--vault", "/v", "--job", "j", "/a", "/b"])
        assert args.paths == ["/a", "/b"]
        assert args.job == "j"

    def test_restore_defaults(self):
        parser = build_parser()
        args = parser.parse_args(
            ["restore", "--vault", "/v", "--run", "3", "--dest", "/d"]
        )
        assert args.run == 3
        assert args.strip_prefix == "/"

    def test_audit_deep_flag(self):
        parser = build_parser()
        args = parser.parse_args(["audit", "--vault", "/v"])
        assert args.deep is False
        args = parser.parse_args(["audit", "--vault", "/v", "--deep"])
        assert args.deep is True

    def test_gc_threshold_default(self):
        parser = build_parser()
        args = parser.parse_args(["gc", "--vault", "/v"])
        assert args.rewrite_threshold == 0.5

    def test_vault_required_for_local_only_commands(self):
        parser = build_parser()
        for cmd in ("audit", "scrub", "recover-index", "serve"):
            with pytest.raises(SystemExit):
                parser.parse_args([cmd])

    def test_target_required_for_remote_capable_commands(self):
        # Remote-capable commands defer the --vault/--connect choice to
        # main(), which must reject neither/both with a usage error (2).
        for argv in (
            ["list"],
            ["verify"],
            ["stats"],
            ["list", "--vault", "/v", "--connect", "h:1"],
        ):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2

    def test_connect_accepted_in_place_of_vault(self):
        parser = build_parser()
        args = parser.parse_args(["list", "--connect", "backuphost:7070"])
        assert args.connect == "backuphost:7070"
        assert args.vault is None

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--vault", "/v"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.port_file is None
        args = parser.parse_args(
            ["serve", "--vault", "/v", "--port", "7070", "--port-file", "/tmp/p"]
        )
        assert args.port == 7070 and args.port_file == "/tmp/p"

    def test_serve_replication_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--vault", "/v"])
        assert args.node_name == "node"
        assert args.replicate_to is None
        assert args.replication_factor == 2
        args = parser.parse_args([
            "serve", "--vault", "/v", "--node-name", "a",
            "--replicate-to", "b=h:1", "--replicate-to", "c=h:2",
            "--replication-factor", "3", "--drain-timeout", "5",
        ])
        assert args.node_name == "a"
        assert args.replicate_to == ["b=h:1", "c=h:2"]
        assert args.replication_factor == 3
        assert args.drain_timeout == 5.0

    def test_rebuild_flags(self):
        parser = build_parser()
        with pytest.raises(SystemExit):  # --peer is required
            parser.parse_args(["rebuild", "--vault", "/v", "--node", "a"])
        args = parser.parse_args([
            "rebuild", "--vault", "/v", "--node", "a",
            "--peer", "b=h:1", "--peer", "h:2",
        ])
        assert args.node == "a"
        assert args.peer == ["b=h:1", "h:2"]

    def test_repl_status_accepts_vault_or_connect(self):
        parser = build_parser()
        args = parser.parse_args(["repl-status", "--connect", "h:1"])
        assert args.connect == "h:1" and args.vault is None
        args = parser.parse_args(["repl-status", "--vault", "/v", "--json", "/tmp/s"])
        assert args.json == "/tmp/s"
        with pytest.raises(SystemExit) as exc:
            main(["repl-status"])
        assert exc.value.code == 2

    def test_restore_replica_flag_repeatable(self):
        parser = build_parser()
        args = parser.parse_args(
            ["restore", "--vault", "/v", "--run", "1", "--dest", "/d",
             "--replica", "b=h:1", "--replica", "h:2"]
        )
        assert args.replica == ["b=h:1", "h:2"]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_flags_default_off(self):
        parser = build_parser()
        for argv in (
            ["backup", "--vault", "/v", "--job", "j", "/a"],
            ["restore", "--vault", "/v", "--run", "1", "--dest", "/d"],
            ["stats", "--vault", "/v"],
            ["gc", "--vault", "/v"],
        ):
            args = parser.parse_args(argv)
            assert args.telemetry is False
            assert args.telemetry_json is None
        args = parser.parse_args(["stats", "--vault", "/v", "--telemetry",
                                  "--telemetry-json", "/tmp/t.json"])
        assert args.telemetry is True
        assert args.telemetry_json == "/tmp/t.json"

    def test_trace_wraps_backup_and_restore(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "backup", "--vault", "/v", "--job", "j", "/a"]
        )
        assert args.trace is True
        assert args.job == "j" and args.paths == ["/a"]
        args = parser.parse_args(
            ["trace", "restore", "--vault", "/v", "--run", "2", "--dest", "/d"]
        )
        assert args.trace is True and args.run == 2
        # Plain backup/restore are untraced.
        assert parser.parse_args(
            ["backup", "--vault", "/v", "--job", "j", "/a"]
        ).trace is False
        # The trace wrapper requires a sub-command.
        with pytest.raises(SystemExit):
            parser.parse_args(["trace"])

    def test_scrub_flags_default_readonly(self):
        parser = build_parser()
        args = parser.parse_args(["scrub", "--vault", "/v"])
        assert args.repair is False
        assert args.peer is None
        assert args.limit is None and args.rate is None
        assert args.reset_cursor is False
        args = parser.parse_args([
            "scrub", "--vault", "/v", "--repair",
            "--peer", "a:1", "--peer", "b:2",
            "--limit", "500", "--rate", "8",
            "--report-json", "/tmp/r.json", "--reset-cursor",
        ])
        assert args.repair is True
        assert args.peer == ["a:1", "b:2"]
        assert args.limit == 500 and args.rate == 8.0
        assert args.report_json == "/tmp/r.json"
        assert args.reset_cursor is True

    def test_migrate_flags(self):
        parser = build_parser()
        args = parser.parse_args(["migrate", "--vault", "/v"])
        assert args.cold_root is None
        assert args.min_age == 1 and args.min_idle == 0
        assert args.limit is None and args.dry_run is False
        args = parser.parse_args([
            "migrate", "--vault", "/v", "--cold-root", "/bucket",
            "--min-age", "2", "--min-idle", "1", "--limit", "5",
            "--dry-run", "--report-json", "/tmp/m.json",
        ])
        assert args.cold_root == "/bucket"
        assert args.min_age == 2 and args.min_idle == 1
        assert args.limit == 5 and args.dry_run is True
        assert args.report_json == "/tmp/m.json"

    def test_tier_status_flags(self):
        parser = build_parser()
        with pytest.raises(SystemExit):  # local-only: --vault required
            parser.parse_args(["tier-status"])
        args = parser.parse_args(
            ["tier-status", "--vault", "/v", "--json", "/tmp/t.json"]
        )
        assert args.json == "/tmp/t.json"
        assert args.min_age == 1 and args.min_idle == 0

    def test_serve_cold_root_flag(self):
        parser = build_parser()
        assert parser.parse_args(["serve", "--vault", "/v"]).cold_root is None
        args = parser.parse_args(
            ["serve", "--vault", "/v", "--cold-root", "/bucket"]
        )
        assert args.cold_root == "/bucket"

    def test_audit_refuses_missing_vault(self, tmp_path, capsys):
        # Opening a vault creates one; the auditor must not conjure an
        # empty vault out of a mistyped path and report it clean.
        missing = tmp_path / "no-such-vault"
        assert main(["audit", "--vault", str(missing)]) == 1
        assert "no vault" in capsys.readouterr().err
        assert not missing.exists()
