"""Tests for the CLI argument surface (independent of vault state)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        assert set(sub.choices) == {
            "backup", "list", "restore", "verify", "audit", "stats",
            "forget", "gc", "recover-index", "trace",
        }

    def test_backup_requires_job_and_paths(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["backup", "--vault", "/v"])
        args = parser.parse_args(["backup", "--vault", "/v", "--job", "j", "/a", "/b"])
        assert args.paths == ["/a", "/b"]
        assert args.job == "j"

    def test_restore_defaults(self):
        parser = build_parser()
        args = parser.parse_args(
            ["restore", "--vault", "/v", "--run", "3", "--dest", "/d"]
        )
        assert args.run == 3
        assert args.strip_prefix == "/"

    def test_audit_deep_flag(self):
        parser = build_parser()
        args = parser.parse_args(["audit", "--vault", "/v"])
        assert args.deep is False
        args = parser.parse_args(["audit", "--vault", "/v", "--deep"])
        assert args.deep is True

    def test_gc_threshold_default(self):
        parser = build_parser()
        args = parser.parse_args(["gc", "--vault", "/v"])
        assert args.rewrite_threshold == 0.5

    def test_vault_required_everywhere(self):
        parser = build_parser()
        for cmd in ("list", "verify", "audit", "stats", "recover-index"):
            with pytest.raises(SystemExit):
                parser.parse_args([cmd])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_flags_default_off(self):
        parser = build_parser()
        for argv in (
            ["backup", "--vault", "/v", "--job", "j", "/a"],
            ["restore", "--vault", "/v", "--run", "1", "--dest", "/d"],
            ["stats", "--vault", "/v"],
            ["gc", "--vault", "/v"],
        ):
            args = parser.parse_args(argv)
            assert args.telemetry is False
            assert args.telemetry_json is None
        args = parser.parse_args(["stats", "--vault", "/v", "--telemetry",
                                  "--telemetry-json", "/tmp/t.json"])
        assert args.telemetry is True
        assert args.telemetry_json == "/tmp/t.json"

    def test_trace_wraps_backup_and_restore(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "backup", "--vault", "/v", "--job", "j", "/a"]
        )
        assert args.trace is True
        assert args.job == "j" and args.paths == ["/a"]
        args = parser.parse_args(
            ["trace", "restore", "--vault", "/v", "--run", "2", "--dest", "/d"]
        )
        assert args.trace is True and args.run == 2
        # Plain backup/restore are untraced.
        assert parser.parse_args(
            ["backup", "--vault", "/v", "--job", "j", "/a"]
        ).trace is False
        # The trace wrapper requires a sub-command.
        with pytest.raises(SystemExit):
            parser.parse_args(["trace"])

    def test_audit_refuses_missing_vault(self, tmp_path, capsys):
        # Opening a vault creates one; the auditor must not conjure an
        # empty vault out of a mistyped path and report it clean.
        missing = tmp_path / "no-such-vault"
        assert main(["audit", "--vault", str(missing)]) == 1
        assert "no vault" in capsys.readouterr().err
        assert not missing.exists()
