"""Property tests for the placement ring (DESIGN.md §11.1).

The front door's redirect mode hands smart clients nothing but the ring
*inputs* and trusts them to place every key identically, and its
rebalancer trusts that a join disturbs only ~1/N of the keys.  These
are exactly the properties checked here, under hypothesis-generated
node sets and key populations:

* **monotonicity** (exact, not statistical): adding a node either
  leaves a key's primary alone or moves it *to the new node* — the
  consistent-hashing contract that makes rebalance plans small;
* **bounded movement**: the moved fraction stays in the same ballpark
  as the ideal 1/N (vnode variance allowed for, hard cap enforced);
* **replica sets** never repeat a node and have exactly
  ``min(rf, n)`` members, with the origin heading its containers';
* **determinism across processes**: a subprocess rebuilding the ring
  from ``to_doc()`` places a key population identically (byte-equal
  JSON), which is what lets routed clients skip the router entirely.
"""

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.replication.ring import PlacementRing

node_names = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=8),
    min_size=1, max_size=8, unique=True,
)

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200,
    unique=True,
).map(lambda ids: [f"ctr:n:{i}" for i in ids])


@settings(max_examples=50, deadline=None)
@given(nodes=node_names, keys=keys_strategy, new=st.text(
    alphabet="xyz", min_size=1, max_size=6))
def test_join_moves_keys_only_to_the_new_node(nodes, keys, new):
    """Exact invariant: a key's primary survives a join or moves to the
    joiner — never to a third node."""
    if new in nodes:
        return
    before = PlacementRing(nodes, replication_factor=1)
    after = PlacementRing(nodes + [new], replication_factor=1)
    for key in keys:
        old = before.replicas(key, rf=1)[0]
        now = after.replicas(key, rf=1)[0]
        assert now == old or now == new, (
            f"{key!r} moved {old!r} -> {now!r}, not to the joiner {new!r}"
        )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    keys=st.just([f"ctr:origin:{i}" for i in range(600)]),
)
def test_join_moves_about_one_nth_of_keys(n, keys):
    """The moved fraction is ≈1/(n+1): generously capped at 3× the ideal
    (64 vnodes leave real variance on small rings), and never zero for a
    key population this large."""
    nodes = [f"node{i}" for i in range(n)]
    before = PlacementRing(nodes, replication_factor=1)
    after = PlacementRing(nodes + ["joiner"], replication_factor=1)
    moved = sum(
        1 for k in keys
        if before.replicas(k, rf=1)[0] != after.replicas(k, rf=1)[0]
    )
    fraction = moved / len(keys)
    ideal = 1.0 / (n + 1)
    assert fraction <= min(3.0 * ideal, 1.0), (
        f"join moved {fraction:.1%} of keys, ideal {ideal:.1%}"
    )
    assert moved > 0, "a joiner that owns nothing is not in the ring"


@settings(max_examples=50, deadline=None)
@given(nodes=node_names, rf=st.integers(min_value=1, max_value=6),
       key_id=st.integers(min_value=0, max_value=10**9))
def test_replica_sets_are_distinct_and_sized(nodes, rf, key_id):
    ring = PlacementRing(nodes, replication_factor=rf)
    replicas = ring.replicas(f"ctr:a:{key_id}")
    assert len(replicas) == len(set(replicas)), "replica set repeats a node"
    assert len(replicas) == min(rf, len(nodes))
    assert set(replicas) <= set(nodes)
    # Container form: the origin leads, peers fill the remaining slots.
    origin = nodes[key_id % len(nodes)]
    full = ring.replicas_for_container(origin, key_id)
    assert full[0] == origin
    assert len(full) == len(set(full)) == min(rf, len(nodes))


@settings(max_examples=50, deadline=None)
@given(nodes=node_names, keys=keys_strategy)
def test_leave_is_the_mirror_of_join(nodes, keys):
    """Removing a node re-homes only the keys it owned."""
    if len(nodes) < 2:
        return
    ring = PlacementRing(nodes, replication_factor=1)
    gone = nodes[0]
    shrunk = PlacementRing(nodes[1:], replication_factor=1)
    for key in keys:
        old = ring.replicas(key, rf=1)[0]
        now = shrunk.replicas(key, rf=1)[0]
        if old != gone:
            assert now == old, f"{key!r} moved although {gone!r} never owned it"


@settings(max_examples=30, deadline=None)
@given(nodes=node_names, rf=st.integers(min_value=1, max_value=4))
def test_doc_round_trip_rebuilds_the_identical_ring(nodes, rf):
    ring = PlacementRing(nodes, replication_factor=rf)
    clone = PlacementRing.from_doc(json.loads(json.dumps(ring.to_doc())))
    for i in range(50):
        key = f"ctr:{nodes[i % len(nodes)]}:{i}"
        assert clone.replicas(key, rf=len(nodes)) == ring.replicas(
            key, rf=len(nodes)
        )


_CHILD = """
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.replication.ring import PlacementRing
spec = json.load(sys.stdin)
ring = PlacementRing.from_doc(spec["doc"])
print(json.dumps({k: ring.replicas(k) for k in spec["keys"]}, sort_keys=True))
"""


def test_ring_iteration_deterministic_across_processes():
    """The redirect contract end-to-end: a *separate interpreter* fed
    only ``to_doc()`` places 300 keys byte-identically."""
    ring = PlacementRing(["alpha", "beta", "gamma", "delta"],
                         replication_factor=3)
    keys = [f"ctr:alpha:{i}" for i in range(200)]
    keys += [f"idx:6:{i}" for i in range(50)]
    keys += [f"job:job{i}" for i in range(50)]
    local = json.dumps(
        {k: ring.replicas(k) for k in keys}, sort_keys=True
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    child = subprocess.run(
        [sys.executable, "-c", _CHILD, src],
        input=json.dumps({"doc": ring.to_doc(), "keys": keys}),
        capture_output=True, text=True, check=True,
    )
    assert child.stdout.strip() == local
