"""Tests for the defragmentation mechanism (Section 6.3)."""

import pytest

from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.simdisk import Meter, SimClock, paper_network, paper_repository_disk
from repro.storage import (
    ChunkRepository,
    ContainerWriter,
    DefragmentationManager,
)
from repro.system import DebarCluster
from tests.conftest import make_fps


def spread_repository(n_nodes=4, n_containers=8, chunks_each=4):
    """A repository with one stream's containers spread round-robin."""
    repo = ChunkRepository(n_nodes=n_nodes)
    fp_to_cid = {}
    all_fps = []
    for i in range(n_containers):
        writer = ContainerWriter(capacity=4096)
        fps = make_fps(chunks_each, start=i * 100)
        for fp in fps:
            writer.add(fp, data=b"x" * 64)
            all_fps.append(fp)
        cid = repo.allocate_id()
        repo.store(writer.seal(cid))
        for fp in fps:
            fp_to_cid[fp] = cid
    return repo, all_fps, fp_to_cid


class TestManager:
    def test_stream_containers_in_first_use_order(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo)
        cids = mgr.stream_containers(fps, fp_to_cid.get)
        assert cids == sorted(set(fp_to_cid.values()))

    def test_unresolvable_fingerprint_raises(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo)
        with pytest.raises(KeyError):
            mgr.stream_containers([make_fps(1, start=9999)[0]], fp_to_cid.get)

    def test_majority_node(self):
        repo, fps, fp_to_cid = spread_repository(n_nodes=4, n_containers=8)
        mgr = DefragmentationManager(repo)
        # Round-robin over 4 nodes: every node has 2; tie broken to lowest.
        assert mgr.majority_node(set(fp_to_cid.values())) == 0

    def test_run_aggregates_when_fragmented(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo, threshold=0.25)
        report = mgr.run(fps, fp_to_cid.get)
        assert report.triggered
        assert report.fragmentation_before == pytest.approx(0.75)
        assert report.fragmentation_after == 0.0
        assert report.moves == 6
        # All containers now co-located and still fetchable.
        for cid in set(fp_to_cid.values()):
            assert repo.locate(cid) == report.target_node
            repo.fetch(cid)

    def test_run_skips_below_threshold(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo, threshold=0.9)
        report = mgr.run(fps, fp_to_cid.get)
        assert not report.triggered
        assert report.moves == 0
        assert report.fragmentation_after == report.fragmentation_before

    def test_force_overrides_threshold(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo, threshold=0.9)
        report = mgr.run(fps, fp_to_cid.get, force=True)
        assert report.triggered
        assert report.fragmentation_after == 0.0

    def test_move_costs_charged(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo)
        meter = Meter(SimClock())
        report = mgr.run(
            fps, fp_to_cid.get,
            meter=meter, disk=paper_repository_disk(), network=paper_network(),
        )
        assert report.bytes_moved == report.moves * 4096
        assert meter.total("defrag") > 0

    def test_invalid_threshold(self):
        repo, _, _ = spread_repository()
        with pytest.raises(ValueError):
            DefragmentationManager(repo, threshold=1.0)

    def test_stats_accumulate(self):
        repo, fps, fp_to_cid = spread_repository()
        mgr = DefragmentationManager(repo)
        mgr.run(fps, fp_to_cid.get)
        assert mgr.passes == 1
        assert mgr.total_moves == 6


class TestClusterIntegration:
    def _cluster_with_cross_stream_run(self):
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=4096, cache_capacity=1 << 18,
        )
        cluster = DebarCluster(w_bits=2, config=cfg)
        gens = [SyntheticFingerprints(i) for i in range(4)]
        shared = gens[0].fresh(100)
        jobs, runs = [], {}
        assignments = []
        for i in range(4):
            job = cluster.director.define_job(f"j{i}", f"c{i}", [])
            own = gens[i].fresh(200) if i else shared
            stream = [(fp, 8192) for fp in (own + shared if i else own)]
            jobs.append(job)
            assignments.append((job, stream))
        cluster.backup_streams(assignments)
        cluster.run_dedup2(force_psiu=True)
        # The last completed run of job 1 references shared chunks whose
        # containers live on job 0's server node: fragmented.
        run = cluster.director.chain(jobs[1]).latest()
        return cluster, run

    def test_defragment_run_improves_locality(self):
        cluster, run = self._cluster_with_cross_stream_run()
        report = cluster.defragment_run(run.run_id, threshold=0.05)
        assert report.containers > 1
        assert report.fragmentation_before > 0.05
        assert report.triggered
        assert report.fragmentation_after < report.fragmentation_before
        assert report.fragmentation_after == 0.0

    def test_run_still_restorable_after_defrag(self):
        cluster, run = self._cluster_with_cross_stream_run()
        cluster.defragment_run(run.run_id, threshold=0.05)
        entries = cluster.director.metadata.files_for_run(run.run_id)
        server = run.server
        for entry in entries:
            for fp in entry.fingerprints[:20]:
                assert len(cluster.read_chunk(fp, via_server=server)) == 8192
