"""File-mode backup/restore through the multi-server cluster."""

import pytest

from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.workloads import FileTreeGenerator, mutate_tree


def file_cluster(w_bits=1):
    cfg = BackupServerConfig(
        index_n_bits=8, index_bucket_bytes=512, container_bytes=256 * 1024,
        filter_capacity=1 << 14, cache_capacity=1 << 18, materialize=True,
    )
    return DebarCluster(w_bits=w_bits, config=cfg)


def make_trees(tmp_path, n=2):
    trees = []
    for i in range(n):
        root = tmp_path / f"host{i}"
        FileTreeGenerator(seed=30 + i).generate(
            root, n_files=4, n_dirs=2, min_size=8 * 1024, max_size=32 * 1024
        )
        trees.append(root)
    return trees


class TestClusterFileMode:
    def test_backup_and_restore_byte_identical(self, tmp_path):
        cluster = file_cluster(w_bits=1)
        trees = make_trees(tmp_path)
        jobs = [
            cluster.director.define_job(f"host{i}", f"host{i}", [trees[i]])
            for i in range(2)
        ]
        stats = cluster.backup_datasets(jobs)
        assert stats.logical_bytes > 0
        cluster.run_dedup2(force_psiu=True)
        for i, job in enumerate(jobs):
            run = cluster.director.chain(job).latest()
            out = tmp_path / f"restore{i}"
            cluster.restore_run_files(run.run_id, out, strip_prefix=tmp_path)
            for p in sorted(x for x in trees[i].rglob("*") if x.is_file()):
                assert (out / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_incremental_second_round_filtered(self, tmp_path):
        cluster = file_cluster(w_bits=1)
        (tree,) = make_trees(tmp_path, n=1)
        job = cluster.director.define_job("host0", "host0", [tree])
        s1 = cluster.backup_datasets([job])
        cluster.run_dedup2(force_psiu=True)
        mutate_tree(tree, seed=4, new_files=1, delete_files=0)
        s2 = cluster.backup_datasets([job], timestamp=1.0)
        assert s2.transferred_bytes < s1.transferred_bytes
        cluster.run_dedup2(force_psiu=True)
        run2 = cluster.director.chain(job).latest()
        out = tmp_path / "v2"
        cluster.restore_run_files(run2.run_id, out, strip_prefix=tmp_path)
        for p in sorted(x for x in tree.rglob("*") if x.is_file()):
            assert (out / p.relative_to(tmp_path)).read_bytes() == p.read_bytes()

    def test_shared_files_deduped_across_hosts(self, tmp_path):
        # Two hosts with identical trees: stored once.
        cluster = file_cluster(w_bits=1)
        a = tmp_path / "a"
        FileTreeGenerator(seed=55).generate(a, n_files=4, n_dirs=1, min_size=8192, max_size=16384)
        b = tmp_path / "b"
        b.mkdir()
        for p in a.rglob("*.bin"):
            (b / p.name).write_bytes(p.read_bytes())
        job_a = cluster.director.define_job("ja", "ca", [a])
        job_b = cluster.director.define_job("jb", "cb", [b])
        cluster.backup_datasets([job_a])
        cluster.run_dedup2(force_psiu=True)
        after_a = cluster.physical_bytes_stored
        assert after_a > 0
        cluster.backup_datasets([job_b], timestamp=1.0)
        d2 = cluster.run_dedup2(force_psiu=True)
        # Host B's identical content added nothing physical.
        assert cluster.physical_bytes_stored == after_a
        assert d2.new_chunks_stored == 0
        assert d2.duplicate_chunks > 0

    def test_restore_unknown_run(self, tmp_path):
        cluster = file_cluster()
        with pytest.raises(KeyError):
            cluster.restore_run_files(777, tmp_path)
