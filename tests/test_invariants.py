"""Cross-module property tests for the system-level invariants in DESIGN.md."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.server import BackupServerConfig
from repro.storage import ChunkRepository
from repro.system import DebarCluster, DebarSystem
from tests.conftest import make_fps

SETTINGS = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def stream_for(indices, size=8192):
    universe = make_fps(64)
    return [(universe[i], size) for i in indices]


class TestNoDoubleStore:
    """No fingerprint is ever stored in two containers — the core dedup
    correctness invariant, including across asynchronous SIU windows."""

    @SETTINGS
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=40),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_single_server(self, sessions, siu_every):
        index = DiskIndex(8, bucket_bytes=512)
        repo = ChunkRepository()
        tpds = TwoPhaseDeduplicator(
            index, repo, filter_capacity=16, cache_capacity=1 << 16,
            container_bytes=64 * 1024, siu_every=siu_every,
        )
        for session in sessions:
            tpds.dedup1_backup(stream_for(session))
            tpds.dedup2()
        tpds.dedup2(force_siu=True)
        # Every fingerprint appears in exactly one container.
        seen = {}
        for container in repo.iter_containers():
            for fp in container.fingerprints:
                assert fp not in seen, "fingerprint stored twice"
                seen[fp] = container.container_id
        # And the index agrees with the repository.
        assert dict(tpds.index.iter_entries()) == seen

    @SETTINGS
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=30),
            min_size=2,
            max_size=4,
        )
    )
    def test_cluster(self, job_streams):
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=16, cache_capacity=1 << 16, siu_every=1,
        )
        cluster = DebarCluster(w_bits=1, config=cfg)
        jobs = [
            cluster.director.define_job(f"j{i}", f"c{i}", [])
            for i in range(len(job_streams))
        ]
        cluster.backup_streams(
            [(jobs[i], stream_for(job_streams[i])) for i in range(len(jobs))]
        )
        cluster.run_dedup2(force_psiu=True)
        seen = set()
        for container in cluster.repository.iter_containers():
            for fp in container.fingerprints:
                assert fp not in seen
                seen.add(fp)
        # Every distinct submitted fingerprint is stored exactly once.
        expected = {make_fps(64)[i] for s in job_streams for i in s}
        assert seen == expected


class TestRestoreEqualsBackup:
    @SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=50))
    def test_stream_mode_roundtrip(self, indices):
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=4096, cache_capacity=1 << 16,
        )
        system = DebarSystem(config=cfg)
        job = system.define_job("j", client="c")
        chunks = stream_for(indices)
        run, _ = system.backup_stream(job, chunks, auto_dedup2=False)
        system.run_dedup2()
        payloads = system.restore_fingerprints(run)
        assert len(payloads) == len(indices)
        assert all(len(p) == 8192 for p in payloads)
        # Identical logical chunks restore to identical payloads.
        by_fp = {}
        for (fp, _), payload in zip(chunks, payloads):
            assert by_fp.setdefault(fp, payload) == payload


class TestIndexRecovery:
    def test_rebuild_from_repository_equals_live_index(self):
        """DESIGN invariant: scanning container metadata reconstructs the
        exact index mapping (Section 4.1 recovery)."""
        index = DiskIndex(8, bucket_bytes=512)
        repo = ChunkRepository()
        tpds = TwoPhaseDeduplicator(
            index, repo, filter_capacity=64, cache_capacity=1 << 16,
            container_bytes=64 * 1024,
        )
        for start in (0, 30, 60):
            tpds.dedup1_backup([(fp, 8192) for fp in make_fps(50, start=start)])
            tpds.dedup2()
        rebuilt = DiskIndex.rebuild_from_entries(
            repo.iter_index_entries(), tpds.index.n_bits, bucket_bytes=512
        )
        assert dict(rebuilt.iter_entries()) == dict(tpds.index.iter_entries())


class TestAccountingConsistency:
    @SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60),
    )
    def test_byte_conservation(self, first, second):
        """logical = transferred + filtered; stored <= transferred."""
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=4096, cache_capacity=1 << 16,
        )
        system = DebarSystem(config=cfg)
        job = system.define_job("j", client="c")
        for indices in (first, second):
            _, d1 = system.backup_stream(job, stream_for(indices), auto_dedup2=False)
            assert d1.logical_bytes == d1.transferred_bytes + d1.filtered_bytes
            assert d1.logical_chunks == d1.transferred_chunks + d1.filtered_chunks
            d2 = system.run_dedup2()
            assert d2.new_bytes_stored <= d1.transferred_bytes
        distinct = len({make_fps(64)[i] for i in first + second})
        assert system.physical_bytes_stored == distinct * 8192

    def test_simulated_time_monotone_through_workflow(self):
        cfg = BackupServerConfig(
            index_n_bits=8, index_bucket_bytes=512, container_bytes=64 * 1024,
            filter_capacity=64, cache_capacity=1 << 16,
        )
        system = DebarSystem(config=cfg)
        job = system.define_job("j", client="c")
        times = [system.elapsed]
        for start in (0, 40):
            system.backup_stream(
                job, [(fp, 8192) for fp in make_fps(40, start=start)], auto_dedup2=False
            )
            times.append(system.elapsed)
            system.run_dedup2()
            times.append(system.elapsed)
        assert times == sorted(times)
        assert times[-1] > times[0]
