"""repro.replication: placement ring, async shipment, failover, rebuild.

The cluster tests run a real replica daemon on a loopback socket (node
"b") beside an in-process origin vault (node "a") whose
:class:`~repro.replication.replicator.Replicator` ships sealed
containers over real frames.  Covers the PR's acceptance path: an RF=2
cluster survives the loss of either node — restores stay byte-identical
via failover reads, and ``rebuild_node`` reconstructs the lost vault to
a state that passes a deep audit and a clean scrub.
"""

import json
import random
import threading
import time

import pytest

from repro.durability.scrubber import Scrubber
from repro.net import messages as m
from repro.net.client import NetClient, RemoteError, RetryPolicy
from repro.replication.failover import FailoverChunkReader, ReplicaReader
from repro.replication.rebuild import RebuildError, rebuild_node
from repro.replication.replicator import Replicator, peers_from_state
from repro.replication.ring import PlacementRing
from repro.replication.store import ReplicaStore, ReplicaStoreError
from repro.net.server import serve_vault
from repro.storage.container import ContainerWriter
from repro.system.vault import DebarVault
from repro.telemetry.registry import MetricsRegistry

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, timeout=2.0)


def write_dataset(root, n_files=4, seed=11):
    rng = random.Random(seed)
    data = root / "data"
    data.mkdir(exist_ok=True)
    for i in range(n_files):
        blob = rng.randbytes(2500)
        (data / f"f{i}.bin").write_bytes(blob + blob + bytes([i]) * 400)
    return data


def make_image(container_id=7, n_chunks=3, seed=3, capacity=1 << 20):
    """A serialized, materialized container image plus its chunks."""
    from repro.core.fingerprint import fingerprint as sha1

    rng = random.Random(seed)
    writer = ContainerWriter(capacity, materialize=True)
    chunks = {}
    for _ in range(n_chunks):
        data = rng.randbytes(600)
        fp = sha1(data)
        writer.add(fp, data=data)
        chunks[fp] = data
    return writer.seal(container_id).serialize(), chunks


def rot_payload(image, chunks):
    """Flip one byte inside a stored chunk payload of a container image."""
    payload = next(iter(chunks.values()))
    at = image.index(payload)
    bad = bytearray(image)
    bad[at] ^= 0xFF
    return bytes(bad)


def start_daemon(vault, node_name):
    server = serve_vault(vault, node_name=node_name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def cluster(tmp_path):
    """Origin vault "a" (in-process, replicating) + replica daemon "b"."""
    vault_b = DebarVault(tmp_path / "b")
    server_b = start_daemon(vault_b, "b")
    registry = MetricsRegistry()
    vault_a = DebarVault(tmp_path / "a", telemetry=registry)
    replicator = Replicator(
        vault_a,
        "a",
        {"b": (server_b.host, server_b.port)},
        replication_factor=2,
        retry=FAST_RETRY,
        registry=registry,
    )
    vault_a.replicator = replicator
    try:
        yield vault_a, replicator, server_b, vault_b, registry
    finally:
        replicator.close(drain=False, timeout=1.0)
        server_b.shutdown()
        server_b.server_close()
        vault_b.close()
        vault_a.close()


def restored_bytes(dest, name):
    return next(p for p in dest.rglob(name)).read_bytes()


class TestPlacementRing:
    def test_deterministic_and_distinct(self):
        a = PlacementRing(["n1", "n2", "n3", "n4"], replication_factor=3)
        b = PlacementRing(["n1", "n2", "n3", "n4"], replication_factor=3)
        for cid in range(50):
            replicas = a.replicas_for_container("n1", cid)
            assert replicas == b.replicas_for_container("n1", cid)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == "n1"  # origin holds the primary copy
            assert a.peers_for_container("n1", cid) == replicas[1:]

    def test_index_prefix_partitions(self):
        ring = PlacementRing(["x", "y", "z"], replication_factor=2)
        for prefix in range(16):
            replicas = ring.replicas_for_prefix(prefix, 4)
            assert len(replicas) == 2 and len(set(replicas)) == 2
        with pytest.raises(ValueError):
            ring.replicas_for_prefix(16, 4)

    def test_rf_capped_at_cluster_size(self):
        ring = PlacementRing(["a", "b"], replication_factor=5)
        assert ring.replication_factor == 2

    def test_rejects_empty_and_bad_rf(self):
        with pytest.raises(ValueError):
            PlacementRing([])
        with pytest.raises(ValueError):
            PlacementRing(["a"], replication_factor=0)

    def test_balance_within_tolerance(self):
        nodes = [f"n{i}" for i in range(4)]
        ring = PlacementRing(nodes)
        share = ring.share([f"ctr:o:{i}" for i in range(2000)])
        for count in share.values():
            # 64 vnodes keeps a 4-node ring within ~2x of the fair share.
            assert 2000 / 4 / 2 < count < 2000 / 4 * 2

    def test_adding_node_moves_bounded_share(self):
        keys = [f"ctr:o:{i}" for i in range(1000)]
        before = PlacementRing(["a", "b", "c"])
        after = PlacementRing(["a", "b", "c", "d"])
        moved = sum(
            1 for k in keys if before.replicas(k, rf=1) != after.replicas(k, rf=1)
        )
        # Consistent hashing: ~1/4 of keys re-home, not a full reshuffle.
        assert moved < 1000 / 2


class TestReplicaStore:
    def test_put_verifies_and_is_idempotent(self, tmp_path):
        store = ReplicaStore(tmp_path / "replicas")
        image, chunks = make_image()
        assert store.put("a", 7, image) is True
        assert store.put("a", 7, image) is False  # duplicate: no-op ack
        assert store.container_ids("a") == [7]
        assert store.fetch_image("a", 7) == image
        for fp, data in chunks.items():
            assert store.read_chunk(fp) == data

    def test_put_rejects_corrupt_image(self, tmp_path):
        store = ReplicaStore(tmp_path / "replicas")
        image, chunks = make_image()
        with pytest.raises(Exception):
            store.put("a", 7, rot_payload(image, chunks))
        assert store.container_ids("a") == []

    def test_rejects_path_escaping_origins(self, tmp_path):
        store = ReplicaStore(tmp_path / "replicas")
        image, _ = make_image()
        for origin in ("", "..", "a/b", "a\\b", "a\0b"):
            with pytest.raises(ReplicaStoreError):
                store.put(origin, 7, image)

    def test_catalog_mirror_and_status(self, tmp_path):
        store = ReplicaStore(tmp_path / "replicas")
        image, _ = make_image(container_id=3)
        store.put("a", 3, image)
        store.put_catalog("a", {"version": 1, "runs": [{"run_id": 1}]})
        assert store.catalog("a")["runs"] == [{"run_id": 1}]
        status = store.status()
        assert status["a"]["containers"] == 1
        assert status["a"]["container_ids"] == [3]
        assert status["a"]["catalog_runs"] == 1


class TestAsyncReplication:
    def test_backup_ships_containers_and_catalog(self, cluster, tmp_path):
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        held = server_b.replica_store
        assert held.container_ids("a") == vault_a.repository.container_ids()
        for cid in held.container_ids("a"):
            assert held.fetch_image("a", cid) == vault_a.fs.read_file(
                vault_a.repository.path_for(cid)
            )
        assert held.catalog("a")["runs"][0]["run_id"] == 1

    def test_push_is_idempotent_over_the_wire(self, cluster, tmp_path):
        _, _, server_b, _, _ = cluster
        image, _ = make_image(container_id=9)
        with NetClient(server_b.host, server_b.port, retry=FAST_RETRY) as net:
            envelope = {"origin": "elsewhere", "container_id": 9}
            first = m.decode_json(
                net.call(m.CONTAINER_PUSH, m.encode_container_image(envelope, image))
            )
            second = m.decode_json(
                net.call(m.CONTAINER_PUSH, m.encode_container_image(envelope, image))
            )
        assert first["stored"] is True
        assert second["stored"] is False

    def test_corrupt_push_refused(self, cluster):
        _, _, server_b, _, _ = cluster
        image, chunks = make_image(container_id=4)
        with NetClient(server_b.host, server_b.port, retry=FAST_RETRY) as net:
            with pytest.raises(RemoteError):
                net.call(
                    m.CONTAINER_PUSH,
                    m.encode_container_image(
                        {"origin": "elsewhere", "container_id": 4},
                        rot_payload(image, chunks),
                    ),
                )
        assert server_b.replica_store.container_ids("elsewhere") == []

    def test_stalled_queue_backup_still_completes(self, cluster, tmp_path):
        # The acceptance criterion's mechanism: a stalled queue must not
        # block the inline backup path, and repl.lag must expose the stall.
        vault_a, replicator, server_b, _, registry = cluster
        replicator.pause()
        data = write_dataset(tmp_path)
        run = vault_a.backup("j", [str(data)])
        assert run.run_id == 1  # backup committed with shipment stalled
        assert replicator.lag() > 0
        assert registry.value("repl.lag") > 0
        assert server_b.replica_store.container_ids("a") == []
        replicator.resume()
        assert replicator.drain(timeout=10.0)
        assert registry.value("repl.lag") == 0
        assert server_b.replica_store.container_ids("a") == (
            vault_a.repository.container_ids()
        )
        shipped = registry.total("repl.containers_shipped")
        assert shipped == len(vault_a.repository.container_ids())

    def test_state_survives_restart_without_repush(self, cluster, tmp_path):
        vault_a, replicator, server_b, _, registry = cluster
        data = write_dataset(tmp_path)
        vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        shipped_before = registry.total("repl.containers_shipped")
        replicator.close(drain=True, timeout=5.0)
        # A fresh replicator over the same vault re-reads replication.json:
        # everything is acked, so sync() enqueues nothing.
        fresh = Replicator(
            vault_a,
            "a",
            {"b": (server_b.host, server_b.port)},
            retry=FAST_RETRY,
            registry=registry,
        )
        try:
            assert fresh.sync() == 0
            assert fresh.drain(timeout=5.0)
        finally:
            fresh.close(drain=False)
        assert registry.total("repl.containers_shipped") == shipped_before
        peers = peers_from_state(vault_a.root)
        assert peers == {"b": (server_b.host, server_b.port)}

    def test_repl_status_rpc(self, cluster, tmp_path):
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        with NetClient(server_b.host, server_b.port, retry=FAST_RETRY) as net:
            status = net.call_json(m.REPL_STATUS, {})
        assert status["node"] == "b"
        assert status["replicas"]["a"]["containers"] == len(
            vault_a.repository.container_ids()
        )
        assert replicator.status()["peers"]["b"]["acked"] == len(
            vault_a.repository.container_ids()
        )


class TestFailoverReads:
    def test_replica_daemon_serves_failover_chunk_reads(self, cluster, tmp_path):
        # Node B never stored these chunks itself; CHUNK_READ must fall
        # back to its replica store.
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        run = vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        reader = ReplicaReader(server_b.host, server_b.port, name="b")
        try:
            for entry in run.files:
                for fp in entry.fingerprints:
                    assert reader.read_chunk(fp) == vault_a.chunk_store.read_chunk(fp)
        finally:
            reader.close()

    def test_failover_reader_falls_through_dead_primary(self, cluster, tmp_path):
        vault_a, replicator, server_b, _, registry = cluster
        data = write_dataset(tmp_path)
        run = vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)

        class DeadPrimary:
            def read_chunk(self, fp):
                raise OSError("node a is gone")

        reader = FailoverChunkReader(
            [
                ("a", DeadPrimary()),
                ("b", ReplicaReader(server_b.host, server_b.port, name="b")),
            ],
            registry=registry,
        )
        try:
            fp = run.files[0].fingerprints[0]
            assert reader.read_chunk(fp) == vault_a.chunk_store.read_chunk(fp)
            assert reader.last_source == "b"
            assert registry.value("repl.failovers", missed="a", served="b") == 1
        finally:
            reader.close()

    def test_restore_byte_identical_with_primary_missing_chunks(
        self, cluster, tmp_path
    ):
        # Degraded (not dead) primary: one of A's containers is lost on
        # disk; a failover restore through B must still be byte-identical.
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        run = vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        victim = vault_a.repository.container_ids()[0]
        vault_a.fs.unlink(vault_a.repository.path_for(victim))
        vault_a.repository.invalidate(victim)
        reader = FailoverChunkReader(
            [
                ("a", vault_a.chunk_store),
                ("b", ReplicaReader(server_b.host, server_b.port, name="b")),
            ]
        )
        dest = tmp_path / "restore"
        try:
            reader.plan([fp for e in run.files for fp in e.fingerprints])
            paths = vault_a.engine.restore_run(run.files, reader, dest, "/")
        finally:
            reader.close()
        assert len(paths) == 4
        for i in range(4):
            assert restored_bytes(dest, f"f{i}.bin") == (
                data / f"f{i}.bin"
            ).read_bytes()

    def test_all_sources_failing_raises_keyerror(self):
        class Dead:
            def read_chunk(self, fp):
                raise KeyError("nope")

        reader = FailoverChunkReader([("x", Dead()), ("y", Dead())])
        with pytest.raises(KeyError):
            reader.read_chunk(b"\x00" * 20)


class TestScrubHealsFromReplicas:
    def test_repair_report_names_the_healing_peer(self, cluster, tmp_path):
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        # Rot one payload byte in one of A's containers; empty the chunk
        # log's in-memory records so the peer is the only intact source.
        vault_a.tpds.chunk_log._records = []
        cid = vault_a.repository.container_ids()[0]
        container = vault_a.repository.fetch(cid)
        payload = container.get(container.records[0].fingerprint)
        path = vault_a.repository.path_for(cid)
        blob = bytearray(vault_a.fs.read_file(path))
        at = bytes(blob).index(payload)
        blob[at] ^= 0xFF
        vault_a.fs.write_file(path, bytes(blob))
        vault_a.repository.invalidate(cid)
        peer = ReplicaReader(server_b.host, server_b.port, name="b")
        try:
            report = Scrubber(vault_a, peers=[peer]).run(repair=True)
        finally:
            peer.close()
        assert report.corrupt_found >= 1
        assert report.unrepaired == 0
        healed = [f for f in report.findings if f.repaired]
        assert healed and all("from b" in f.action for f in healed)


class TestNodeRebuild:
    def _populate_and_lose_a(self, cluster, tmp_path, runs=2):
        vault_a, replicator, server_b, _, _ = cluster
        data = write_dataset(tmp_path)
        originals = {}
        for r in range(runs):
            # Mutate one file between runs so the chain has real deltas.
            (data / "f0.bin").write_bytes(
                random.Random(100 + r).randbytes(3000)
            )
            vault_a.backup("j", [str(data)])
            originals[r + 1] = {
                p.name: p.read_bytes() for p in data.iterdir()
            }
        assert replicator.drain(timeout=10.0)
        replicator.close(drain=True, timeout=5.0)
        vault_a.replicator = None
        return vault_a, server_b, originals

    def test_rebuild_passes_audit_and_scrub(self, cluster, tmp_path):
        vault_a, server_b, originals = self._populate_and_lose_a(
            cluster, tmp_path
        )
        expected_cids = vault_a.repository.container_ids()
        report = rebuild_node(
            "a",
            tmp_path / "a-rebuilt",
            {"b": (server_b.host, server_b.port)},
            retry=FAST_RETRY,
        )
        assert report.audit_ok is True
        assert report.containers_missing == []
        assert report.containers_recovered == len(expected_cids)
        assert report.chunks_verified > 0
        assert sorted(report.sources) == expected_cids
        assert set(report.sources.values()) == {"b"}
        with DebarVault(tmp_path / "a-rebuilt") as rebuilt:
            # Byte-identical container images, fingerprint-verified.
            for cid in expected_cids:
                assert rebuilt.fs.read_file(
                    rebuilt.repository.path_for(cid)
                ) == vault_a.fs.read_file(vault_a.repository.path_for(cid))
            # Every prior run restores byte-identically.
            for run_id, files in originals.items():
                dest = tmp_path / f"rebuilt-restore-{run_id}"
                rebuilt.restore(run_id, dest)
                for name, payload in files.items():
                    assert restored_bytes(dest, name) == payload
            # Full scrub: zero unrepaired records.
            scrub = Scrubber(rebuilt).run(repair=True)
            assert scrub.unrepaired == 0
            assert scrub.clean

    def test_rebuild_refuses_existing_vault(self, cluster, tmp_path):
        vault_a, server_b, _ = self._populate_and_lose_a(cluster, tmp_path, runs=1)
        with pytest.raises(RebuildError):
            rebuild_node(
                "a", vault_a.root, {"b": (server_b.host, server_b.port)}
            )

    def test_rebuild_without_catalog_holder_fails(self, cluster, tmp_path):
        _, _, server_b, _, _ = cluster
        with pytest.raises(RebuildError):
            rebuild_node(
                "never-existed",
                tmp_path / "nowhere",
                {"b": (server_b.host, server_b.port)},
                retry=FAST_RETRY,
            )


class TestReplStatusCli:
    def test_offline_repl_status(self, cluster, tmp_path, capsys):
        from repro.cli import main

        vault_a, replicator, _, _, _ = cluster
        data = write_dataset(tmp_path)
        vault_a.backup("j", [str(data)])
        assert replicator.drain(timeout=10.0)
        out_path = tmp_path / "status.json"
        code = main([
            "repl-status", "--vault", str(vault_a.root), "--json", str(out_path)
        ])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["node"] == "a"
        assert doc["outbound"]["acked"]["b"] == vault_a.repository.container_ids()
