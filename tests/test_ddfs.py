"""Tests for the DDFS baseline server."""

import pytest

from repro.baselines.ddfs import DdfsServer
from repro.core.disk_index import DiskIndex
from repro.storage import ChunkRepository
from tests.conftest import make_fps


def make_ddfs(write_buffer_capacity=1 << 16, lpc_containers=8, bloom_bits=1 << 18):
    index = DiskIndex(8, bucket_bytes=512)
    repo = ChunkRepository()
    server = DdfsServer(
        index,
        repo,
        bloom_bits=bloom_bits,
        lpc_containers=lpc_containers,
        write_buffer_capacity=write_buffer_capacity,
        container_bytes=64 * 1024,
    )
    return server, repo


def stream(fps, size=8192):
    return [(fp, size) for fp in fps]


class TestInlineDedup:
    def test_new_data_stored(self):
        server, repo = make_ddfs()
        fps = make_fps(100)
        stats = server.backup_stream(stream(fps))
        server.finish_backup()
        assert stats.new_chunks == 100
        assert stats.bloom_negatives == 100
        assert repo.stored_chunk_bytes == 100 * 8192
        assert len(server.index) == 100

    def test_repeat_stream_deduplicated(self):
        server, repo = make_ddfs()
        fps = make_fps(100)
        server.backup_stream(stream(fps))
        server.finish_backup()
        stats = server.backup_stream(stream(fps))
        server.finish_backup()
        assert stats.duplicate_chunks == 100
        assert stats.new_chunks == 0
        assert repo.stored_chunk_bytes == 100 * 8192

    def test_lpc_absorbs_most_lookups_on_sequential_dup_stream(self):
        # SISL locality: one index lookup prefetches a whole container, so
        # re-reading the stream costs at most one lookup per container
        # (~7 chunks of 8 KB per 64 KB container here).
        server, repo = make_ddfs()
        fps = make_fps(200)
        server.backup_stream(stream(fps))
        server.finish_backup()
        stats = server.backup_stream(stream(fps))
        assert stats.index_lookups <= len(repo)
        assert stats.lpc_hits >= 200 - len(repo)
        assert stats.lpc_hits + stats.index_lookups == 200

    def test_compression_ratio(self):
        # Within one stream, duplicates of *sealed* containers dedup via the
        # LPC; only chunks still in the open container slip through (the
        # asynchronous-update window), so the ratio is just under 2.
        server, _ = make_ddfs()
        fps = make_fps(50)
        stats = server.backup_stream(stream(fps + fps))
        assert stats.compression_ratio == pytest.approx(2.0, rel=0.1)
        assert stats.duplicate_stores <= 7  # at most one open container's worth

    def test_all_bytes_cross_network(self):
        # DDFS dedups server-side: elapsed >= logical bytes / NIC rate.
        server, _ = make_ddfs()
        fps = make_fps(100)
        stats = server.backup_stream(stream(fps))
        net_floor = stats.logical_bytes / server.rig.network.bandwidth
        assert stats.elapsed >= net_floor

    def test_throughput_positive(self):
        server, _ = make_ddfs()
        stats = server.backup_stream(stream(make_fps(10)))
        assert 0 < stats.throughput < float("inf")


class TestWriteBuffer:
    def test_flush_on_capacity(self):
        server, _ = make_ddfs(write_buffer_capacity=20)
        fps = make_fps(200)
        stats = server.backup_stream(stream(fps))
        assert stats.buffer_flushes >= 1
        # Flushed fingerprints are in the disk index already.
        assert len(server.index) >= 20

    def test_finish_flushes_remainder(self):
        server, _ = make_ddfs()
        fps = make_fps(30)
        server.backup_stream(stream(fps))
        assert len(server.index) < 30  # still buffered
        server.finish_backup()
        assert len(server.index) == 30

    def test_flush_pause_costs_time(self):
        fps = make_fps(300)
        fast, _ = make_ddfs(write_buffer_capacity=1 << 16)
        slow, _ = make_ddfs(write_buffer_capacity=16)
        t_fast = fast.backup_stream(stream(fps)).elapsed
        t_slow = slow.backup_stream(stream(fps)).elapsed
        assert t_slow > t_fast  # the paper's pause-to-flush penalty

    def test_duplicate_store_in_async_window(self):
        """A fingerprint recurring before its flush, after LPC eviction,
        is stored twice — the DDFS weakness the checking file fixes."""
        server, repo = make_ddfs(write_buffer_capacity=1 << 16, lpc_containers=1)
        a = make_fps(40)  # fills several containers
        b = make_fps(40, start=100)
        stats = server.backup_stream(stream(a + b + a))
        # Early 'a' containers were evicted from the 1-container LPC and
        # their fingerprints are still unflushed: re-stored.
        assert stats.duplicate_stores > 0
        server.finish_backup()
        assert repo.stored_chunk_bytes > 80 * 8192


class TestRestore:
    def test_read_chunk_roundtrip(self):
        server, _ = make_ddfs()
        fps = make_fps(20)
        payloads = [bytes([i]) * 100 for i in range(20)]
        server.backup_stream([(fp, len(p), p) for fp, p in zip(fps, payloads)])
        server.finish_backup()
        # Materialized payloads require materialize=True; rebuild for that.
        index = DiskIndex(8, bucket_bytes=512)
        repo = ChunkRepository()
        server2 = DdfsServer(index, repo, bloom_bits=1 << 18, container_bytes=64 * 1024,
                             materialize=True, lpc_containers=4)
        server2.backup_stream([(fp, len(p), p) for fp, p in zip(fps, payloads)])
        server2.finish_backup()
        for fp, p in zip(fps, payloads):
            assert server2.read_chunk(fp) == p

    def test_read_missing_raises(self):
        server, _ = make_ddfs()
        with pytest.raises(KeyError):
            server.read_chunk(make_fps(1)[0])
