"""The cold-tier drill: hot→cold migration, byte-identical restores via
batched range GETs, ranged scrub + repair of cold containers, cluster
paths (serve/rebuild) over cold origins, failover when the cold backend
is down, and the migrate/tier-status CLI."""

import json
import threading

import pytest

from repro.backend.lifecycle import LifecycleManager, LifecyclePolicy
from repro.backend.objectstore import BackendFaultRule
from repro.durability.fsshim import flip_byte_on_disk
from repro.durability.scrubber import Scrubber
from repro.net import messages as m
from repro.net.client import NetClient, RemoteChunkReader, RetryPolicy
from repro.net.server import serve_vault
from repro.replication.failover import FailoverChunkReader
from repro.replication.rebuild import rebuild_node
from repro.replication.replicator import Replicator
from repro.storage.container import FRAMED_META_FIXED, Container
from repro.system import DebarVault
from repro.telemetry.registry import MetricsRegistry
from repro.workloads import FileTreeGenerator

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, timeout=2.0)

#: Migrate regardless of age — most drills want everything cold.
MIGRATE_ALL = LifecyclePolicy(min_age_runs=0, min_idle_runs=0)


def make_tree(root, seed=21, n_files=5):
    FileTreeGenerator(seed=seed).generate(
        root, n_files=n_files, n_dirs=2, min_size=8 * 1024, max_size=32 * 1024
    )
    return root


def open_vault(tmp_path, name="vault", **kw):
    return DebarVault(tmp_path / name, container_bytes=64 * 1024, **kw)


def read_tree(root):
    return {
        p.relative_to(root): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def migrate_all(vault):
    report = LifecycleManager(vault, MIGRATE_ALL).migrate()
    assert not report.failed
    return report


def cold_bucket(vault):
    return vault.root / "cold"


def cold_object(vault, cid):
    return cold_bucket(vault) / f"{cid:012x}.ctr"


def run_fingerprints(vault, run_id):
    payload = next(
        r for r in vault._catalog["runs"] if r["run_id"] == run_id
    )
    run = vault._load_run(payload)
    return [fp for entry in run.files for fp in entry.fingerprints]


def flip_cold_byte(vault, which=0, offset_fn=None):
    """Flip one byte of a cold object; default targets the data section.

    Returns ``(cid, fingerprint, intact_payload)`` — the payload as it was
    before the flip, so repair tests can seed the chunk log with the
    ``<F, D(F)>`` group an interrupted run would have left there."""
    victim = sorted(cold_bucket(vault).glob("*.ctr"))[which]
    cid = int(victim.stem, 16)
    container = Container.deserialize(cid, victim.read_bytes())
    rec = container.records[0]
    payload = bytes(container.data[rec.offset : rec.offset + rec.size])
    if offset_fn is None:
        offset = container.data_start + rec.offset + rec.size // 2
    else:
        offset = offset_fn(container)
    flip_byte_on_disk(victim, offset, 0xFF)
    vault.repository.invalidate(cid)
    return cid, rec.fingerprint, payload


def start_daemon(vault, node_name):
    server = serve_vault(vault, node_name=node_name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


@pytest.fixture()
def cold_vault(tmp_path):
    """A vault whose every container has been migrated to the cold tier."""
    src = make_tree(tmp_path / "src")
    vault = open_vault(tmp_path, telemetry=MetricsRegistry())
    run = vault.backup("docs", [src])
    vault.enable_cold_tier()
    report = migrate_all(vault)
    assert report.migrated > 0
    try:
        yield vault, run, read_tree(src)
    finally:
        try:
            vault.close()
        except ValueError:
            pass  # the test already closed it


class TestMigration:
    def test_migrate_moves_containers_cold(self, cold_vault):
        vault, _, _ = cold_vault
        repo = vault.repository
        cids = repo.container_ids()
        assert cids
        for cid in cids:
            assert repo.tier_of(cid) == "cold"
            assert not (vault.root / "containers" / f"{cid:012x}.ctr").exists()
            assert cold_object(vault, cid).exists()

    def test_migrate_is_idempotent(self, cold_vault):
        vault, _, _ = cold_vault
        again = migrate_all(vault)
        assert again.migrated == 0 and again.bytes_moved == 0
        assert again.already_cold == len(vault.repository.container_ids())

    def test_hot_copy_wins_when_both_exist(self, cold_vault):
        # A crash between put and unlink leaves both copies; the hot file
        # is authoritative until the next migration pass finishes the move.
        vault, _, _ = cold_vault
        repo = vault.repository
        cid = repo.container_ids()[0]
        hot_path = vault.root / "containers" / f"{cid:012x}.ctr"
        hot_path.write_bytes(cold_object(vault, cid).read_bytes())
        assert repo.tier_of(cid) == "hot"
        assert migrate_all(vault).migrated == 1  # pass completes the move
        assert repo.tier_of(cid) == "cold"

    def test_policy_gates_on_age(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        vault.enable_cold_tier()
        # One run: every container was referenced by the newest run, so
        # nothing has aged past the default min_age_runs=1 yet.
        strict = LifecycleManager(vault, LifecyclePolicy()).migrate()
        assert strict.migrated == 0 and strict.skipped > 0
        vault.backup("docs2", [make_tree(tmp_path / "src2", seed=99)])
        after = LifecycleManager(vault, LifecyclePolicy()).migrate()
        assert after.migrated > 0  # run-1-only containers have aged out
        vault.close()

    def test_dry_run_moves_nothing(self, tmp_path):
        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        vault.enable_cold_tier()
        report = LifecycleManager(vault, MIGRATE_ALL).migrate(dry_run=True)
        assert report.migrated > 0  # would-migrate count
        assert all(
            vault.repository.tier_of(cid) == "hot"
            for cid in vault.repository.container_ids()
        )
        vault.close()

    def test_reopen_reattaches_cold_tier(self, cold_vault, tmp_path):
        vault, run, before = cold_vault
        root = vault.root
        vault.close()
        reopened = DebarVault(root)
        try:
            assert reopened.repository.cold is not None
            assert all(
                reopened.repository.tier_of(cid) == "cold"
                for cid in reopened.repository.container_ids()
            )
            dest = tmp_path / "re-out"
            reopened.restore(run.run_id, dest, strip_prefix=tmp_path)
            assert read_tree(dest / "src") == before
            assert reopened.stats()["containers_cold"] == len(
                reopened.repository.container_ids()
            )
        finally:
            reopened.close()


class TestColdRestore:
    def test_restore_is_byte_identical(self, cold_vault, tmp_path):
        vault, run, before = cold_vault
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before
        # The restore went through the planner: batched multi-range GETs,
        # no whole-object downloads.
        assert vault.telemetry.value("storage.planner_cold_chunks") > 0
        assert vault.telemetry.value("storage.batched_gets", backend="object") > 0

    def test_batching_cuts_request_count(self, cold_vault):
        vault, run, _ = cold_vault
        fps = run_fingerprints(vault, run.run_id)
        backend = vault.repository.cold

        def read_all(batch):
            reader = vault.cold_reader(fps, batch=batch)
            before = backend.requests_issued
            blobs = [reader.read_chunk(fp) for fp in fps]
            return blobs, backend.requests_issued - before

        # Batched first: it pays any cold metadata fetches, the unbatched
        # pass then rides the warm cache — a conservative comparison.
        batched_blobs, batched = read_all(batch=True)
        unbatched_blobs, unbatched = read_all(batch=False)
        assert batched_blobs == unbatched_blobs
        assert unbatched >= 2 * batched

    def test_meta_cache_absorbs_repeat_meta_reads(self, cold_vault, tmp_path):
        vault, run, _ = cold_vault
        vault.restore(run.run_id, tmp_path / "o1", strip_prefix=tmp_path)
        vault.restore(run.run_id, tmp_path / "o2", strip_prefix=tmp_path)
        cache = vault.repository.meta_cache
        assert cache.hits > 0

    def test_deep_verify_reads_cold_tier(self, cold_vault):
        vault, _, _ = cold_vault
        counters = vault.verify(deep=True)
        assert counters["fingerprints"] > 0

    def test_verify_cold_payloads_skips_padding(self, cold_vault):
        vault, _, _ = cold_vault
        repo = vault.repository
        for cid in repo.container_ids():
            faults, fetched = repo.verify_cold_payloads(cid)
            assert faults == []
            assert 0 < fetched < cold_object(vault, cid).stat().st_size


class TestColdScrub:
    def test_scrub_detects_cold_bit_flip(self, cold_vault):
        vault, _, _ = cold_vault
        cid, fp, _payload = flip_cold_byte(vault)
        report = Scrubber(vault).run()
        assert report.corrupt_found == 1 and report.unrepaired == 1
        finding = report.findings[0]
        assert finding.artifact == "container"
        assert finding.container_id == cid
        assert finding.fingerprint == fp

    def test_scrub_repairs_cold_from_chunk_log(self, cold_vault, tmp_path):
        vault, run, before = cold_vault
        cid, fp, payload = flip_cold_byte(vault)
        # As if rot struck between dedup-1 and the log's clear: the chunk
        # log still holds the <F, D(F)> group.
        vault.tpds.chunk_log.append(fp, data=payload)
        report = Scrubber(vault).run(repair=True)
        assert report.repaired == 1 and report.unrepaired == 0
        # Healed in place on the cold tier — the repair must not resurrect
        # a hot copy.
        assert vault.repository.tier_of(cid) == "cold"
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before

    def test_scrub_repairs_cold_from_peer(self, cold_vault, tmp_path):
        vault, run, before = cold_vault
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [tmp_path / "src"])
        cid, _fp, _payload = flip_cold_byte(vault)
        report = Scrubber(vault, peers=[replica.chunk_store]).run(repair=True)
        assert report.repaired == 1 and report.unrepaired == 0
        assert vault.repository.tier_of(cid) == "cold"
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before
        replica.close()

    def test_unparseable_cold_container_quarantined_and_rebuilt(
        self, cold_vault, tmp_path
    ):
        vault, run, before = cold_vault
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [tmp_path / "src"])
        # Damage the metadata section: the meta CRC no longer holds, the
        # container cannot even be parsed from the cold tier.  Rebuilding
        # it needs every payload — the replica peer supplies them.
        cid, _fp, _payload = flip_cold_byte(
            vault, offset_fn=lambda c: FRAMED_META_FIXED + 4
        )
        report = Scrubber(vault, peers=[replica.chunk_store]).run(repair=True)
        assert report.corrupt_found == 1 and report.repaired == 1
        # Forensics copy parked in the bucket, healed object back in place
        # on the same tier.
        qkey = cold_bucket(vault) / f"{cid:012x}.ctr.quarantine"
        assert qkey.exists()
        assert vault.repository.tier_of(cid) == "cold"
        dest = tmp_path / "out"
        vault.restore(run.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src") == before
        replica.close()

    def test_scrub_exit_code_via_cli(self, cold_vault, tmp_path, capsys):
        # Separate CLI invocations: detect (exit 3), then repair from a
        # replica daemon (exit 0) — the chunk log does not survive a
        # reopen, so the cross-process repair source is a peer.
        from repro.cli import main

        vault, _, _ = cold_vault
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [tmp_path / "src"])
        server = start_daemon(replica, "r")
        flip_cold_byte(vault)
        vault.close()
        try:
            assert main(["scrub", "--vault", str(vault.root)]) == 3
            assert main([
                "scrub", "--vault", str(vault.root), "--repair",
                "--peer", f"{server.host}:{server.port}",
            ]) == 0
        finally:
            server.shutdown()
            server.server_close()
            replica.close()


class TestColdGc:
    def test_gc_collects_cold_containers(self, tmp_path):
        vault = open_vault(tmp_path)
        src1 = make_tree(tmp_path / "src1", seed=1)
        src2 = make_tree(tmp_path / "src2", seed=2)
        run1 = vault.backup("j1", [src1])
        run2 = vault.backup("j2", [src2])
        before2 = read_tree(src2)
        vault.enable_cold_tier()
        migrate_all(vault)
        vault.forget(run1.run_id)
        vault.gc(rewrite_threshold=1.0)
        dest = tmp_path / "out"
        vault.restore(run2.run_id, dest, strip_prefix=tmp_path)
        assert read_tree(dest / "src2") == before2
        assert vault.verify(deep=True)["fingerprints"] > 0
        # No unreferenced cold object may linger after the sweep.
        live = set(vault.repository.container_ids())
        on_bucket = {
            int(p.stem, 16) for p in cold_bucket(vault).glob("*.ctr")
        }
        assert on_bucket <= live
        vault.close()


class TestColdCluster:
    def test_cold_origin_serves_container_fetch(self, cold_vault):
        vault, _, _ = cold_vault
        cid = vault.repository.container_ids()[0]
        expected = vault.repository.read_image(cid)
        server = start_daemon(vault, "a")
        client = NetClient(
            server.host, server.port, client_name="t", retry=FAST_RETRY
        )
        try:
            payload = client.call(
                m.CONTAINER_FETCH,
                m.encode_json({"origin": "a", "container_id": cid}),
            )
            _, image = m.decode_container_image(payload)
            assert image == expected
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_remote_restore_from_cold_daemon(self, cold_vault, tmp_path):
        vault, run, _ = cold_vault
        fps = run_fingerprints(vault, run.run_id)
        expected = [vault.cold_reader(fps).read_chunk(fp) for fp in fps]
        server = start_daemon(vault, "a")
        client = NetClient(
            server.host, server.port, client_name="t", retry=FAST_RETRY
        )
        try:
            reader = RemoteChunkReader(client)
            reader.plan(fps)
            assert [reader.read_chunk(fp) for fp in fps] == expected
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_rebuild_after_origin_went_cold(self, tmp_path):
        # a replicates hot containers to daemon b, then migrates cold and
        # "dies"; the rebuilt vault must match what the cold tier holds.
        src = make_tree(tmp_path / "src")
        before = read_tree(src)
        vault_b = DebarVault(tmp_path / "b")
        server_b = start_daemon(vault_b, "b")
        registry = MetricsRegistry()
        vault_a = open_vault(tmp_path, "a", telemetry=registry)
        replicator = Replicator(
            vault_a, "a", {"b": (server_b.host, server_b.port)},
            replication_factor=2, retry=FAST_RETRY, registry=registry,
        )
        vault_a.replicator = replicator
        try:
            run = vault_a.backup("docs", [src])
            assert replicator.drain(timeout=10.0)
            vault_a.enable_cold_tier()
            migrate_all(vault_a)
            cold_images = {
                cid: vault_a.repository.read_image(cid)
                for cid in vault_a.repository.container_ids()
            }
            report = rebuild_node(
                "a", tmp_path / "a-rebuilt",
                {"b": (server_b.host, server_b.port)}, retry=FAST_RETRY,
            )
            assert not report.containers_missing
            rebuilt = DebarVault(tmp_path / "a-rebuilt")
            try:
                for cid, image in cold_images.items():
                    assert rebuilt.repository.read_image(cid) == image
                dest = tmp_path / "out"
                rebuilt.restore(run.run_id, dest, strip_prefix=tmp_path)
                assert read_tree(dest / "src") == before
            finally:
                rebuilt.close()
        finally:
            replicator.close(drain=False, timeout=1.0)
            server_b.shutdown()
            server_b.server_close()
            vault_b.close()
            vault_a.close()

    def test_failover_when_cold_backend_is_down(self, cold_vault, tmp_path):
        vault, run, _ = cold_vault
        fps = run_fingerprints(vault, run.run_id)
        expected = [vault.cold_reader(fps).read_chunk(fp) for fp in fps]
        replica = open_vault(tmp_path, "replica")
        replica.backup("docs", [tmp_path / "src"])
        # Every cold request now fails until the retry budget exhausts;
        # RetryExhaustedError is an OSError, so the failover reader falls
        # through to the replica without special-casing the cold tier.
        backend = vault.repository.cold
        backend.sleep = lambda s: None
        backend.faults.append(
            BackendFaultRule(op="*", kind="transient", times=None)
        )
        reader = FailoverChunkReader(
            [("local vault", vault.cold_reader(fps)),
             ("replica", replica.chunk_store)],
            registry=vault.telemetry,
        )
        got = [reader.read_chunk(fp) for fp in fps]
        assert got == expected
        assert reader.last_source == "replica"
        replica.close()


class TestColdCli:
    def test_migrate_and_tier_status(self, tmp_path, capsys):
        from repro.cli import main

        vault = open_vault(tmp_path)
        vault.backup("docs", [make_tree(tmp_path / "src")])
        vault.close()
        report_path = tmp_path / "migrate.json"
        code = main([
            "migrate", "--vault", str(tmp_path / "vault"),
            "--min-age", "0", "--report-json", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["migrated"] > 0 and not report["failed"]
        capsys.readouterr()

        status_path = tmp_path / "tier.json"
        code = main([
            "tier-status", "--vault", str(tmp_path / "vault"),
            "--json", str(status_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold" in out
        doc = json.loads(status_path.read_text())
        assert doc["cold_attached"] is True
        assert doc["tiers"]["cold"]["containers"] == report["migrated"]
        assert doc["tiers"]["hot"]["containers"] == 0

    def test_migrate_refuses_missing_vault(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["migrate", "--vault", str(tmp_path / "nope")]) == 1
        assert "no vault" in capsys.readouterr().err

    def test_restore_cli_from_cold_vault(self, cold_vault, tmp_path):
        from repro.cli import main

        vault, run, before = cold_vault
        vault.close()
        dest = tmp_path / "cli-out"
        code = main([
            "restore", "--vault", str(vault.root), "--run", str(run.run_id),
            "--dest", str(dest), "--strip-prefix", str(tmp_path),
        ])
        assert code == 0
        assert read_tree(dest / "src") == before
