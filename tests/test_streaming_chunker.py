"""Tests for constant-memory streaming chunking."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking import ContentDefinedChunker


def small_chunker():
    return ContentDefinedChunker(avg_bits=8, min_size=64, max_size=1024)


def random_data(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


class TestStreamingEquivalence:
    def _compare(self, data, read_size=None):
        c = small_chunker()
        whole = list(c.chunks(data))
        kwargs = {"read_size": read_size} if read_size else {}
        streamed = list(c.chunks_from_stream(io.BytesIO(data), **kwargs))
        assert [ch.fingerprint for ch in streamed] == [ch.fingerprint for ch in whole]
        assert [ch.offset for ch in streamed] == [ch.offset for ch in whole]
        assert b"".join(ch.data for ch in streamed) == data

    def test_matches_whole_buffer(self):
        self._compare(random_data(100_000, seed=1))

    def test_small_read_size(self):
        self._compare(random_data(40_000, seed=2), read_size=2 * 1024)

    def test_input_smaller_than_one_read(self):
        self._compare(random_data(500, seed=3))

    def test_input_smaller_than_min_chunk(self):
        self._compare(b"tiny")

    def test_empty_stream(self):
        assert list(small_chunker().chunks_from_stream(io.BytesIO(b""))) == []

    def test_exact_read_size_boundary(self):
        c = small_chunker()
        self._compare(random_data(8 * c.max_size, seed=4))

    def test_low_entropy_max_cut_stream(self):
        # Forced max_size cuts must stream identically too.
        self._compare(b"\x07" * 50_000)

    def test_invalid_read_size(self):
        c = small_chunker()
        with pytest.raises(ValueError):
            list(c.chunks_from_stream(io.BytesIO(b"x" * 5000), read_size=c.max_size))

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=30_000),
        st.sampled_from([2048, 4096, 16 * 1024]),
    )
    def test_property_equivalence(self, n, read_size):
        self._compare(random_data(n, seed=n % 13), read_size=read_size)


class TestStreamingFromFile:
    def test_chunk_real_file(self, tmp_path):
        data = random_data(60_000, seed=9)
        path = tmp_path / "big.bin"
        path.write_bytes(data)
        c = small_chunker()
        with open(path, "rb") as fh:
            streamed = list(c.chunks_from_stream(fh, read_size=4096))
        assert b"".join(ch.data for ch in streamed) == data
