"""repro.frontdoor: membership, health, routing, failover, rebalancing.

The cluster tests run two real ``serve`` daemons (cross-replicating at
RF=2) behind a real :class:`FrontDoorRouter` on loopback sockets, then
drive everything a deployment would: a dumb client backing up and
restoring *through* the router, a smart client redirecting off the
cached ring, a node killed mid-restore (the restore must stay
byte-identical via the replica set), and a third node joining with the
resulting rebalance plan executed — interrupted halfway and resumed —
until every vault passes a deep audit.

Health probes are driven manually (``probe_once``) so mark-down timing
is deterministic; the router's probe interval is set far above the test
horizon.
"""

import json
import random
import subprocess
import sys
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.frontdoor.client import RouterClient
from repro.frontdoor.health import HealthMonitor
from repro.frontdoor.membership import ClusterMembership, MembershipError
from repro.frontdoor.rebalance import build_plan, execute_plan
from repro.frontdoor.router import FrontDoorRouter, _Downstream
from repro.net import messages as m
from repro.net.client import (
    NetClient,
    RemoteBackupClient,
    RemoteChunkReader,
    RemoteError,
    RetryPolicy,
)
from repro.net.framing import Frame
from repro.net.server import serve_vault
from repro.replication.replicator import Replicator
from repro.replication.ring import PlacementRing
from repro.system.vault import DebarVault
from repro.telemetry.registry import MetricsRegistry

FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, max_delay=0.05, timeout=5.0,
    connect_timeout=1.0,
)


def write_dataset(root, n_files=4, seed=11):
    rng = random.Random(seed)
    data = root / "data"
    data.mkdir(parents=True, exist_ok=True)
    for i in range(n_files):
        blob = rng.randbytes(2500)
        (data / f"f{i}.bin").write_bytes(blob + blob + bytes([i]) * 400)
    return data


def dataset_bytes(root):
    return sorted(p.read_bytes() for p in Path(root).rglob("*.bin"))


def start_daemon(vault, node_name):
    server = serve_vault(vault, node_name=node_name)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def start_router(membership, state_dir, registry=None, **kwargs):
    kwargs.setdefault("probe_interval", 3600.0)  # probes are manual in tests
    kwargs.setdefault("probe_timeout", 0.5)
    kwargs.setdefault("mark_down_after", 2)
    router = FrontDoorRouter(
        membership, state_dir=state_dir, registry=registry, **kwargs
    )
    thread = threading.Thread(target=router.serve_forever, daemon=True)
    thread.start()
    return router


@pytest.fixture()
def cluster(tmp_path):
    """Two cross-replicating daemons (RF=2) behind a router."""
    # Small containers so modest datasets seal several of them — the
    # rebalance plan needs a population of containers to move.
    vault_a = DebarVault(tmp_path / "a", container_bytes=1 << 14)
    vault_b = DebarVault(tmp_path / "b", container_bytes=1 << 14)
    server_a = start_daemon(vault_a, "a")
    server_b = start_daemon(vault_b, "b")
    repl_a = Replicator(
        vault_a, "a", {"b": (server_b.host, server_b.port)},
        replication_factor=2, retry=FAST_RETRY,
    )
    repl_b = Replicator(
        vault_b, "b", {"a": (server_a.host, server_a.port)},
        replication_factor=2, retry=FAST_RETRY,
    )
    vault_a.replicator = repl_a
    vault_b.replicator = repl_b
    registry = MetricsRegistry()
    membership = ClusterMembership(tmp_path / "state", replication_factor=2)
    membership.join("a", f"{server_a.host}:{server_a.port}")
    membership.join("b", f"{server_b.host}:{server_b.port}")
    router = start_router(membership, tmp_path / "state", registry=registry)
    c = SimpleNamespace(
        tmp=tmp_path,
        vaults={"a": vault_a, "b": vault_b},
        servers={"a": server_a, "b": server_b},
        replicators={"a": repl_a, "b": repl_b},
        membership=membership,
        router=router,
        registry=registry,
        dead=set(),
    )

    def kill(name):
        """SIGKILL-equivalent: no drain, no dismantled state."""
        c.dead.add(name)
        c.replicators[name].close(drain=False, timeout=0.5)
        c.servers[name].shutdown()
        c.servers[name].server_close()
        c.vaults[name].close()

    c.kill = kill
    try:
        yield c
    finally:
        c.router.shutdown()
        c.router.server_close()
        for name in c.vaults:
            if name not in c.dead:
                c.replicators[name].close(drain=False, timeout=0.5)
                c.servers[name].shutdown()
                c.servers[name].server_close()
                c.vaults[name].close()


def job_owned_by(membership, node):
    """A job name whose ring primary is ``node`` (deterministic search)."""
    ring = membership.ring()
    for i in range(200):
        job = f"job{i}"
        if ring.replicas(f"job:{job}", rf=1)[0] == node:
            return job
    raise AssertionError(f"no job hashes to {node} in 200 tries")


class TestMembership:
    def test_epoch_moves_only_on_membership_change(self, tmp_path):
        ms = ClusterMembership(tmp_path / "s")
        assert ms.join("a", "127.0.0.1:1") and ms.epoch == 1
        assert ms.join("b", "127.0.0.1:2") and ms.epoch == 2
        # Idempotent re-join: no churn.
        assert not ms.join("a", "127.0.0.1:1")
        assert ms.epoch == 2
        # Health state is epoch-neutral.
        assert ms.record_probe("a", False, mark_down_after=1) == "down"
        assert ms.epoch == 2
        assert ms.live_names() == ["b"]
        assert sorted(ms.ring().nodes) == ["a", "b"]  # placement unchanged
        assert ms.record_probe("a", True) == "up"
        # Leave moves the epoch; unknown leave does not.
        assert ms.leave("a") and ms.epoch == 3
        assert not ms.leave("a") and ms.epoch == 3

    def test_persistence_resets_health_not_membership(self, tmp_path):
        ms = ClusterMembership(tmp_path / "s")
        ms.join("a", "127.0.0.1:1")
        ms.join("b", "127.0.0.1:2")
        ms.record_probe("b", False, mark_down_after=1)
        reloaded = ClusterMembership(tmp_path / "s")
        assert reloaded.epoch == 2
        assert reloaded.names() == ["a", "b"]
        # Optimistic restart: probes re-discover health.
        assert reloaded.live_names() == ["a", "b"]

    def test_rejects_bad_names_and_addresses(self, tmp_path):
        ms = ClusterMembership(tmp_path / "s")
        with pytest.raises(MembershipError):
            ms.join("", "127.0.0.1:1")
        with pytest.raises(MembershipError):
            ms.join("a", "no-port")
        with pytest.raises(MembershipError):
            ms.ring()  # empty cluster has no placement


class TestHealth:
    def test_mark_down_after_k_failures_and_fast_recovery(self, tmp_path):
        vault = DebarVault(tmp_path / "v")
        server = start_daemon(vault, "a")
        ms = ClusterMembership(tmp_path / "s")
        ms.join("a", f"{server.host}:{server.port}")
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            ms, probe_timeout=0.5, mark_down_after=2, registry=registry
        )
        try:
            assert monitor.probe_once() == {"a": True}
            server.shutdown()
            server.server_close()
            assert monitor.probe_once() == {"a": False}
            assert ms.is_up("a"), "one failure must not mark down (K=2)"
            assert monitor.probe_once() == {"a": False}
            assert not ms.is_up("a")
            # One success marks it straight back up.
            server2 = start_daemon(vault, "a")
            ms.join("a", f"{server2.host}:{server2.port}")  # re-advertise
            assert monitor.probe_once() == {"a": True}
            assert ms.is_up("a")
            server2.shutdown()
            server2.server_close()
        finally:
            vault.close()


class TestSmartClient:
    def test_lookup_caches_a_deterministic_ring(self, cluster):
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            doc = rc.lookup()
            assert doc["epoch"] == cluster.membership.epoch
            assert sorted(doc["nodes"]) == ["a", "b"]
            # The handed-out inputs rebuild the identical ring.
            local = cluster.membership.ring()
            for i in range(20):
                key = f"job:probe{i}"
                assert rc.ring.replicas(key) == local.replicas(key)
            assert rc.refresh_if_stale() is False
            # Membership change flips the hint.
            cluster.membership.join("ghost", "127.0.0.1:1")
            assert rc.refresh_if_stale() is True
            assert "ghost" in rc.nodes
            cluster.membership.leave("ghost")
        finally:
            rc.close()

    def test_redirect_backup_lands_on_ring_owner(self, cluster, tmp_path):
        data = write_dataset(tmp_path / "ds")
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            job = job_owned_by(cluster.membership, "a")
            client = rc.client_for_job(job, retry=FAST_RETRY)
            assert (client.net.host, client.net.port) == (
                cluster.servers["a"].host, cluster.servers["a"].port
            )
            run = client.backup(job, [data])
            client.close()
            # The run is on the owner, not elsewhere.
            assert any(r.job == job for r in cluster.vaults["a"].runs())
            assert not any(r.job == job for r in cluster.vaults["b"].runs())
            located = rc.client_for_run(run.run_id, retry=FAST_RETRY)
            assert (located.net.host, located.net.port) == (
                cluster.servers["a"].host, cluster.servers["a"].port
            )
            located.close()
        finally:
            rc.close()


class TestProxy:
    def test_backup_restore_through_router(self, cluster, tmp_path):
        data = write_dataset(tmp_path / "ds")
        job = job_owned_by(cluster.membership, "a")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run = client.backup(job, [data])
            # Session frames were pinned to the ring owner.
            assert any(r.job == job for r in cluster.vaults["a"].runs())
            runs = client.runs()
            assert [r.run_id for r in runs] == [run.run_id]
            dest = tmp_path / "restore"
            client.restore(run.run_id, dest)
            assert dataset_bytes(dest) == dataset_bytes(data)
        finally:
            client.close()

    def test_runs_merges_across_nodes(self, cluster, tmp_path):
        job_a = job_owned_by(cluster.membership, "a")
        job_b = job_owned_by(cluster.membership, "b")
        data = write_dataset(tmp_path / "ds")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            client.backup(job_a, [data])
            client.backup(job_b, [data])
            jobs = sorted(r.job for r in client.runs())
            assert jobs == sorted([job_a, job_b])
        finally:
            client.close()

    def test_kill_mid_restore_fails_over_byte_identical(self, cluster, tmp_path):
        data = write_dataset(tmp_path / "ds", n_files=6)
        job = job_owned_by(cluster.membership, "a")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run = client.backup(job, [data])
            assert cluster.replicators["a"].drain(timeout=10.0)
            # Mid-restore: the metadata fetch succeeded against the owner...
            entries = client.run_entries(run.run_id)
            # ...then the owner dies before any chunk is read (the
            # deterministic worst case of a SIGKILL mid-restore).
            cluster.kill("a")
            reader = RemoteChunkReader(client.net)
            reader.plan([fp for e in entries for fp in e.fingerprints])
            dest = tmp_path / "restore"
            client.engine.restore_run(entries, reader, dest, "/")
            assert dataset_bytes(dest) == dataset_bytes(data)
            # The data path fed mark-down; probes finish the job.
            cluster.router.health.probe_once()
            cluster.router.health.probe_once()
            assert not cluster.membership.is_up("a")
        finally:
            client.close()

    def test_restore_of_dead_origin_uses_mirrored_catalog(self, cluster, tmp_path):
        """META_GET for a run only the dead node recorded is synthesized
        from the replica's mirrored catalog (restore starts after death)."""
        data = write_dataset(tmp_path / "ds")
        job = job_owned_by(cluster.membership, "a")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run = client.backup(job, [data])
            assert cluster.replicators["a"].drain(timeout=10.0)
        finally:
            client.close()
        cluster.kill("a")
        # Deliberately BEFORE any probe ran: the owner is dead but not yet
        # marked down, the worst window — the router must treat the
        # transport failure itself as evidence and synthesize from the
        # survivor's mirrored catalog.
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            dest = tmp_path / "restore"
            client.restore(run.run_id, dest)
            assert dataset_bytes(dest) == dataset_bytes(data)
        finally:
            client.close()
        cluster.router.health.probe_once()
        cluster.router.health.probe_once()
        assert cluster.membership.live_names() == ["b"]

    def test_cluster_status_reports_mark_down(self, cluster):
        cluster.kill("b")
        cluster.router.health.probe_once()
        cluster.router.health.probe_once()
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            status = rc.cluster_status()
            states = {n["name"]: n["state"] for n in status["nodes"]}
            assert states == {"a": "up", "b": "down"}
            assert status["epoch"] == cluster.membership.epoch
        finally:
            rc.close()

    def test_backup_fails_over_to_replica_when_owner_down(self, cluster, tmp_path):
        """SESSION_BEGIN picks the first *live* node in ring order, so a
        dead primary's jobs land on the next replica."""
        data = write_dataset(tmp_path / "ds")
        job = job_owned_by(cluster.membership, "a")
        cluster.kill("a")
        cluster.router.health.probe_once()
        cluster.router.health.probe_once()
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run = client.backup(job, [data])
            assert any(r.run_id == run.run_id for r in cluster.vaults["b"].runs())
        finally:
            client.close()


class TestRunIdCollision:
    """Run ids are per-vault — every node numbers its own runs from 1 —
    so a two-node cluster holds two different "run 1"s.  Routed reads
    must be (job, run id)-addressed, bare colliding ids refused rather
    than guessed, and the destructive FORGET must never fail over."""

    def _seed(self, cluster, tmp_path):
        """One run in each vault, both with run id 1, different data."""
        s = SimpleNamespace(
            job_a=job_owned_by(cluster.membership, "a"),
            job_b=job_owned_by(cluster.membership, "b"),
        )
        s.data_a = write_dataset(tmp_path / "da", seed=21)
        s.data_b = write_dataset(tmp_path / "db", seed=42)
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run_a = client.backup(s.job_a, [s.data_a])
            run_b = client.backup(s.job_b, [s.data_b])
        finally:
            client.close()
        assert run_a.run_id == run_b.run_id == 1, "collision is the premise"
        return s

    def test_proxied_restore_routes_by_job_not_run_id(self, cluster, tmp_path):
        s = self._seed(cluster, tmp_path)
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            # Job-qualified restores each land on their own vault even
            # though both runs share id 1 (and b's job must not be
            # answered by a, whatever order failover tries nodes in).
            client.restore(1, tmp_path / "rb", job=s.job_b)
            assert dataset_bytes(tmp_path / "rb") == dataset_bytes(s.data_b)
            client.restore(1, tmp_path / "ra", job=s.job_a)
            assert dataset_bytes(tmp_path / "ra") == dataset_bytes(s.data_a)
            # A bare colliding run id is refused, not guessed.
            with pytest.raises(RemoteError) as err:
                client.run_entries(1)
            assert err.value.error == "AmbiguousRun"
        finally:
            client.close()

    def test_node_validates_job_on_meta_get_and_forget(self, cluster, tmp_path):
        s = self._seed(cluster, tmp_path)
        server = cluster.servers["a"]
        client = RemoteBackupClient(server.host, server.port, retry=FAST_RETRY)
        try:
            assert client.run_entries(1, job=s.job_a)
            with pytest.raises(RemoteError):
                client.run_entries(1, job=s.job_b)  # b's id collides on a
            with pytest.raises(RemoteError):
                client.forget(1, job=s.job_b)
            assert any(r.run_id == 1 for r in client.runs()), (
                "a mismatched forget must not delete the colliding run"
            )
        finally:
            client.close()

    def test_forget_routes_to_one_owner_and_never_fails_over(
        self, cluster, tmp_path
    ):
        s = self._seed(cluster, tmp_path)
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            # Bare colliding id: refused.
            with pytest.raises(RemoteError) as err:
                client.forget(1)
            assert err.value.error == "AmbiguousRun"
            assert cluster.vaults["a"].runs() and cluster.vaults["b"].runs()
            # Qualified: deletes exactly the owning vault's run.
            client.forget(1, job=s.job_a)
            assert not cluster.vaults["a"].runs()
            assert [r.job for r in cluster.vaults["b"].runs()] == [s.job_b]
            # Owner down: the forget errors instead of failing over onto
            # the surviving vault's unrelated run 1.
            cluster.kill("b")
            cluster.router.health.probe_once()
            cluster.router.health.probe_once()
            with pytest.raises(RemoteError):
                client.forget(1, job=s.job_b)
        finally:
            client.close()

    def test_client_for_run_locates_by_job(self, cluster, tmp_path):
        s = self._seed(cluster, tmp_path)
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            located = rc.client_for_run(1, job=s.job_b, retry=FAST_RETRY)
            assert (located.net.host, located.net.port) == (
                cluster.servers["b"].host, cluster.servers["b"].port
            )
            located.close()
            with pytest.raises(KeyError, match="jobs"):
                rc.client_for_run(1, retry=FAST_RETRY)
        finally:
            rc.close()


class TestDownstreamLifecycle:
    @staticmethod
    def _fake_router():
        from itertools import count

        rids = count(1)
        return SimpleNamespace(
            connect_timeout=2.0,
            _next_rid=lambda: (0xAB << 32) + next(rids),
        )

    def test_concurrent_ensure_opens_one_connection(self, tmp_path, monkeypatch):
        import asyncio

        vault = DebarVault(tmp_path / "v")
        server = start_daemon(vault, "a")
        opened = 0
        orig_open = asyncio.open_connection

        async def counting_open(*args, **kwargs):
            nonlocal opened
            opened += 1
            return await orig_open(*args, **kwargs)

        monkeypatch.setattr(asyncio, "open_connection", counting_open)
        try:

            async def go():
                d = _Downstream(
                    "a", f"{server.host}:{server.port}", self._fake_router()
                )
                await asyncio.gather(
                    d.ensure({"client": "t"}), d.ensure({"client": "t"})
                )
                await d.close()

            asyncio.run(go())
            assert opened == 1, "concurrent ensure() must share one connection"
        finally:
            server.shutdown()
            server.server_close()
            vault.close()

    def test_pump_death_drops_transport_for_instant_reconnect(self, tmp_path):
        import asyncio

        vault = DebarVault(tmp_path / "v")
        server = start_daemon(vault, "a")
        survivors = []

        async def go():
            d = _Downstream(
                "a", f"{server.host}:{server.port}", self._fake_router()
            )
            await d.ensure({"client": "t"})
            assert d._writer is not None
            server.shutdown()
            server.server_close()
            for _ in range(250):
                if d._writer is None:
                    break
                await asyncio.sleep(0.02)
            assert d._writer is None, (
                "a dead pump must drop the transport so the next frame "
                "reconnects instead of timing out against a dead socket"
            )
            # The same downstream object reconnects immediately.
            server2 = start_daemon(vault, "a")
            survivors.append(server2)
            d.address = f"{server2.host}:{server2.port}"
            await d.ensure({"client": "t"})
            response = await d.call(Frame(m.PING, 7, b""), timeout=5.0)
            assert response.msg_type == m.PONG
            await d.close()

        try:
            asyncio.run(go())
        finally:
            for server2 in survivors:
                server2.shutdown()
                server2.server_close()
            vault.close()


class TestRebalance:
    def test_join_plans_moves_resumable_and_audited(self, cluster, tmp_path):
        data = write_dataset(tmp_path / "ds", n_files=24, seed=5)
        job = job_owned_by(cluster.membership, "a")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            client.backup(job, [data])
        finally:
            client.close()
        assert cluster.replicators["a"].drain(timeout=10.0)

        # A third node joins over the wire (NODE_JOIN, as --advertise does).
        vault_c = DebarVault(cluster.tmp / "c")
        server_c = start_daemon(vault_c, "c")
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            before = cluster.membership.epoch
            ack = rc.net.call_json(m.NODE_JOIN, {
                "name": "c", "address": f"{server_c.host}:{server_c.port}",
            })
            assert ack["changed"] and ack["epoch"] == before + 1

            plan = rc.rebalance_plan()
            addresses = plan.pop("addresses")
            assert plan["epoch"] == cluster.membership.epoch
            steps = plan["steps"]
            assert steps, "a join must produce moves"
            assert all(s["dst"] == "c" for s in steps), (
                "with RF=2 over {a,b} fully replicated, only the new node "
                "can be missing copies"
            )
            # The ring says these exact moves (independent derivation).
            ring = cluster.membership.ring()
            for step in steps:
                assert "c" in ring.replicas_for_container(
                    step["origin"], step["container_id"]
                )

            # Execute one step, then "crash" the mover.
            report = execute_plan(
                plan, addresses, ack=rc.rebalance_ack, retry=FAST_RETRY, limit=1
            )
            assert report["executed"] == 1
            assert report["pending"] == len(steps) - 1

            # A fresh mover resumes the same plan: done work stays done.
            rc2 = RouterClient(
                cluster.router.host, cluster.router.port, retry=FAST_RETRY
            )
            try:
                resumed = rc2.rebalance_plan()
                addresses2 = resumed.pop("addresses")
                assert resumed["epoch"] == plan["epoch"]
                assert sum(1 for s in resumed["steps"] if s["done"]) == 1
                report2 = execute_plan(
                    resumed, addresses2, ack=rc2.rebalance_ack, retry=FAST_RETRY
                )
                assert report2["pending"] == 0 and not report2["failed"]
            finally:
                rc2.close()

            # Re-planning now finds nothing left to move (idempotent).
            rc3 = RouterClient(
                cluster.router.host, cluster.router.port, retry=FAST_RETRY
            )
            try:
                done_plan = rc3.rebalance_plan()
                assert all(s["done"] for s in done_plan["steps"]) or not done_plan["steps"]
            finally:
                rc3.close()

            # The new node now holds verified replicas...
            moved = {(s["origin"], s["container_id"]) for s in steps}
            for origin, cid in moved:
                assert cid in server_c.replica_store.container_ids(origin)
        finally:
            rc.close()
            server_c.shutdown()
            server_c.server_close()

        # ...and every vault passes a deep audit.
        for name in ("a", "b"):
            cluster.replicators[name].close(drain=False, timeout=0.5)
            cluster.servers[name].shutdown()
            cluster.servers[name].server_close()
            cluster.dead.add(name)
        for vault in (cluster.vaults["a"], cluster.vaults["b"], vault_c):
            assert vault.audit(deep=True).ok
        cluster.vaults["a"].close()
        cluster.vaults["b"].close()
        vault_c.close()
        cluster.dead.update(("a", "b"))

    def test_build_plan_is_deterministic(self):
        ring = PlacementRing(["a", "b", "c"], replication_factor=2)
        inventories = {
            "a": {"containers": [1, 2], "replicas": {}},
            "b": {"containers": [7], "replicas": {"a": {"container_ids": [1]}}},
            "c": {"containers": [], "replicas": {}},
        }
        p1 = build_plan(ring, inventories, epoch=4)
        p2 = build_plan(ring, inventories, epoch=4)
        assert p1 == p2
        covered = {(s["origin"], s["container_id"], s["dst"]) for s in p1["steps"]}
        # Container a:1 already has its copy on b iff the ring wants b.
        for origin, cid in (("a", 1), ("a", 2), ("b", 7)):
            want = set(ring.replicas_for_container(origin, cid)) - {origin}
            have = {"b"} if (origin, cid) == ("a", 1) else set()
            assert {(origin, cid, d) for d in want - have} <= covered


class TestRouterTelemetry:
    def test_router_metrics_move_and_validate(self, cluster, tmp_path):
        data = write_dataset(tmp_path / "ds", n_files=2)
        job = job_owned_by(cluster.membership, "b")
        client = RemoteBackupClient(
            cluster.router.host, cluster.router.port, retry=FAST_RETRY
        )
        try:
            run = client.backup(job, [data])
            client.restore(run.run_id, tmp_path / "out")
        finally:
            client.close()
        rc = RouterClient(cluster.router.host, cluster.router.port, retry=FAST_RETRY)
        try:
            rc.lookup()
        finally:
            rc.close()
        from repro.telemetry.export import build_snapshot
        from repro.telemetry.schema import validate_snapshot

        snapshot = build_snapshot(cluster.registry)
        names = {metric["name"] for metric in snapshot["metrics"]}
        for expected in (
            "router.requests",
            "router.proxied_frames",
            "router.proxy_latency",
            "router.lookups",
            "router.sessions_routed",
            "router.ring_epoch",
        ):
            assert expected in names, f"{expected} never registered"
        # The schema validator accepts the router.* names (satellite
        # requirement: the catalogue and validator move together).
        summary = validate_snapshot(snapshot)
        assert summary["metrics"] == len(names)


class TestCli:
    def test_cluster_status_and_routed_backup_cli(self, cluster, tmp_path, capsys):
        from repro import cli

        data = write_dataset(tmp_path / "ds", n_files=2)
        router_addr = f"{cluster.router.host}:{cluster.router.port}"
        job = job_owned_by(cluster.membership, "a")
        rc = cli.main([
            "backup", "--route", router_addr, "--job", job,
            "--connect-timeout", "1.0", str(data),
        ])
        assert rc == 0
        assert any(r.job == job for r in cluster.vaults["a"].runs())
        out_json = tmp_path / "cluster.json"
        rc = cli.main([
            "cluster-status", "--connect", router_addr, "--json", str(out_json),
        ])
        assert rc == 0
        doc = json.loads(out_json.read_text())
        assert {n["name"] for n in doc["nodes"]} == {"a", "b"}
        captured = capsys.readouterr()
        assert "epoch" in captured.out

    def test_exactly_one_target_enforced(self, tmp_path):
        from repro import cli

        with pytest.raises(SystemExit) as exc:
            cli.main([
                "list", "--vault", str(tmp_path / "v"),
                "--route", "127.0.0.1:1",
            ])
        assert exc.value.code == 2
