"""Ablation: the preliminary filter (DESIGN.md design-choice #1).

TPDS's dedup-1 filter is what lifts backup throughput above the NIC rate
and shrinks dedup-2's input.  This ablation runs the same two-session
workload three ways:

* **full**     — filter seeded from the job chain (DEBAR as designed);
* **no-chain** — filter runs but is never seeded with the previous run
  (catches only internal duplication);
* **tiny**     — a 2-entry filter (effectively no filtering), everything
  goes to the chunk log and dedup-2.

Dedup-2 keeps stored bytes identical in all three — the filter is purely a
bandwidth/time optimisation, never a correctness mechanism.
"""

from conftest import print_table, save_series

from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import SyntheticFingerprints
from repro.core.tpds import TwoPhaseDeduplicator
from repro.storage import ChunkRepository
from repro.util import MB, fmt_rate


def _workload(sessions=4, chunks=4000, dup=0.85):
    """A nightly chain: each session ~85 % its predecessor."""
    gen = SyntheticFingerprints(0)
    out = [gen.fresh(chunks)]
    keep = int(chunks * dup)
    for _ in range(sessions - 1):
        out.append(out[-1][:keep] + gen.fresh(chunks - keep))
    return [[(fp, 8192) for fp in s] for s in out]


def _run(filter_capacity, seed_chain):
    sessions = _workload()
    tpds = TwoPhaseDeduplicator(
        DiskIndex(11, bucket_bytes=512),
        ChunkRepository(),
        filter_capacity=filter_capacity,
        cache_capacity=1 << 18,
        container_bytes=512 * 1024,
    )
    transferred = logical = input_chunks = 0
    previous = None
    for session in sessions:
        filtering = previous if seed_chain else None
        stats, _ = tpds.dedup1_backup(session, filtering_fps=filtering)
        tpds.dedup2()
        transferred += stats.transferred_bytes
        logical += stats.logical_bytes
        input_chunks += stats.transferred_chunks
        previous = [fp for fp, _ in session]
    return {
        "transferred_bytes": transferred,
        "logical_bytes": logical,
        "elapsed": tpds.clock.now,
        "throughput": logical / tpds.clock.now,
        "stored_bytes": tpds.physical_chunk_bytes(),
        "dedup2_input_chunks": input_chunks,
    }


def bench_ablation_prefilter(benchmark, results_dir):
    def run_all():
        return {
            "full": _run(1 << 16, seed_chain=True),
            "no-chain": _run(1 << 16, seed_chain=False),
            "tiny": _run(2, seed_chain=False),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    full, nochain, tiny = results["full"], results["no-chain"], results["tiny"]

    # Correctness is filter-independent: identical physical bytes.
    assert full["stored_bytes"] == nochain["stored_bytes"] == tiny["stored_bytes"]
    # The chain-seeded filter transfers far less and runs faster.
    assert full["transferred_bytes"] < 0.5 * tiny["transferred_bytes"]
    assert full["throughput"] > 1.5 * tiny["throughput"]
    assert full["throughput"] >= nochain["throughput"]
    # And it shrinks dedup-2's input (the paper's second benefit).
    assert full["dedup2_input_chunks"] < tiny["dedup2_input_chunks"]

    print_table(
        "Ablation — preliminary filter",
        ["variant", "transferred", "dedup-2 input", "throughput"],
        [
            (
                name,
                f"{r['transferred_bytes'] / MB:.1f}MB",
                r["dedup2_input_chunks"],
                fmt_rate(r["throughput"]),
            )
            for name, r in results.items()
        ],
    )
    save_series(results_dir, "ablation_prefilter", results)
