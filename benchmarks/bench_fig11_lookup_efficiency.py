"""Figure 11: fingerprint lookup/update efficiency (log scale).

Paper anchors: with a 32 GB index and 3 GB cache, SIL runs at ~917 k and
SIU at ~376 k fingerprints/s — speedups of 1757x and 1392x over random
on-disk lookup (522 fps) and update (270 fps).  Even the worst case
plotted (512 GB index, 1 GB cache) sustains 19 660 / 7 884 fps, 37x / 29x
over random.
"""

import pytest
from conftest import print_table, save_series

from repro.analysis import (
    random_lookup_speed,
    random_update_speed,
    sil_efficiency,
    siu_efficiency,
)
from repro.util import GB

INDEX_SIZES_GB = (32, 64, 128, 256, 512)
CACHE_SIZES_GB = (1, 2, 3)


def _grid():
    rows = []
    for s in INDEX_SIZES_GB:
        row = {"index_gb": s}
        for c in CACHE_SIZES_GB:
            row[f"sil_{c}gb"] = sil_efficiency(s * GB, c * GB)
            row[f"siu_{c}gb"] = siu_efficiency(s * GB, c * GB)
        rows.append(row)
    return rows


def bench_fig11_efficiency(benchmark, results_dir):
    rows = benchmark(_grid)
    by_size = {row["index_gb"]: row for row in rows}

    # Paper anchor points.
    assert by_size[32]["sil_3gb"] == pytest.approx(917_000, rel=0.12)
    assert by_size[32]["siu_3gb"] == pytest.approx(376_000, rel=0.12)
    assert by_size[512]["sil_1gb"] == pytest.approx(19_660, rel=0.12)
    assert by_size[512]["siu_1gb"] == pytest.approx(7_884, rel=0.12)
    assert random_lookup_speed() == pytest.approx(522, rel=0.02)
    assert random_update_speed() == pytest.approx(270, rel=0.05)

    # Orderings: bigger cache faster, bigger index slower, SIL > SIU, and
    # everything beats random by orders of magnitude.
    for row in rows:
        assert row["sil_1gb"] < row["sil_2gb"] < row["sil_3gb"]
        for c in CACHE_SIZES_GB:
            assert row[f"sil_{c}gb"] > row[f"siu_{c}gb"]
            assert row[f"sil_{c}gb"] > 30 * random_lookup_speed()
            assert row[f"siu_{c}gb"] > 25 * random_update_speed()
    sil_1gb = [row["sil_1gb"] for row in rows]
    assert sil_1gb == sorted(sil_1gb, reverse=True)

    # The paper's headline speedup factors.
    assert by_size[32]["sil_3gb"] / random_lookup_speed() == pytest.approx(1757, rel=0.15)
    assert by_size[32]["siu_3gb"] / random_update_speed() == pytest.approx(1392, rel=0.15)

    print_table(
        "Figure 11 — lookup/update efficiency (fingerprints/s)",
        ["index", "SIL-1GB", "SIL-2GB", "SIL-3GB", "SIU-1GB", "SIU-2GB", "SIU-3GB"],
        [
            (
                f"{row['index_gb']}GB",
                f"{row['sil_1gb']:,.0f}",
                f"{row['sil_2gb']:,.0f}",
                f"{row['sil_3gb']:,.0f}",
                f"{row['siu_1gb']:,.0f}",
                f"{row['siu_2gb']:,.0f}",
                f"{row['siu_3gb']:,.0f}",
            )
            for row in rows
        ],
    )
    print(
        f"random lookup {random_lookup_speed():.0f} fps (paper 522), "
        f"random update {random_update_speed():.0f} fps (paper 270)"
    )
    save_series(
        results_dir,
        "fig11_lookup_efficiency",
        {
            "rows": rows,
            "random_lookup": random_lookup_speed(),
            "random_update": random_update_speed(),
            "paper": {
                "sil_3gb_32gb": 917_000,
                "siu_3gb_32gb": 376_000,
                "sil_1gb_512gb": 19_660,
                "siu_1gb_512gb": 7_884,
            },
        },
    )
