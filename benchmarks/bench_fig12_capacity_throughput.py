"""Figure 12: single-server throughput vs supported system capacity.

Paper shape: DEBAR's total throughput declines gently as the index grows
from 32 GB (8 TB capacity) to 512 GB (128 TB) — the SIL/SIU scans lengthen
— ending around 214 MB/s total / ~97 MB/s dedup-2; DDFS holds ~189 MB/s up
to its 8 TB Bloom-filter budget and then collapses (to under 28 % of
nominal by the paper's measurement) as false positives convert new chunks
into random index I/O.  DEBAR supports 8x+ the capacity of DDFS at equal
memory.
"""

from conftest import print_table, save_series

from repro.analysis import (
    DebarCapacityModel,
    DdfsCapacityModel,
    index_supported_capacity,
)
from repro.util import GB, MB, TB, fmt_bytes

INDEX_SIZES_GB = (32, 64, 128, 256, 512)


def _curves():
    debar = DebarCapacityModel(cache_memory_bytes=1 * GB)
    ddfs = DdfsCapacityModel(bloom_bits=8 * GB)  # 1 GB of Bloom memory
    rows = []
    for s in INDEX_SIZES_GB:
        total, dedup2 = debar.throughput(s * GB)
        capacity = index_supported_capacity(s * GB, utilization=0.8)
        stored_fps = capacity / 8192
        rows.append(
            {
                "index_gb": s,
                "capacity_tb": capacity / TB,
                "debar_total_MBps": total / MB,
                "debar_dedup2_MBps": dedup2 / MB,
                "ddfs_MBps": ddfs.throughput(stored_fps) / MB,
                "ddfs_false_positive": ddfs.false_positive_rate(stored_fps),
            }
        )
    return rows


def bench_fig12_capacity_throughput(benchmark, results_dir):
    rows = benchmark(_curves)

    # DEBAR declines gently and monotonically; DDFS collapses.
    debar = [row["debar_total_MBps"] for row in rows]
    ddfs = [row["ddfs_MBps"] for row in rows]
    assert debar == sorted(debar, reverse=True)
    assert ddfs == sorted(ddfs, reverse=True)
    # Gentle vs cliff: over the full range DEBAR loses less than 60 %,
    # DDFS more than 85 %.
    assert debar[-1] > 0.4 * debar[0]
    assert ddfs[-1] < 0.15 * ddfs[0]

    # Under its Bloom budget DDFS is healthy (the 8 TB grid point sits at
    # the budget's edge, already a little depressed); past the budget DEBAR
    # wins everywhere, by a growing factor.
    ddfs_half_full = DdfsCapacityModel(bloom_bits=8 * GB).throughput(4 * TB / 8192) / MB
    assert ddfs_half_full > 150
    assert rows[0]["ddfs_MBps"] > 100
    for row in rows[1:]:
        assert row["debar_total_MBps"] > row["ddfs_MBps"]

    # Capacity story: a 512 GB index supports ~100+ TB, vs DDFS's 8 TB
    # Bloom budget — the paper's "8x the capacity at equal memory".
    assert rows[-1]["capacity_tb"] > 8 * 8

    print_table(
        "Figure 12 — throughput vs system capacity",
        ["index", "capacity", "DEBAR total", "DEBAR dedup-2", "DDFS", "DDFS p_fp"],
        [
            (
                f"{row['index_gb']}GB",
                fmt_bytes(row["capacity_tb"] * TB),
                f"{row['debar_total_MBps']:.0f}MB/s",
                f"{row['debar_dedup2_MBps']:.0f}MB/s",
                f"{row['ddfs_MBps']:.0f}MB/s",
                f"{row['ddfs_false_positive']:.1%}",
            )
            for row in rows
        ],
    )
    save_series(
        results_dir,
        "fig12_capacity_throughput",
        {"rows": rows, "paper": {"debar_total_512gb_MBps": 214, "ddfs_nominal_MBps": 189}},
    )
