"""Cold-restore benchmark: adjacent-GET batching vs one GET per chunk.

A fig08-style multi-generation file-tree workload is backed up, every
container is migrated to the (simulated) object-store cold tier, and the
latest run is restored twice through the cold read planner — once with
planning disabled (one ranged GET per chunk, the naive baseline) and once
with adjacent-range batching on.  The object store charges per-request
simulated time (~30 ms first byte + 100 MB/s), so the request count *is*
the cost model; the acceptance bar is that batching cuts cold-restore GET
requests by at least 2x.

Run directly (``python benchmarks/bench_cold_restore.py``) or via pytest.
Writes ``results/cold_restore.json``.
"""

import shutil
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import RESULTS_DIR, print_table, save_result, telemetry_session, volume_scale

from repro.backend.lifecycle import LifecycleManager, LifecyclePolicy
from repro.system import DebarVault
from repro.workloads import FileTreeGenerator, mutate_tree

_CONTAINER_BYTES = 256 * 1024
_GENERATIONS = 3


def _build_cold_vault(root, registry, scale):
    """Backup ``_GENERATIONS`` generations of an evolving tree, then
    migrate every container cold.  Returns (vault, last_run)."""
    src = root / "src"
    FileTreeGenerator(seed=8).generate(
        src,
        n_files=max(4, int(16 * scale)),
        n_dirs=3,
        min_size=16 * 1024,
        max_size=96 * 1024,
    )
    vault = DebarVault(
        root / "vault", container_bytes=_CONTAINER_BYTES, telemetry=registry
    )
    run = vault.backup("bench", [src])
    for gen in range(1, _GENERATIONS):
        mutate_tree(src, seed=gen)
        run = vault.backup("bench", [src])
    vault.enable_cold_tier()
    report = LifecycleManager(
        vault, LifecyclePolicy(min_age_runs=0, min_idle_runs=0)
    ).migrate()
    assert report.failed == [] and report.migrated > 0
    return vault, run


def _run_fingerprints(vault, run_id):
    payload = next(r for r in vault._catalog["runs"] if r["run_id"] == run_id)
    run = vault._load_run(payload)
    return [fp for entry in run.files for fp in entry.fingerprints]


def _restore_pass(vault, fps, batch):
    """Read the whole restore plan through the planner; returns the
    backend's request/simulated-seconds deltas for this pass."""
    backend = vault.repository.cold
    requests0 = backend.requests_issued
    seconds0 = backend.simulated_seconds
    reader = vault.cold_reader(list(fps), batch=batch)
    restored = 0
    for fp in fps:
        restored += len(reader.read_chunk(fp))
    return {
        "chunks": len(fps),
        "bytes": restored,
        "get_requests": backend.requests_issued - requests0,
        "simulated_seconds": backend.simulated_seconds - seconds0,
    }


def test_cold_restore_batching(results_dir, tmp_path):
    scale = volume_scale()
    with telemetry_session() as (registry, tracer):
        vault, run = _build_cold_vault(tmp_path, registry, scale)
        fps = _run_fingerprints(vault, run.run_id)
        try:
            # Unbatched first: the batched pass then runs against a warm
            # metadata cache, which is the cache state both passes share —
            # neither pass re-downloads payload data fetched by the other
            # (each reader owns its buffers).
            unbatched = _restore_pass(vault, fps, batch=False)
            batched = _restore_pass(vault, fps, batch=True)
        finally:
            vault.close()

    assert batched["bytes"] == unbatched["bytes"]
    speedup = unbatched["get_requests"] / max(1, batched["get_requests"])
    # The acceptance bar: batching must at least halve the GET count.
    assert speedup >= 2.0, (
        f"batching saved only {speedup:.2f}x GETs "
        f"({unbatched['get_requests']} -> {batched['get_requests']})"
    )

    print_table(
        "cold restore: planned batching vs per-chunk GETs",
        ["mode", "chunks", "GET requests", "simulated s"],
        [
            ("per-chunk", unbatched["chunks"], unbatched["get_requests"],
             f"{unbatched['simulated_seconds']:.3f}"),
            ("batched", batched["chunks"], batched["get_requests"],
             f"{batched['simulated_seconds']:.3f}"),
            ("ratio", "-", f"{speedup:.1f}x",
             f"{unbatched['simulated_seconds'] / max(1e-9, batched['simulated_seconds']):.1f}x"),
        ],
    )
    save_result(
        results_dir,
        "cold_restore",
        params={
            "scale": scale,
            "generations": _GENERATIONS,
            "container_bytes": _CONTAINER_BYTES,
            "restored_chunks": len(fps),
            "restored_bytes": batched["bytes"],
        },
        metrics={
            "unbatched_get_requests": unbatched["get_requests"],
            "batched_get_requests": batched["get_requests"],
            "get_request_speedup": speedup,
            "unbatched_simulated_seconds": unbatched["simulated_seconds"],
            "batched_simulated_seconds": batched["simulated_seconds"],
            "simulated_speedup": (
                unbatched["simulated_seconds"]
                / max(1e-9, batched["simulated_seconds"])
            ),
        },
        registry=registry,
        tracer=tracer,
    )


if __name__ == "__main__":
    scratch = RESULTS_DIR.parent / ".bench_cold_restore_scratch"
    if scratch.exists():
        shutil.rmtree(scratch)
    scratch.mkdir(parents=True)
    try:
        test_cold_restore_batching(RESULTS_DIR, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
