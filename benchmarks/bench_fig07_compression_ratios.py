"""Figure 7: daily and cumulative compression ratios over the month.

Paper's series and anchors:

* DEBAR dedup-1 cumulative stabilises around 3.6:1 — adjacent-version and
  internal duplication caught by the preliminary filter;
* DEBAR dedup-2 cumulative reaches ~2.6:1 by day 31 and its daily ratio
  trends upward (1.65:1 -> 4.05:1 over the 14 runs);
* DEBAR overall and DDFS cumulative ratios both *increase over time*
  (global dedup gets better as the store fills) and end around 9.39:1;
* in the first days the fresh preliminary filter matches DDFS daily
  ratios, after which DDFS daily exceeds dedup-1 daily (it sees global
  duplicates, the filter only adjacent ones).
"""

from conftest import print_table, save_series


def _series(result):
    rows = []
    for r in result.days:
        rows.append(
            {
                "day": r.day + 1,
                "dedup1_daily": r.dedup1_ratio_daily,
                "dedup1_cum": result.dedup1_ratio_cum(r.day),
                "dedup2_daily": r.dedup2_ratio_daily if r.dedup2_ran else None,
                "dedup2_cum": result.dedup2_ratio_cum(r.day),
                "debar_cum": result.debar_ratio_cum(r.day),
                "ddfs_daily": r.ddfs_ratio_daily,
                "ddfs_cum": result.ddfs_ratio_cum(r.day),
            }
        )
    return rows


def bench_fig07_compression_ratios(benchmark, hust_result, results_dir):
    rows = benchmark(_series, hust_result)
    final = rows[-1]

    # Anchor values (paper: 3.6 / 2.6 / 9.39).
    assert 3.0 < final["dedup1_cum"] < 4.4
    assert 2.0 < final["dedup2_cum"] < 3.2
    assert 7.5 < final["debar_cum"] < 11.5
    assert 7.5 < final["ddfs_cum"] < 11.5

    # Cumulative global ratios increase over time.
    debar_cum = [row["debar_cum"] for row in rows[1:]]
    ddfs_cum = [row["ddfs_cum"] for row in rows[1:]]
    assert debar_cum[-1] > debar_cum[0]
    assert ddfs_cum[-1] > ddfs_cum[0]

    # Dedup-1 daily is lower than DDFS daily after the first days (the
    # filter only sees adjacent-version duplicates).
    late = rows[7:]
    worse = sum(1 for row in late if row["dedup1_daily"] < row["ddfs_daily"])
    assert worse > 0.8 * len(late)

    # Dedup-2 ran on a subset of days, like the paper's 14 of 31.
    ran = [row for row in rows if row["dedup2_daily"] is not None]
    assert 6 <= len(ran) <= 20

    print_table(
        "Figure 7 — compression ratios (sampled days)",
        ["day", "d1 daily", "d1 cum", "d2 daily", "d2 cum", "DEBAR cum", "DDFS daily", "DDFS cum"],
        [
            (
                row["day"],
                f"{row['dedup1_daily']:.2f}",
                f"{row['dedup1_cum']:.2f}",
                "-" if row["dedup2_daily"] is None else f"{row['dedup2_daily']:.2f}",
                f"{row['dedup2_cum']:.2f}",
                f"{row['debar_cum']:.2f}",
                f"{row['ddfs_daily']:.2f}",
                f"{row['ddfs_cum']:.2f}",
            )
            for row in rows[::4] + [rows[-1]]
        ],
    )
    save_series(
        results_dir,
        "fig07_compression_ratios",
        {
            "rows": rows,
            "paper": {"dedup1_cum": 3.6, "dedup2_cum": 2.6, "overall": 9.39},
        },
    )
