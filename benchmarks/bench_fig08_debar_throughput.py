"""Figure 8: DEBAR throughput over the 31-day experiment.

Paper anchors: dedup-1 daily between 303 and ~1100 MB/s with a cumulative
of 641.6 MB/s (the filter keeps most bytes off the wire, so dedup-1 runs
far above the 210 MB/s NIC); overall cumulative throughput 329.2 MB/s.

Device times come from the paper-calibrated cost models, so the MB/s axis
is directly comparable.  Phase timings are read back from the telemetry
registry the session fixture attaches (``meter.seconds`` counters), not
re-derived from ad-hoc timers.
"""

import pytest
from conftest import print_table, volume_scale
from harness import phase_timings, save_result

from repro.util import MB, fmt_rate


def _series(result):
    rows = []
    for r in result.days:
        rows.append(
            {
                "day": r.day + 1,
                "dedup1_daily": r.dedup1_throughput,
                "dedup2_daily": r.dedup2_throughput if r.dedup2_ran else None,
            }
        )
    return rows


def bench_fig08_debar_throughput(benchmark, hust_result, results_dir):
    rows = benchmark(_series, hust_result)
    d1_cum = hust_result.dedup1_throughput_cum()
    d2_cum = hust_result.dedup2_throughput_cum()
    total_cum = hust_result.debar_total_throughput_cum()

    # Dedup-1 cumulative lands near the paper's 641.6 MB/s, and daily
    # values far exceed the NIC's 210 MB/s thanks to the filter.
    assert 450 * MB < d1_cum < 950 * MB
    d1_dailies = [row["dedup1_daily"] for row in rows]
    assert max(d1_dailies) > 2.5 * 210 * MB
    nic_beaten = sum(1 for t in d1_dailies if t > 210 * MB)
    assert nic_beaten > 0.8 * len(d1_dailies)

    # Overall cumulative near 329.2 MB/s; ordering d1 > total > d2.
    assert 230 * MB < total_cum < 450 * MB
    assert d1_cum > total_cum > d2_cum

    # Registry-sourced phase timings reproduce the per-day series sums:
    # the Meter mirrored every charge into meter.seconds{category}.
    phases = phase_timings(hust_result.telemetry)
    d1_time = sum(r.dedup1_time for r in hust_result.days)
    d2_time = sum(r.dedup2_time for r in hust_result.days)
    assert phases["dedup1"] == pytest.approx(d1_time, rel=1e-9)
    d2_phases = sum(phases.get(p, 0.0) for p in ("sil", "store", "siu", "scale"))
    assert d2_phases == pytest.approx(d2_time, rel=1e-9)

    print_table(
        "Figure 8 — DEBAR throughput (sampled days)",
        ["day", "dedup-1 daily", "dedup-2 daily"],
        [
            (
                row["day"],
                fmt_rate(row["dedup1_daily"]),
                "-" if row["dedup2_daily"] is None else fmt_rate(row["dedup2_daily"]),
            )
            for row in rows[::4] + [rows[-1]]
        ],
    )
    print(
        f"cumulative: dedup-1 {fmt_rate(d1_cum)} (paper 641.6MB/s), "
        f"dedup-2 {fmt_rate(d2_cum)}, total {fmt_rate(total_cum)} (paper 329.2MB/s)"
    )
    print("phase seconds (registry):",
          {k: round(v, 2) for k, v in sorted(phases.items())})
    save_result(
        results_dir,
        "fig08_debar_throughput",
        params={"scale": volume_scale(), "days": len(rows)},
        metrics={
            "rows": rows,
            "dedup1_cum_MBps": d1_cum / MB,
            "dedup2_cum_MBps": d2_cum / MB,
            "total_cum_MBps": total_cum / MB,
            "phase_seconds": phases,
            "paper": {"dedup1_cum_MBps": 641.6, "total_cum_MBps": 329.2},
        },
        registry=hust_result.telemetry,
    )
