"""Telemetry-backed measurement harness shared by the figure benchmarks.

Benchmarks used to hand-roll their own ``Meter`` bookkeeping and JSON
result writing.  This module centralises both:

- :func:`telemetry_session` gives each measured workload a fresh
  :class:`~repro.telemetry.registry.MetricsRegistry` (and tracer), so any
  ``Meter`` built inside the block mirrors its simulated-time charges into
  the registry's ``meter.seconds{category=...}`` counters.
- :func:`meter_seconds` / :func:`phase_timings` read those counters back —
  the single source of phase timing for benchmark reports.
- :func:`save_result` persists the shared result schema
  ``{bench, params, metrics, telemetry}`` under ``results/``.

``print_table``, ``save_series`` and ``volume_scale`` moved here from
``conftest.py`` (which re-exports them for existing imports).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.telemetry.export import build_snapshot
from repro.telemetry.registry import MetricsRegistry, get_registry, set_registry
from repro.telemetry.tracing import Tracer, get_tracer, set_tracer

RESULTS_DIR = Path(__file__).parent / "results"

#: Phase name -> prefixes of ``Meter`` categories charged to that phase.
PHASE_CATEGORIES = {
    "dedup1": ("dedup1",),
    "sil": ("sil",),
    "store": ("store",),
    "siu": ("siu",),
    "scale": ("scale",),
    "exchange": ("exchange",),
    "restore": ("restore",),
    "ddfs": ("ddfs",),
}


def volume_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@contextmanager
def telemetry_session() -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """A fresh live registry + tracer for one measured workload.

    Swaps the process-wide telemetry in for the duration of the block (so
    components constructed inside bind live instruments) and restores the
    previous registry/tracer afterwards.
    """
    prev_registry, prev_tracer = get_registry(), get_tracer()
    registry, tracer = MetricsRegistry(), Tracer()
    set_registry(registry)
    set_tracer(tracer)
    try:
        yield registry, tracer
    finally:
        set_registry(prev_registry)
        set_tracer(prev_tracer)


def meter_seconds(
    registry: MetricsRegistry, prefix: Optional[str] = None
) -> Dict[str, float]:
    """Charged simulated seconds per ``Meter`` category, from the registry.

    ``prefix`` keeps only categories equal to it or underneath it
    (``prefix="siu"`` matches ``siu.read``, ``siu.write``, ...).
    """
    out: Dict[str, float] = {}
    for family in registry.families():
        if family.name != "meter.seconds":
            continue
        for labels, child in family.samples():
            category = labels.get("category", "")
            if prefix is not None:
                if not (category == prefix or category.startswith(prefix + ".")):
                    continue
            out[category] = out.get(category, 0.0) + child.value
    return out


def phase_timings(registry: MetricsRegistry) -> Dict[str, float]:
    """Pipeline phase -> charged seconds, aggregated from ``meter.seconds``.

    Categories map to phases by their first dotted component (see
    ``PHASE_CATEGORIES``); unknown categories land under ``other``.
    """
    by_prefix = {
        prefix: phase
        for phase, prefixes in PHASE_CATEGORIES.items()
        for prefix in prefixes
    }
    phases: Dict[str, float] = {}
    for category, seconds in meter_seconds(registry).items():
        head = category.split(".", 1)[0]
        phase = by_prefix.get(head, "other")
        phases[phase] = phases.get(phase, 0.0) + seconds
    return phases


def save_result(
    results_dir: Path,
    bench: str,
    params: dict,
    metrics: dict,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Path:
    """Write one benchmark's result in the shared schema.

    ``{bench, params, metrics, telemetry}`` — ``telemetry`` is the full
    snapshot document when a registry is given, else ``None``.
    """
    payload = {
        "bench": bench,
        "params": params,
        "metrics": metrics,
        "telemetry": build_snapshot(registry, tracer)
        if registry is not None
        else None,
    }
    path = results_dir / f"{bench}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def save_series(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist one reproduced figure/table as JSON under results/."""
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def print_table(title: str, headers, rows) -> None:
    """Render a reproduced table to stdout (visible with pytest -s)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
