"""Figure 10: SIL and SIU wall time vs disk index size (32–512 GB).

Paper anchors: SIL 2.53 min at 32 GB growing to 38.98 min at 512 GB; SIU
6.16 min growing to 97.07 min — linear in index size, independent of how
many fingerprints are processed.

Two parts: the paper-scale curve from the calibrated model, and a *real*
execution check — actual SIL/SIU runs over a materialised index at two
sizes, verifying measured charged time scales linearly and is flat in
batch size.
"""

import pytest
from conftest import print_table
from harness import meter_seconds, save_result, telemetry_session

from repro.analysis import sil_time, siu_time
from repro.core.disk_index import DiskIndex
from repro.core.sil import SequentialIndexLookup
from repro.core.siu import SequentialIndexUpdate
from repro.core.fingerprint import SyntheticFingerprints
from repro.simdisk import Meter, SimClock, paper_index_disk
from repro.util import GB

PAPER_POINTS_MIN = {32: (2.53, 6.16), 512: (38.98, 97.07)}


def _curve():
    return [
        {
            "index_gb": s,
            "sil_min": sil_time(s * GB) / 60,
            "siu_min": siu_time(s * GB) / 60,
        }
        for s in (32, 64, 128, 256, 512)
    ]


def bench_fig10_curve(benchmark, results_dir):
    rows = benchmark(_curve)
    by_size = {row["index_gb"]: row for row in rows}
    for size, (sil_paper, siu_paper) in PAPER_POINTS_MIN.items():
        assert by_size[size]["sil_min"] == pytest.approx(sil_paper, rel=0.08)
        assert by_size[size]["siu_min"] == pytest.approx(siu_paper, rel=0.08)
    # Linearity: doubling the index doubles both times.
    for a, b in zip(rows, rows[1:]):
        assert b["sil_min"] == pytest.approx(2 * a["sil_min"], rel=0.02)
        assert b["siu_min"] == pytest.approx(2 * a["siu_min"], rel=0.02)

    print_table(
        "Figure 10 — SIL/SIU time vs index size",
        ["index", "SIL (min)", "SIU (min)", "paper SIL", "paper SIU"],
        [
            (
                f"{row['index_gb']}GB",
                f"{row['sil_min']:.2f}",
                f"{row['siu_min']:.2f}",
                f"{PAPER_POINTS_MIN[row['index_gb']][0]:.2f}" if row["index_gb"] in PAPER_POINTS_MIN else "-",
                f"{PAPER_POINTS_MIN[row['index_gb']][1]:.2f}" if row["index_gb"] in PAPER_POINTS_MIN else "-",
            )
            for row in rows
        ],
    )
    save_result(
        results_dir,
        "fig10_sil_siu_time",
        params={"index_sizes_gb": [32, 64, 128, 256, 512]},
        metrics={"rows": rows, "paper": PAPER_POINTS_MIN},
    )


def _executed_times(n_bits: int, batch: int):
    """Charged SIL/SIU time from real executions on a materialised index.

    The ``Meter`` mirrors every charge into the session registry's
    ``meter.seconds{category}`` counters; timings are read back from
    there, the same path the CLI and Figure 8 use.
    """
    disk = paper_index_disk()
    gen = SyntheticFingerprints(0)
    with telemetry_session() as (registry, _tracer):
        index = DiskIndex(n_bits, bucket_bytes=512)
        SequentialIndexLookup(index).run(
            gen.fresh(batch), meter=Meter(SimClock()), disk=disk
        )
        SequentialIndexUpdate(index).run(
            {fp: 1 for fp in gen.fresh(batch)}, meter=Meter(SimClock()), disk=disk
        )
        sil = sum(meter_seconds(registry, prefix="sil.scan").values())
        siu = sum(meter_seconds(registry, prefix="siu").values())
    return sil, siu


def bench_fig10_execution_scaling(benchmark, results_dir):
    def run():
        sil_small, siu_small = _executed_times(10, 500)
        sil_large, siu_large = _executed_times(13, 500)
        sil_alt, _ = _executed_times(10, 2000)
        return sil_small, siu_small, sil_large, siu_large, sil_alt

    sil_small, siu_small, sil_large, siu_large, sil_alt = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Linear in index size: the *incremental* cost of 7 more index-sizes'
    # worth of buckets is pure transfer time at the calibrated scan rate
    # (one fixed positioning delay rides along at any size).
    disk = paper_index_disk()
    extra_bytes = (1 << 13) * 512 - (1 << 10) * 512
    assert sil_large - sil_small == pytest.approx(extra_bytes / disk.seq_read_rate, rel=0.01)
    assert siu_large - siu_small == pytest.approx(
        extra_bytes / disk.seq_read_rate + extra_bytes / disk.seq_write_rate, rel=0.01
    )
    # ...and SIL time is independent of the number of fingerprints processed.
    assert sil_alt == pytest.approx(sil_small, rel=1e-6)
    save_result(
        results_dir,
        "fig10_execution_scaling",
        params={"n_bits": [10, 13], "batches": [500, 2000]},
        metrics={
            "sil_delta_seconds": sil_large - sil_small,
            "siu_delta_seconds": siu_large - siu_small,
            "sil_batch_invariance": sil_alt / sil_small,
        },
    )
