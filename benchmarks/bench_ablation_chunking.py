"""Ablation: chunking algorithm (CDC vs fixed-size vs TTTD).

Two questions, per Section 3.2's argument for CDC:

1. **Dedup quality under edits** — chunk a buffer, prepend a few bytes and
   edit the middle, re-chunk: what fraction of chunks survive?  Fixed-size
   blocking collapses; CDC and TTTD survive.
2. **Chunking speed** — real wall-clock MB/s of the vectorised Rabin path
   (this is actual Python+NumPy performance, not simulated time).
"""

import numpy as np
from conftest import print_table, save_series

from repro.chunking import ContentDefinedChunker, FixedSizeChunker, TTTDChunker
from repro.util import MB


def _payload(n=512 * 1024, seed=3):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


def _edit(data: bytes) -> bytes:
    edited = bytearray(data)
    edited[:0] = b"PREPENDED HEADER"
    mid = len(edited) // 2
    edited[mid : mid + 64] = bytes(64)
    return bytes(edited)


def _survival(chunker, data, edited) -> float:
    before = {c.fingerprint for c in chunker.chunks(data)}
    after = {c.fingerprint for c in chunker.chunks(edited)}
    return len(before & after) / len(before)


def bench_ablation_chunking_quality(benchmark, results_dir):
    data = _payload()
    edited = _edit(data)
    chunkers = {
        "cdc": ContentDefinedChunker(avg_bits=10, min_size=256, max_size=4096),
        "tttd": TTTDChunker(avg_bits=10, min_size=256, max_size=4096),
        "fixed": FixedSizeChunker(1024),
    }

    def run():
        return {name: _survival(c, data, edited) for name, c in chunkers.items()}

    survival = benchmark.pedantic(run, rounds=1, iterations=1)
    assert survival["cdc"] > 0.75
    assert survival["tttd"] > 0.75
    assert survival["fixed"] < 0.10  # the fixed-size pathology

    print_table(
        "Ablation — chunk survival after prepend+edit",
        ["chunker", "surviving chunks"],
        [(name, f"{frac:.1%}") for name, frac in survival.items()],
    )
    save_series(results_dir, "ablation_chunking_quality", survival)


def bench_chunking_speed_vectorised(benchmark):
    """Real wall-clock throughput of the vectorised CDC cut-point pass."""
    chunker = ContentDefinedChunker()
    data = _payload(2 * MB, seed=5)
    result = benchmark(chunker.cut_points, data)
    assert result[-1] == len(data)


def bench_chunking_speed_streaming(benchmark):
    """The byte-at-a-time reference implementation, for the speed ratio."""
    chunker = ContentDefinedChunker()
    data = _payload(128 * 1024, seed=6)
    result = benchmark(chunker.cut_points_streaming, data)
    assert result[-1] == len(data)


def bench_chunking_speed_fixed(benchmark):
    chunker = FixedSizeChunker()
    data = _payload(2 * MB, seed=7)
    result = benchmark(chunker.cut_points, data)
    assert result[-1] == len(data)
