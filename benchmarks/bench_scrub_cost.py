"""Scrub-cost and CRC-framing-overhead benchmarks (real wall time).

The media scrubber (DESIGN.md section 10) is a background maintenance
sweep: it must scale linearly with the number of containers and stay
cheap enough to run continuously at a modest rate cap.  These benches
track its real Python cost against vault size.

The second half measures what the checksummed framing costs the *write*
path.  Figure 8's throughput axis comes from the device cost models,
which charge time proportional to bytes written — so the framing impact
on ``bench_fig08`` is the byte inflation of the framed container image
over the legacy layout (superblock + 4 CRC bytes per record), which must
stay under 5%.  The real CPU cost of computing the CRCs (pure-python
slicing-by-8 unless a native crc32c module is present) is reported
alongside so a checksum-speed regression is visible, but it is not what
moves the modeled figure.
"""

import random
import shutil
import time

from conftest import print_table, save_series

from repro.core.fingerprint import fingerprint
from repro.durability.crc import crc32c
from repro.durability.scrubber import Scrubber
from repro.storage.container import Container, ContainerWriter
from repro.system import DebarVault
from repro.workloads import FileTreeGenerator

_CONTAINER_BYTES = 64 * 1024


def _built_vault(root, n_files, seed=7):
    """A real on-disk vault holding one backup of ``n_files`` files."""
    src = root / "src"
    FileTreeGenerator(seed=seed).generate(
        src, n_files=n_files, min_size=24 * 1024, max_size=64 * 1024
    )
    vault = DebarVault(root / "vault", container_bytes=_CONTAINER_BYTES)
    vault.backup("bench", [src])
    return vault


def bench_scrub_full_pass(benchmark, tmp_path):
    """One unbudgeted read-only scrub of a ~1 MB vault."""
    vault = _built_vault(tmp_path, n_files=16)

    def sweep():
        return Scrubber(vault).run()

    report = benchmark(sweep)
    assert report.clean and not report.partial


def test_scrub_throughput_scaling(results_dir, tmp_path):
    """Scrub wall time vs container count: the sweep must stay ~linear.

    One timed pass per size — enough to expose super-linear behaviour
    (e.g. the reinsert sweep accidentally running per bucket) while
    keeping the tier-2 run short.
    """
    rows = []
    series = []
    for n_files in (8, 24, 72):
        root = tmp_path / f"n{n_files}"
        root.mkdir()
        vault = _built_vault(root, n_files=n_files)
        n_containers = sum(1 for _ in vault.repository.container_ids())
        t0 = time.perf_counter()
        report = Scrubber(vault).run()
        t = time.perf_counter() - t0
        assert report.clean and not report.partial
        vault.close()
        shutil.rmtree(root)
        mb = report.bytes_read / 1e6
        rows.append(
            (n_files, n_containers, report.records_checked,
             f"{t * 1e3:.1f}", f"{mb / t:.1f}")
        )
        series.append(
            {
                "files": n_files,
                "containers": n_containers,
                "records": report.records_checked,
                "bytes_read": report.bytes_read,
                "scrub_ms": t * 1e3,
                "mb_per_s": mb / t,
            }
        )
    print_table(
        "Scrub cost vs vault size",
        ("files", "containers", "records", "scrub ms", "MB/s"),
        rows,
    )
    save_series(results_dir, "scrub_cost", {"points": series})
    # 9x the input volume must not cost more than ~40x the smallest pass
    # (generous bound: catches accidental quadratic behaviour only).
    assert series[-1]["scrub_ms"] < 40 * max(series[0]["scrub_ms"], 1.0)


def _filled_container(cid, n_chunks=7, chunk_size=8192, seed=1):
    rng = random.Random(seed)
    writer = ContainerWriter(_CONTAINER_BYTES)
    for _ in range(n_chunks):
        data = rng.randbytes(chunk_size)
        writer.add(fingerprint(data), data=data)
    return writer.seal(cid)


def test_crc_framing_write_overhead(results_dir):
    """Framed-image byte inflation vs the legacy layout stays under 5%.

    The legacy container image spent 4 header bytes plus 28 bytes per
    record on metadata; the framed format spends a fixed superblock plus
    32 bytes per record (the extra 4 is the payload CRC).  Containers
    are fixed-size either way, so framing costs payload capacity (more
    containers per backed-up byte), and the device models behind
    ``bench_fig08`` charge write time per container byte — this ratio
    bounds the framing cost on the modeled throughput figures.
    """
    containers = [_filled_container(cid, seed=cid) for cid in range(8)]
    framed_bytes = 0
    legacy_bytes = 0
    data_bytes = 0
    for c in containers:
        # Both layouts zero-pad to the fixed container capacity, so the
        # comparison is on the unpadded image: the bytes the format
        # actually claims from that capacity (metadata growth shrinks
        # the payload space left per container).
        framed_bytes += c.metadata_bytes + len(c.data)
        # Legacy layout: 4-byte count header + 28 bytes/record + payload.
        legacy_bytes += 4 + 28 * len(c.records) + len(c.data)
        data_bytes += len(c.data)

    inflation = framed_bytes / legacy_bytes - 1.0

    # Real CPU cost of the checksums: serialize with CRCs to compute
    # (fresh records, crc=None) vs already-stamped records (a reopened
    # container re-serializing after repair).
    fresh = [_filled_container(cid, seed=cid) for cid in range(8)]
    t0 = time.perf_counter()
    for c in fresh:
        c.serialize()  # computes one CRC per payload + metadata CRC
    t_compute = time.perf_counter() - t0
    stamped = [
        Container.deserialize(c.container_id, c.serialize(), _CONTAINER_BYTES)
        for c in containers
    ]
    t0 = time.perf_counter()
    for c in stamped:
        c.serialize()  # CRCs carried over, no payload checksum work
    t_stamped = time.perf_counter() - t0
    crc_s_per_mb = max(t_compute - t_stamped, 0.0) / (data_bytes / 1e6)

    # Reference point: raw crc32c throughput on this host.
    blob = b"\xa5" * (1 << 20)
    t0 = time.perf_counter()
    crc32c(blob)
    crc_mb_per_s = 1.0 / (time.perf_counter() - t0)

    print_table(
        "CRC framing write overhead",
        ("metric", "value"),
        [
            ("framed bytes", framed_bytes),
            ("legacy bytes", legacy_bytes),
            ("byte inflation", f"{inflation * 100:.3f}%"),
            ("crc compute s/MB", f"{crc_s_per_mb:.4f}"),
            ("crc32c MB/s", f"{crc_mb_per_s:.1f}"),
        ],
    )
    save_series(
        results_dir,
        "crc_framing_overhead",
        {
            "framed_bytes": framed_bytes,
            "legacy_bytes": legacy_bytes,
            "data_bytes": data_bytes,
            "byte_inflation": inflation,
            "crc_seconds_per_mb": crc_s_per_mb,
            "crc32c_mb_per_s": crc_mb_per_s,
        },
    )
    assert inflation < 0.05, f"framed image {inflation * 100:.2f}% over legacy"
