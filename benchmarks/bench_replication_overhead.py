"""Replication overhead: inline backup cost at RF=1/2/3 (real wall time).

The replication queue ships sealed containers *after* dedup-2 commits, so
the inline backup path should cost the same whether a run is replicated
to zero, one or two peers — the shipping happens on worker threads the
client never waits for.  This bench backs up the same synthetic dataset
at RF=1 (no replication), RF=2 and RF=3 against live loopback peers and
reports inline throughput, drain time and bytes on the wire per factor.

The asynchrony claim gets a direct adversarial probe: one more RF=2 run
with the queue deliberately stalled (``Replicator.pause``).  The backup
must complete at baseline speed while ``repl.lag`` exposes the growing
backlog; the stall regression is recorded as ``stall_regression_pct``
(budget: < 5% — the hard assert is set looser so a noisy CI box cannot
flake, a synchronous-replication bug shows up as ~2x, not 1.1x).

No paper counterpart; replication is our extension (DESIGN.md §11).
"""

import random
import threading
import time
from pathlib import Path

from harness import save_result, telemetry_session
from conftest import print_table, volume_scale

from repro.net.server import serve_vault
from repro.replication.replicator import Replicator
from repro.system.vault import DebarVault

#: Dataset volume at scale 1.0 (files x bytes each, ~12 MB).
N_FILES = 12
FILE_BYTES = 1 << 20
REPEATS = 3  # best-of to damp scheduler noise


def _write_dataset(root: Path, scale: float) -> Path:
    rng = random.Random(1511)
    data = root / "data"
    data.mkdir()
    for i in range(max(2, int(N_FILES * scale))):
        head = rng.randbytes(FILE_BYTES // 2)
        (data / f"f{i:03d}.bin").write_bytes(head + head[: FILE_BYTES // 2])
    return data


def _start_peer(tmp: Path, name: str):
    vault = DebarVault(tmp / f"peer-{name}")
    server = serve_vault(vault, node_name=name)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return vault, server


def _stop_peer(vault, server) -> None:
    server.shutdown()
    server.server_close()
    vault.close()


def _measure(tmp: Path, tag: str, data: Path, n_peers: int, registry,
             stalled: bool = False):
    """One replicated backup; returns (inline_s, drain_s, run, lag_peak)."""
    peers = {}
    handles = []
    for k in range(n_peers):
        name = f"peer{k}"
        pv, ps = _start_peer(tmp / tag, name)
        handles.append((pv, ps))
        peers[name] = ("127.0.0.1", ps.port)
    vault = DebarVault(tmp / tag / "vault")
    replicator = None
    lag_peak = 0
    try:
        if peers:
            replicator = Replicator(
                vault, "origin", peers,
                replication_factor=n_peers + 1, registry=registry,
            )
            vault.replicator = replicator
            if stalled:
                replicator.pause()
        t0 = time.perf_counter()
        run = vault.backup("bench", [str(data)])
        inline_s = time.perf_counter() - t0
        drain_s = 0.0
        if replicator is not None:
            lag_peak = replicator.lag()
            if stalled:
                replicator.resume()
            t0 = time.perf_counter()
            assert replicator.drain(timeout=120.0), "replication never drained"
            drain_s = time.perf_counter() - t0
            for pv, ps in handles:
                shipped = ps.replica_store.container_ids("origin")
                assert shipped == vault.repository.container_ids(), (
                    f"{tag}: peer holds {len(shipped)} containers"
                )
        return inline_s, drain_s, run, lag_peak
    finally:
        if replicator is not None:
            vault.replicator = None
            replicator.close(drain=False)
        vault.close()
        for pv, ps in handles:
            _stop_peer(pv, ps)


def bench_replication_overhead(results_dir, tmp_path):
    scale = volume_scale()
    data = _write_dataset(tmp_path, scale)
    logical = sum(p.stat().st_size for p in data.iterdir())

    configs = [("rf1", 0, False), ("rf2", 1, False), ("rf3", 2, False),
               ("rf2-stalled", 1, True)]
    best = {}
    with telemetry_session() as (registry, tracer):
        for tag, n_peers, stalled in configs:
            runs = []
            for rep in range(REPEATS):
                runs.append(_measure(
                    tmp_path, f"{tag}-{rep}", data, n_peers, registry,
                    stalled=stalled,
                ))
            inline_s = min(r[0] for r in runs)
            drain_s = min(r[1] for r in runs)
            best[tag] = {
                "inline_seconds": inline_s,
                "drain_seconds": drain_s,
                "inline_mb_per_s": logical / inline_s / 1e6,
                "lag_peak": max(r[3] for r in runs),
            }

    # The stalled queue really was stalled (lag visible), yet the backup
    # finished — the inline path never waits on a peer.
    assert best["rf2-stalled"]["lag_peak"] > 0
    assert best["rf2"]["drain_seconds"] > 0.0
    stall_ratio = (best["rf2-stalled"]["inline_seconds"]
                   / best["rf1"]["inline_seconds"])
    rf2_ratio = best["rf2"]["inline_seconds"] / best["rf1"]["inline_seconds"]
    # Sanity floor, not the 5% budget: synchronous shipping would be >2x.
    assert stall_ratio < 1.5, f"stalled-queue backup regressed {stall_ratio:.2f}x"
    assert rf2_ratio < 1.5, f"RF=2 inline backup regressed {rf2_ratio:.2f}x"

    metrics = {row["name"]: row for row in registry.snapshot_metrics()}
    shipped_bytes = sum(
        s["value"] for s in metrics["repl.bytes_shipped"]["samples"]
    )
    assert shipped_bytes > 0

    print_table(
        "replication overhead (inline backup path)",
        ["config", "inline MB/s", "inline s", "drain s", "lag peak"],
        [
            (tag, f"{best[tag]['inline_mb_per_s']:,.1f}",
             f"{best[tag]['inline_seconds']:.3f}",
             f"{best[tag]['drain_seconds']:.3f}",
             best[tag]["lag_peak"])
            for tag, _, _ in configs
        ],
    )
    save_result(
        results_dir,
        "replication_overhead",
        params={"scale": scale, "files": len(list(data.iterdir())),
                "logical_bytes": logical, "repeats": REPEATS},
        metrics={
            **{f"{tag}_{k}": v for tag in best for k, v in best[tag].items()},
            "stall_regression_pct": (stall_ratio - 1.0) * 100.0,
            "rf2_regression_pct": (rf2_ratio - 1.0) * 100.0,
            "total_shipped_bytes": shipped_bytes,
        },
        registry=registry,
        tracer=tracer,
    )
