"""Ablation: defragmentation (Section 6.3).

Cross-stream de-duplication scatters a stream's chunks over repository
nodes; restores then pay a network hop per remote container.  The paper's
defragmentation "automatically aggregates file chunks to one or few
storage nodes ... retaining high read throughput".  This bench restores a
deliberately fragmented run before and after a defragmentation pass and
compares simulated restore time and remote-read share.
"""

from conftest import print_table, save_series

from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.util import fmt_duration


def _fragmented_cluster():
    cfg = BackupServerConfig(
        index_n_bits=10, index_bucket_bytes=512, container_bytes=256 * 1024,
        filter_capacity=1 << 14, cache_capacity=1 << 18, lpc_containers=4,
    )
    cluster = DebarCluster(w_bits=2, config=cfg)
    gens = [SyntheticFingerprints(i) for i in range(4)]
    shared = gens[0].fresh(600)
    assignments = []
    jobs = []
    for i in range(4):
        job = cluster.director.define_job(f"j{i}", f"c{i}", [])
        jobs.append(job)
        own = gens[i].fresh(600) if i else shared
        stream = [(fp, 8192) for fp in (own + shared if i else own)]
        assignments.append((job, stream))
    cluster.backup_streams(assignments)
    cluster.run_dedup2(force_psiu=True)
    # Job 1's run mixes its own chunks (on its server's node) with the
    # shared chunks (stored by job 0's server): fragmented.
    run = cluster.director.chain(jobs[1]).latest()
    return cluster, run


def _restore_time(cluster, run):
    server = run.server
    fps = []
    for entry in cluster.director.metadata.files_for_run(run.run_id):
        fps.extend(entry.fingerprints)
    # Cold cache for a fair comparison.
    cluster.servers[server].chunk_store.lpc._groups.clear()
    cluster.servers[server].chunk_store.lpc._fp_to_cid.clear()
    lane = cluster.servers[server].clock
    remote_key = "restore.remote_container"
    remote0 = cluster.servers[server].meter.by_category.get(remote_key, 0.0)
    t0 = lane.now
    for fp in fps:
        cluster.read_chunk(fp, via_server=server)
    elapsed = lane.now - t0
    remote = cluster.servers[server].meter.by_category.get(remote_key, 0.0) - remote0
    return elapsed, remote


def bench_ablation_defrag(benchmark, results_dir):
    def run():
        cluster, job_run = _fragmented_cluster()
        before_time, before_remote = _restore_time(cluster, job_run)
        report = cluster.defragment_run(job_run.run_id, threshold=0.05)
        after_time, after_remote = _restore_time(cluster, job_run)
        return {
            "fragmentation_before": report.fragmentation_before,
            "fragmentation_after": report.fragmentation_after,
            "moves": report.moves,
            "restore_before_s": before_time,
            "restore_after_s": after_time,
            "remote_before_s": before_remote,
            "remote_after_s": after_remote,
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)

    assert r["fragmentation_before"] > 0.05
    assert r["fragmentation_after"] == 0.0
    assert r["moves"] > 0
    # Restores get faster and the remote-read share collapses.
    assert r["restore_after_s"] < r["restore_before_s"]
    assert r["remote_after_s"] < 0.2 * max(r["remote_before_s"], 1e-9)

    print_table(
        "Ablation — defragmentation (Section 6.3)",
        ["metric", "before", "after"],
        [
            ("stream fragmentation", f"{r['fragmentation_before']:.1%}", f"{r['fragmentation_after']:.1%}"),
            ("restore time", fmt_duration(r["restore_before_s"]), fmt_duration(r["restore_after_s"])),
            ("remote-read time", fmt_duration(r["remote_before_s"]), fmt_duration(r["remote_after_s"])),
        ],
    )
    save_series(results_dir, "ablation_defrag", r)
