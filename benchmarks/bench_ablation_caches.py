"""Ablations: LPC capacity (restore path) and DDFS write-buffer size.

* The LPC sweep shows the knee the paper's 99.3 % elimination sits past:
  once the cache covers a stream's container working set, restores cost
  one random lookup per container instead of one per chunk.
* The write-buffer sweep shows why DDFS pauses hurt: a smaller buffer
  flushes (sequentially rewrites the index) more often, degrading inline
  throughput — the dips of Figure 9.
"""

from conftest import print_table, save_series

from repro.baselines.ddfs import DdfsServer
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import SyntheticFingerprints
from repro.core.tpds import TwoPhaseDeduplicator
from repro.server.chunk_store import ChunkStore
from repro.storage import ChunkRepository
from repro.util import fmt_rate


def _stored_tpds(chunks=2000):
    tpds = TwoPhaseDeduplicator(
        DiskIndex(10, bucket_bytes=512),
        ChunkRepository(),
        filter_capacity=1 << 14,
        cache_capacity=1 << 18,
        container_bytes=512 * 1024,  # ~63 chunks per container
    )
    fps = SyntheticFingerprints(0).fresh(chunks)
    tpds.dedup1_backup([(fp, 8192) for fp in fps])
    tpds.dedup2()
    return tpds, fps


def bench_ablation_lpc_capacity(benchmark, results_dir):
    tpds, fps = _stored_tpds()
    capacities = (1, 4, 16, 64)

    def run():
        rows = {}
        for capacity in capacities:
            store = ChunkStore(tpds, lpc_containers=capacity)
            t0 = tpds.clock.now
            for fp in fps:  # sequential restore of the whole stream
                store.read_chunk(fp)
            rows[capacity] = {
                "hit_rate": store.lpc_hit_rate,
                "random_lookups": store.random_lookups,
                "time": tpds.clock.now - t0,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # Hit rate is monotone in capacity and passes 98 % once the cache
    # covers the working set; lookups collapse to ~one per container.
    hit_rates = [rows[c]["hit_rate"] for c in capacities]
    assert hit_rates == sorted(hit_rates)
    assert rows[64]["hit_rate"] > 0.98
    containers = len(tpds.repository)
    assert rows[64]["random_lookups"] <= containers + 1
    # Even a single-container LPC beats nothing for a SISL stream.
    assert rows[1]["hit_rate"] > 0.9

    print_table(
        "Ablation — LPC capacity on sequential restore",
        ["containers cached", "hit rate", "random lookups", "restore time (s)"],
        [
            (c, f"{rows[c]['hit_rate']:.2%}", rows[c]["random_lookups"],
             f"{rows[c]['time']:.3f}")
            for c in capacities
        ],
    )
    save_series(results_dir, "ablation_lpc_capacity", {str(c): rows[c] for c in capacities})


def bench_ablation_ddfs_write_buffer(benchmark, results_dir):
    fps = SyntheticFingerprints(1).fresh(3000)
    stream = [(fp, 8192) for fp in fps]
    buffers = (64, 512, 1 << 14)

    def run():
        rows = {}
        for capacity in buffers:
            server = DdfsServer(
                DiskIndex(10, bucket_bytes=512),
                ChunkRepository(),
                bloom_bits=1 << 18,
                lpc_containers=16,
                write_buffer_capacity=capacity,
                container_bytes=512 * 1024,
            )
            stats = server.backup_stream(stream)
            rows[capacity] = {
                "flushes": stats.buffer_flushes,
                "throughput": stats.throughput,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Smaller buffer -> more pauses -> lower inline throughput.
    assert rows[64]["flushes"] > rows[512]["flushes"] > rows[1 << 14]["flushes"]
    assert rows[64]["throughput"] < rows[1 << 14]["throughput"]

    print_table(
        "Ablation — DDFS write-buffer size",
        ["buffer (fps)", "flush pauses", "inline throughput"],
        [
            (c, rows[c]["flushes"], fmt_rate(rows[c]["throughput"]))
            for c in buffers
        ],
    )
    save_series(results_dir, "ablation_ddfs_write_buffer", {str(c): rows[c] for c in buffers})
