"""Micro-benchmarks of the core data structures (real wall time).

These are the only benches measuring *Python* performance rather than
simulated device time: the constant factors a user of this library
actually pays.  No paper counterpart; tracked to catch regressions.
"""

import numpy as np

from repro.baselines import BloomFilter
from repro.core.disk_index import DiskIndex, pack_bucket, unpack_bucket
from repro.core.fingerprint import SyntheticFingerprints, fingerprint
from repro.core.preliminary_filter import PreliminaryFilter
from repro.core.sil import SequentialIndexLookup
from repro.core.siu import SequentialIndexUpdate
from repro.chunking.rabin import window_fingerprints


def bench_sha1_fingerprinting(benchmark):
    data = np.random.default_rng(0).integers(0, 256, 8192, dtype=np.uint8).tobytes()
    benchmark(fingerprint, data)


def bench_rabin_window_pass(benchmark):
    data = np.random.default_rng(1).integers(0, 256, 256 * 1024, dtype=np.uint8).tobytes()
    benchmark(window_fingerprints, data)


def bench_index_insert(benchmark):
    fps = SyntheticFingerprints(0).fresh(50_000)
    counter = [0]

    def insert():
        # A fresh index every ~2000 inserts keeps utilization realistic.
        i = counter[0]
        if i % 2000 == 0:
            bench_index_insert.index = DiskIndex(10, bucket_bytes=512)
        bench_index_insert.index.insert(fps[i % len(fps)], i)
        counter[0] += 1

    benchmark(insert)


def bench_index_lookup(benchmark):
    index = DiskIndex(10, bucket_bytes=512)
    fps = SyntheticFingerprints(1).fresh(2000)
    for i, fp in enumerate(fps):
        index.insert(fp, i)
    it = [0]

    def lookup():
        fp = fps[it[0] % len(fps)]
        it[0] += 1
        return index.lookup(fp)

    benchmark(lookup)


def bench_bucket_serialization(benchmark):
    entries = [(fp, i) for i, fp in enumerate(SyntheticFingerprints(2).fresh(20))]

    def roundtrip():
        return unpack_bucket(pack_bucket(entries, 512))

    benchmark(roundtrip)


def bench_bloom_add_and_query(benchmark):
    bloom = BloomFilter(1 << 20, k_hashes=4)
    fps = SyntheticFingerprints(3).fresh(5000)
    bloom.add_many(fps[:2500])
    it = [0]

    def op():
        fp = fps[it[0] % len(fps)]
        it[0] += 1
        return fp in bloom

    benchmark(op)


def bench_preliminary_filter_check(benchmark):
    prefilter = PreliminaryFilter(1 << 16)
    fps = SyntheticFingerprints(4).fresh(10_000)
    prefilter.preload(fps[:5000])
    it = [0]

    def check():
        fp = fps[it[0] % len(fps)]
        it[0] += 1
        return prefilter.check(fp)

    benchmark(check)


def bench_sil_sweep_real_time(benchmark):
    """Wall time of a real 10k-fingerprint SIL over a 2^12-bucket index."""
    index = DiskIndex(12, bucket_bytes=512)
    resident = SyntheticFingerprints(5).fresh(5000)
    for i, fp in enumerate(resident):
        index.insert(fp, i)
    probe = resident[:5000] + SyntheticFingerprints(6).fresh(5000)

    def sweep():
        return SequentialIndexLookup(index).run(probe)

    result = benchmark(sweep)
    assert result.duplicate_fingerprints == 5000


def bench_siu_sweep_real_time(benchmark):
    """Wall time of a real 10k-entry SIU into a 2^12-bucket index."""
    gen = SyntheticFingerprints(7)

    def sweep():
        index = DiskIndex(12, bucket_bytes=512)
        entries = {fp: 1 for fp in gen.range(0, 10_000)}
        return SequentialIndexUpdate(index).run(entries)

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert result.fingerprints_registered == 10_000
