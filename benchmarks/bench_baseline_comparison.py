"""Headline comparison: DEBAR vs DDFS vs Venti on one nightly-chain workload.

The motivating ordering of Sections 1-2 in one table: random-index dedup
(Venti, ~6.5 MB/s in its paper) is two orders of magnitude behind; DDFS
rides the NIC; DEBAR clears the NIC by filtering duplicates client-side.
All three must store byte-identical physical data.
"""

from conftest import print_table, save_series

from repro.baselines import DdfsServer, VentiServer
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.storage import ChunkRepository
from repro.system import DebarSystem
from repro.util import MB, fmt_rate


def _sessions(n_sessions=5, chunks=3000, dup=0.9):
    gen = SyntheticFingerprints(0)
    out = [gen.fresh(chunks)]
    keep = int(chunks * dup)
    for _ in range(n_sessions - 1):
        out.append(out[-1][:keep] + gen.fresh(chunks - keep))
    return [[(fp, 8192) for fp in s] for s in out]


def bench_baseline_comparison(benchmark, results_dir):
    def run():
        sessions = _sessions()
        logical = sum(size for s in sessions for _, size in s)

        debar = DebarSystem(
            config=BackupServerConfig(
                index_n_bits=10, index_bucket_bytes=512, container_bytes=512 * 1024,
                filter_capacity=1 << 14, cache_capacity=1 << 18, siu_every=2,
            )
        )
        job = debar.define_job("nightly", client="host")
        for t, session in enumerate(sessions):
            debar.backup_stream(job, session, timestamp=float(t), auto_dedup2=False)
            debar.run_dedup2(force_siu=(t == len(sessions) - 1))

        ddfs = DdfsServer(
            DiskIndex(10, bucket_bytes=512), ChunkRepository(),
            bloom_bits=1 << 18, lpc_containers=64,
            write_buffer_capacity=1 << 12, container_bytes=512 * 1024,
        )
        for session in sessions:
            ddfs.backup_stream(session)
            ddfs.finish_backup()

        venti = VentiServer(
            DiskIndex(10, bucket_bytes=512), ChunkRepository(), container_bytes=512 * 1024
        )
        for session in sessions:
            venti.backup_stream(session)

        return {
            "logical": logical,
            "debar": {"time": debar.elapsed, "stored": debar.physical_bytes_stored},
            "ddfs": {"time": ddfs.clock.now, "stored": ddfs.repository.stored_chunk_bytes},
            "venti": {"time": venti.clock.now, "stored": venti.repository.stored_chunk_bytes},
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    logical = r["logical"]
    tp = {name: logical / r[name]["time"] for name in ("debar", "ddfs", "venti")}

    # The paper's ordering, with the paper's magnitudes.
    assert tp["debar"] > tp["ddfs"] > tp["venti"]
    assert tp["debar"] > 1.3 * tp["ddfs"]  # the filter's headroom over the NIC
    assert tp["venti"] < 10 * MB  # the Venti-class random-I/O ceiling
    assert tp["debar"] / tp["venti"] > 40  # "two orders of magnitude" regime
    # Identical physical data in all three.
    stored = {r[name]["stored"] for name in ("debar", "ddfs", "venti")}
    assert len(stored) == 1

    print_table(
        "DEBAR vs DDFS vs Venti (5 nightly sessions, 90% adjacent dup)",
        ["system", "throughput", "vs Venti"],
        [
            (name.upper(), fmt_rate(tp[name]), f"{tp[name] / tp['venti']:.0f}x")
            for name in ("debar", "ddfs", "venti")
        ],
    )
    save_series(
        results_dir,
        "baseline_comparison",
        {name: tp[name] / MB for name in tp},
    )
