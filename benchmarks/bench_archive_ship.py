"""Archive shipping overhead + point-in-time restore cost.

The archive shipper cuts and pushes per-run deltas *after* dedup-2
commits, on worker threads — the inline backup path only enqueues one
``(job, run)`` tuple per peer.  This bench backs up the same synthetic
dataset with no shipper, with a live shipper, and with the queue
deliberately stalled (``ArchiveShipper.pause``), and reports inline
throughput per config.  The stall probe is the adversarial check: the
backup must finish at baseline speed while ``archive.lag`` exposes the
growing backlog; synchronous shipping would show up as ~2x, not the
noise-level regression the loose 1.5x assert tolerates (budget: < 5%).

The second half prices the restore side of the merge algebra
(DESIGN.md §15.2): a chain of per-run deltas is restored point-in-time,
then compacted to a single merged segment and restored again.  Folding
one segment should never cost more than folding the whole chain, and
both must materialize byte-identical trees.

No paper counterpart; the archive is our extension (DESIGN.md §15).
"""

import random
import threading
import time
from pathlib import Path

from harness import save_result, telemetry_session
from conftest import print_table, volume_scale

from repro.archive.delta import cut_delta, pack_delta
from repro.archive.restore import restore_local
from repro.archive.shipper import ArchiveShipper
from repro.archive.store import ArchiveStore
from repro.net.server import serve_vault
from repro.system.vault import DebarVault

#: Dataset volume at scale 1.0 (files x bytes each, ~10 MB).
N_FILES = 10
FILE_BYTES = 1 << 20
REPEATS = 3  # best-of to damp scheduler noise
CHAIN_RUNS = 6  # restore-cost chain length


def _write_dataset(root: Path, scale: float) -> Path:
    rng = random.Random(1612)
    data = root / "data"
    data.mkdir()
    for i in range(max(2, int(N_FILES * scale))):
        head = rng.randbytes(FILE_BYTES // 2)
        (data / f"f{i:03d}.bin").write_bytes(head + head[: FILE_BYTES // 2])
    return data


def _mutate(data: Path, r: int) -> None:
    rng = random.Random(1700 + r)
    (data / "f000.bin").write_bytes(rng.randbytes(FILE_BYTES // 2))
    (data / f"new{r}.bin").write_bytes(rng.randbytes(FILE_BYTES // 4))


def _start_archive(tmp: Path, name: str):
    vault = DebarVault(tmp / f"keep-{name}")
    server = serve_vault(vault, node_name=name)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return vault, server


def _stop_archive(vault, server) -> None:
    server.shutdown()
    server.server_close()
    vault.close()


def _measure(tmp: Path, tag: str, data: Path, registry, mode: str):
    """One backup; returns (inline_s, drain_s, lag_peak).

    mode: "none" (no shipper), "live" (shipping to a loopback archive),
    "stalled" (shipper attached but paused for the inline window).
    """
    vault = DebarVault(tmp / tag / "vault")
    shipper = None
    handles = None
    lag_peak = 0
    try:
        if mode != "none":
            kv, ks = _start_archive(tmp / tag, "keep")
            handles = (kv, ks)
            shipper = ArchiveShipper(
                vault, "origin", {"keep": ("127.0.0.1", ks.port)},
                registry=registry,
            )
            vault.archive_shipper = shipper
            if mode == "stalled":
                shipper.pause()
        t0 = time.perf_counter()
        run = vault.backup("bench", [str(data)])
        inline_s = time.perf_counter() - t0
        drain_s = 0.0
        if shipper is not None:
            lag_peak = shipper.lag()
            if mode == "stalled":
                shipper.resume()
            t0 = time.perf_counter()
            assert shipper.drain(timeout=120.0), "archive never drained"
            drain_s = time.perf_counter() - t0
            chain = handles[1].archive_store.chain("origin", "bench")
            assert chain and chain[-1].run == run.run_id, (
                f"{tag}: archive tip {chain[-1].run if chain else 0}"
            )
        return inline_s, drain_s, lag_peak
    finally:
        if shipper is not None:
            vault.archive_shipper = None
            shipper.close(drain=False)
        vault.close()
        if handles is not None:
            _stop_archive(*handles)


def _restored_map(dest: Path) -> dict:
    return {p.name: p.read_bytes() for p in dest.rglob("*.bin")}


def _measure_restore(store, as_of: int, dest_root: Path, tag: str, registry):
    best = None
    result = None
    for rep in range(REPEATS):
        dest = dest_root / f"{tag}-{rep}"
        t0 = time.perf_counter()
        restore_local(store, as_of, dest, registry=registry)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best, result = elapsed, _restored_map(dest)
    return best, result


def bench_archive_ship(results_dir, tmp_path):
    scale = volume_scale()
    data = _write_dataset(tmp_path, scale)
    logical = sum(p.stat().st_size for p in data.iterdir())

    configs = ["none", "live", "stalled"]
    best = {}
    with telemetry_session() as (registry, tracer):
        for mode in configs:
            runs = [
                _measure(tmp_path, f"{mode}-{rep}", data, registry, mode)
                for rep in range(REPEATS)
            ]
            best[mode] = {
                "inline_seconds": min(r[0] for r in runs),
                "drain_seconds": min(r[1] for r in runs),
                "inline_mb_per_s": logical / min(r[0] for r in runs) / 1e6,
                "lag_peak": max(r[2] for r in runs),
            }

        # The stalled queue really was stalled (lag visible), yet the
        # backup finished — the inline path never waits on an archive.
        assert best["stalled"]["lag_peak"] > 0
        live_ratio = (best["live"]["inline_seconds"]
                      / best["none"]["inline_seconds"])
        stall_ratio = (best["stalled"]["inline_seconds"]
                       / best["none"]["inline_seconds"])
        # Sanity floor, not the 5% budget: synchronous shipping is >2x.
        assert live_ratio < 1.5, f"shipping backup regressed {live_ratio:.2f}x"
        assert stall_ratio < 1.5, f"stalled backup regressed {stall_ratio:.2f}x"

        metrics = {row["name"]: row for row in registry.snapshot_metrics()}
        shipped = sum(
            s["value"] for s in metrics["archive.deltas_shipped"]["samples"]
        )
        assert shipped > 0

        # -- restore cost: per-delta chain vs one merged segment ------------
        chain_vault = DebarVault(tmp_path / "chain" / "vault")
        store = ArchiveStore(tmp_path / "chain" / "archive", registry=registry)
        chain_data = tmp_path / "chain" / "data"
        chain_data.mkdir()
        (chain_data / "f000.bin").write_bytes(b"s" * (FILE_BYTES // 2))
        base = 0
        for r in range(1, CHAIN_RUNS + 1):
            _mutate(chain_data, r)
            run = chain_vault.backup("bench", [str(chain_data)])
            delta = cut_delta(chain_vault, run, base_run_id=base,
                              origin="origin")
            store.ingest("origin", "bench", pack_delta(delta), delta)
            base = run.run_id
        chain_vault.close()
        tip = store.chain("origin", "bench")[-1].run

        per_delta_s, per_delta_tree = _measure_restore(
            store, tip, tmp_path / "out", "chain", registry
        )
        expired = store.compact("origin", "bench", keep={tip})
        assert len(store.chain("origin", "bench")) == 1, "compaction left a chain"
        merged_s, merged_tree = _measure_restore(
            store, tip, tmp_path / "out", "merged", registry
        )
        assert merged_tree == per_delta_tree, "merge changed restored bytes"
        restore_ratio = merged_s / per_delta_s
        # Folding one segment must not cost more than folding the chain.
        assert restore_ratio < 1.5, f"merged restore regressed {restore_ratio:.2f}x"

    print_table(
        "archive shipping overhead (inline backup path)",
        ["config", "inline MB/s", "inline s", "drain s", "lag peak"],
        [
            (mode, f"{best[mode]['inline_mb_per_s']:,.1f}",
             f"{best[mode]['inline_seconds']:.3f}",
             f"{best[mode]['drain_seconds']:.3f}",
             best[mode]["lag_peak"])
            for mode in configs
        ],
    )
    print_table(
        "point-in-time restore cost",
        ["chain", "segments", "restore s"],
        [
            ("per-delta", CHAIN_RUNS, f"{per_delta_s:.3f}"),
            ("merged", 1, f"{merged_s:.3f}"),
        ],
    )
    save_result(
        results_dir,
        "archive_ship",
        params={"scale": scale, "files": len(list(data.iterdir())),
                "logical_bytes": logical, "repeats": REPEATS,
                "chain_runs": CHAIN_RUNS},
        metrics={
            **{f"{mode}_{k}": v for mode in best for k, v in best[mode].items()},
            "ship_overhead_pct": (live_ratio - 1.0) * 100.0,
            "stall_regression_pct": (stall_ratio - 1.0) * 100.0,
            "deltas_shipped": shipped,
            "per_delta_restore_seconds": per_delta_s,
            "merged_restore_seconds": merged_s,
            "merged_vs_chain_ratio": restore_ratio,
            "runs_expired_by_merge": len(expired),
        },
        registry=registry,
        tracer=tracer,
    )
