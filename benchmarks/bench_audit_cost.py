"""Audit-cost micro-benchmarks (real wall time).

The consistency auditor is an offline maintenance sweep, but it must stay
cheap enough to run after every backup round in CI and after crash
recovery in production.  These benches track its real Python cost against
index size so a super-linear regression is caught early.  No paper
counterpart; the auditor is our extension (DESIGN.md section 7).
"""

from repro.audit import audit_index, audit_restorability, audit_store
from repro.core.checking import CheckingFile
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import SyntheticFingerprints
from repro.storage import ChunkRepository, ContainerManager, ContainerWriter

from conftest import print_table, save_series


def _populated(n_bits, count, seed=0):
    """An index + repository holding ``count`` consistent entries."""
    index = DiskIndex(n_bits, bucket_bytes=512)
    repo = ChunkRepository()
    manager = ContainerManager(repo)
    writer = ContainerWriter(64 * 1024, materialize=False)
    pending = []
    fps = SyntheticFingerprints(seed).fresh(count)
    checking = CheckingFile()

    def seal():
        cid = manager.store(writer).container_id
        for done in pending:
            index.insert(done, cid)
        pending.clear()

    for fp in fps:
        if not writer.fits(8192):
            seal()
            writer = ContainerWriter(64 * 1024, materialize=False)
        writer.add(fp, size=8192)
        pending.append(fp)
    if len(writer):
        seal()
    return index, repo, checking, fps


def bench_audit_index_sweep(benchmark):
    """Full placement/overflow sweep of a 2^10-bucket index, 5k entries."""
    index, _, _, _ = _populated(10, 5000)
    report = benchmark(audit_index, index)
    assert report.ok


def bench_audit_store_cross_reference(benchmark):
    """Index <-> repository <-> checking-file cross-reference, 5k chunks."""
    index, repo, checking, _ = _populated(10, 5000)
    report = benchmark(audit_store, index, repo, checking)
    assert report.ok


def bench_audit_restorability_shallow(benchmark):
    """Resolve 5k recorded fingerprints through index + repository."""
    index, repo, _, fps = _populated(10, 5000)
    report = benchmark(audit_restorability, [("bench", fps)], index.lookup, repo)
    assert report.ok


def test_audit_cost_scaling(results_dir):
    """Audit wall time vs index size: the sweep must scale ~linearly.

    Not a pytest-benchmark case — one timed pass per size is enough to
    expose super-linear behaviour, and keeps the tier-2 run short.
    """
    import time

    rows = []
    series = []
    for n_bits, count in ((8, 1000), (10, 4000), (12, 16000)):
        index, repo, checking, fps = _populated(n_bits, count)
        t0 = time.perf_counter()
        assert audit_index(index).ok
        t_index = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert audit_store(index, repo, checking).ok
        t_store = time.perf_counter() - t0
        rows.append(
            (f"2^{n_bits}", count, f"{t_index * 1e3:.1f}", f"{t_store * 1e3:.1f}")
        )
        series.append(
            {
                "n_bits": n_bits,
                "entries": count,
                "audit_index_ms": t_index * 1e3,
                "audit_store_ms": t_store * 1e3,
            }
        )
    print_table(
        "Audit cost vs index size",
        ("buckets", "entries", "audit_index ms", "audit_store ms"),
        rows,
    )
    save_series(results_dir, "audit_cost", {"points": series})
    # 16x the entries must not cost more than ~100x the smallest sweep
    # (generous bound: catches accidental quadratic behaviour only).
    assert series[-1]["audit_index_ms"] < 100 * max(series[0]["audit_index_ms"], 0.5)
