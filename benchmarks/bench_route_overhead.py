"""Front-door routing overhead: direct vs redirect vs proxy backup.

The router offers two data paths (DESIGN.md §14.3): **redirect**, where
a smart client pays one ``ROUTE_LOOKUP``, rebuilds the ring locally and
then streams straight to the owning node — and **proxy**, where a dumb
client sends every frame to the router, which re-frames it onto the
right downstream.  This bench backs up the same synthetic dataset over
all three paths against the same two-node cluster shape and reports
throughput per path.

The redirect gate is the point of the design: one extra control-plane
round trip amortised over megabytes must cost ≤5% versus dialing the
node directly (a small absolute epsilon absorbs scheduler noise on
short runs).  Proxying is *expected* to cost real throughput — every
byte crosses the wire twice — so it only carries a loose sanity floor;
the number is tracked here so a regression (say, the router serialising
frames it should stream) is visible in the result history.
"""

import random
import threading
import time
from pathlib import Path

from harness import save_result, telemetry_session
from conftest import print_table, volume_scale

from repro.frontdoor.client import RouterClient
from repro.frontdoor.membership import ClusterMembership
from repro.frontdoor.router import FrontDoorRouter
from repro.net.client import RemoteBackupClient, RetryPolicy
from repro.net.server import serve_vault
from repro.system.vault import DebarVault

#: Dataset volume at scale 1.0 (~24 MB): big enough that one extra
#: round trip is amortised into the noise floor, small enough for CI.
N_FILES = 24
FILE_BYTES = 1 << 20

RETRY = RetryPolicy(max_attempts=3, base_delay=0.05, timeout=30.0,
                    connect_timeout=5.0)


def _write_dataset(root: Path, scale: float, seed: int) -> Path:
    rng = random.Random(seed)
    data = root / f"data-{seed}"
    data.mkdir()
    for i in range(max(2, int(N_FILES * scale))):
        head = rng.randbytes(FILE_BYTES // 2)
        (data / f"f{i:03d}.bin").write_bytes(head + head[: FILE_BYTES // 2])
    return data


class _Cluster:
    """Two daemons + a router, torn down as a unit."""

    def __init__(self, tmp: Path, registry) -> None:
        self.vaults = [
            DebarVault(tmp / "node-a"), DebarVault(tmp / "node-b")
        ]
        self.servers = []
        for vault, name in zip(self.vaults, ("a", "b")):
            server = serve_vault(vault, node_name=name)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            self.servers.append(server)
        self.membership = ClusterMembership(
            tmp / "router-state", replication_factor=2
        )
        for server, name in zip(self.servers, ("a", "b")):
            self.membership.join(name, f"{server.host}:{server.port}")
        self.router = FrontDoorRouter(
            self.membership, state_dir=tmp / "router-state",
            registry=registry, probe_interval=3600.0,
        )
        threading.Thread(target=self.router.serve_forever, daemon=True).start()

    def owner_address(self, job: str):
        name = self.membership.ring().replicas(f"job:{job}", rf=1)[0]
        host, _, port = self.membership.address(name).rpartition(":")
        return host, int(port)

    def close(self) -> None:
        self.router.shutdown()
        self.router.server_close()
        for server in self.servers:
            server.shutdown()
            server.server_close()
        for vault in self.vaults:
            vault.close()


def _timed_backup(client: RemoteBackupClient, job: str, data: Path):
    t0 = time.perf_counter()
    run = client.backup(job, [str(data)])
    return run, time.perf_counter() - t0


def test_route_overhead(results_dir, tmp_path):
    scale = volume_scale()
    # One dataset per path (same size, different content) so dedup
    # cannot subsidise the later paths: each transfers the full volume.
    datasets = {
        name: _write_dataset(tmp_path, scale, seed)
        for name, seed in (("direct", 804), ("redirect", 805), ("proxy", 806))
    }
    logical = sum(p.stat().st_size for p in datasets["direct"].iterdir())

    with telemetry_session() as (registry, tracer):
        cluster = _Cluster(tmp_path, registry)
        try:
            # Direct: the client already knows the owner's address.
            host, port = cluster.owner_address("direct")
            with RemoteBackupClient(host, port, retry=RETRY) as client:
                direct_run, direct_s = _timed_backup(
                    client, "direct", datasets["direct"]
                )

            # Redirect: the client knows only the router; one
            # ROUTE_LOOKUP, then the same direct connection.
            with RouterClient(
                cluster.router.host, cluster.router.port, retry=RETRY
            ) as rc:
                t0 = time.perf_counter()
                client = rc.client_for_job("redirect", retry=RETRY)
                try:
                    redirect_run = client.backup(
                        "redirect", [str(datasets["redirect"])]
                    )
                finally:
                    client.close()
                redirect_s = time.perf_counter() - t0

            # Proxy: a dumb client, every frame through the router.
            with RemoteBackupClient(
                cluster.router.host, cluster.router.port, retry=RETRY
            ) as client:
                proxy_run, proxy_s = _timed_backup(
                    client, "proxy", datasets["proxy"]
                )
        finally:
            cluster.close()

    # Every path observed (and, with per-path content, transferred) the
    # full volume.
    assert direct_run.logical_bytes == logical
    assert redirect_run.logical_bytes == logical
    assert proxy_run.logical_bytes == logical

    direct_mbps = logical / direct_s / 1e6
    redirect_mbps = logical / redirect_s / 1e6
    proxy_mbps = logical / proxy_s / 1e6
    redirect_overhead = redirect_s / direct_s - 1.0
    proxy_overhead = proxy_s / direct_s - 1.0

    # THE gate: redirect must be within 5% of direct (plus 250ms of
    # absolute slack so a CI scheduler hiccup cannot flake the build).
    assert redirect_s <= direct_s * 1.05 + 0.25, (
        f"redirect {redirect_s:.3f}s vs direct {direct_s:.3f}s "
        f"({redirect_overhead:+.1%})"
    )
    # Proxy sanity floor only: within 20x of direct.
    assert proxy_s <= direct_s * 20

    print_table(
        "front-door routing overhead",
        ["path", "MB/s", "seconds", "vs direct"],
        [
            ("direct", f"{direct_mbps:,.1f}", f"{direct_s:.3f}", "-"),
            ("redirect", f"{redirect_mbps:,.1f}", f"{redirect_s:.3f}",
             f"{redirect_overhead:+.1%}"),
            ("proxy", f"{proxy_mbps:,.1f}", f"{proxy_s:.3f}",
             f"{proxy_overhead:+.1%}"),
        ],
    )
    save_result(
        results_dir,
        "route_overhead",
        params={"scale": scale,
                "files": len(list(datasets["direct"].iterdir())),
                "logical_bytes": logical, "nodes": 2,
                "replication_factor": 2},
        metrics={
            "direct_seconds": direct_s,
            "redirect_seconds": redirect_s,
            "proxy_seconds": proxy_s,
            "direct_mb_per_s": direct_mbps,
            "redirect_mb_per_s": redirect_mbps,
            "proxy_mb_per_s": proxy_mbps,
            "redirect_overhead": redirect_overhead,
            "proxy_overhead": proxy_overhead,
        },
        registry=registry,
        tracer=tracer,
    )
