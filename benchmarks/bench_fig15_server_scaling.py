"""Figure 15: write throughput and capacity vs number of backup servers.

Paper shape: running modes (x, y) for x = 1..16 servers and y = 32/64 GB
index parts, both the aggregate write throughput and the supported system
capacity grow linearly with the server count; the 64 GB-part modes support
twice the capacity of the 32 GB modes at slightly lower throughput (longer
PSIL/PSIU scans).
"""

import numpy as np
from conftest import volume_scale, print_table, save_series

from repro.analysis.cluster_experiment import run_write_experiment
from repro.util import GB, MB, TB, fmt_bytes, fmt_rate

W_BITS = (0, 1, 2, 3, 4)  # 1, 2, 4, 8, 16 servers
PART_SIZES_GB = (32, 64)


def bench_fig15_server_scaling(benchmark, results_dir):
    scale = min(1.0, volume_scale())
    version_chunks = max(256, int(1600 * scale))

    def run():
        modes = []
        for part_gb in PART_SIZES_GB:
            for w in W_BITS:
                result = run_write_experiment(
                    w_bits=w,
                    part_modeled_bytes=part_gb * GB,
                    versions=4,
                    version_chunks=version_chunks,
                    seed=23 + w,
                )
                modes.append(result)
        return modes

    modes = benchmark.pedantic(run, rounds=1, iterations=1)
    by_part = {
        part_gb: [m for m in modes if m.part_modeled_bytes == part_gb * GB]
        for part_gb in PART_SIZES_GB
    }

    for part_gb, series in by_part.items():
        throughputs = [m.total_throughput for m in series]
        servers = [m.n_servers for m in series]
        # Throughput grows with servers, and near-linearly: the 16-server
        # mode delivers at least 8x the single server.
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > 8 * throughputs[0]
        # Linearity of the trend on log-log (slope ~1).
        slope = np.polyfit(np.log(servers), np.log(throughputs), 1)[0]
        assert 0.8 < slope < 1.2
        # Capacity is exactly linear in servers.
        capacities = [m.supported_capacity_bytes for m in series]
        for m in series:
            assert m.supported_capacity_bytes == series[0].supported_capacity_bytes * (
                m.n_servers / series[0].n_servers
            )

    # 64 GB parts: double the capacity, somewhat lower throughput.
    for a, b in zip(by_part[32], by_part[64]):
        assert b.supported_capacity_bytes == 2 * a.supported_capacity_bytes
        assert b.total_throughput < a.total_throughput * 1.05

    print_table(
        "Figure 15 — write throughput and capacity vs servers",
        ["servers", "part", "throughput", "capacity"],
        [
            (
                m.n_servers,
                fmt_bytes(m.part_modeled_bytes),
                fmt_rate(m.total_throughput),
                fmt_bytes(m.supported_capacity_bytes),
            )
            for m in modes
        ],
    )
    save_series(
        results_dir,
        "fig15_server_scaling",
        {
            "version_chunks": version_chunks,
            "modes": [
                {
                    "n_servers": m.n_servers,
                    "part_gb": m.part_modeled_bytes / GB,
                    "throughput_MBps": m.total_throughput / MB,
                    "capacity_tb": m.supported_capacity_bytes / TB,
                }
                for m in modes
            ],
        },
    )
