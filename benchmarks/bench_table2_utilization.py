"""Table 2: measured disk-index utilization at the capacity-scaling trigger.

Re-runs the paper's counter-array experiment: insert uniformly random
fingerprints, overflowing to random adjacent buckets, until an arrival
finds its bucket and both neighbours full; record the utilization eta, the
full-bucket fraction rho, and the counts of 3-adjacent / >=4-adjacent full
runs at exit.

Scaling note: the paper simulates a 512 GB index (2^23–2^30 buckets); we
hold the total entry capacity at ~2^21 so a full sweep of 8 bucket sizes x
several runs completes in seconds.  Fewer buckets means fewer triples for
the trigger, so eta at our scale sits a few points above the paper's.  The
bridge is formula (1) itself: solving it for the utilization where the
bound reaches 1/2 (the trigger's median) predicts eta at *any* bucket
count — the bench verifies our measurements against that prediction at our
scale, and verifies the same prediction against the paper's measured eta
at the paper's scale (it matches within 1–2 points everywhere).
"""

import numpy as np
from conftest import volume_scale, print_table, save_series

from repro.analysis import UtilizationSimulator, utilization_for_target_bound
from repro.analysis.overflow import TABLE2_ETA_AVG, bucket_parameters
from repro.util import KB

#: Bucket entry capacities per Table 2 (20 entries per 512-byte block).
BUCKET_SIZES = [512, 1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]

#: Total entry capacity held constant across bucket sizes.
TOTAL_CAPACITY_LOG2 = 21


def _n_bits_for(bucket_capacity: int) -> int:
    return max(2, TOTAL_CAPACITY_LOG2 - round(np.log2(bucket_capacity)))


def _run_table2(runs: int):
    rows = []
    for size in BUCKET_SIZES:
        b = (size // 512) * 20
        n_bits = _n_bits_for(b)
        results = [
            UtilizationSimulator(n_bits, b, seed=97 * r + size).run_fast()
            for r in range(runs)
        ]
        etas = [r.eta for r in results]
        b_paper, n_paper = bucket_parameters(size)
        rows.append(
            {
                "bucket_bytes": size,
                "b": b,
                "n_bits": n_bits,
                "eta_min": min(etas),
                "eta_max": max(etas),
                "eta_avg": float(np.mean(etas)),
                "rho_avg": float(np.mean([r.rho for r in results])),
                "n3": int(sum(r.n3 for r in results)),
                "n4": int(sum(r.n4 for r in results)),
                # Formula-(1) median-trigger prediction at our bucket count
                # and at the paper's (the scale bridge).
                "eta_theory_ours": utilization_for_target_bound(b, n_bits, target=0.5),
                "eta_theory_paper": utilization_for_target_bound(
                    b_paper, n_paper, target=0.5
                ),
                "paper_eta_avg": TABLE2_ETA_AVG[size],
            }
        )
    return rows


def bench_table2_utilization(benchmark, results_dir):
    runs = max(3, int(5 * min(volume_scale(), 2.0)))
    rows = benchmark.pedantic(_run_table2, args=(runs,), rounds=1, iterations=1)

    # The headline trend: utilization at the trigger grows with bucket size
    # exactly as in Table 2, and the full-bucket fraction stays tiny.
    avgs = [row["eta_avg"] for row in rows]
    assert avgs == sorted(avgs)
    for row in rows:
        # Measurement matches theory at our bucket count...
        assert abs(row["eta_avg"] - row["eta_theory_ours"]) < 0.07
        # ...and theory at the paper's bucket count matches the paper.
        assert abs(row["eta_theory_paper"] - row["paper_eta_avg"]) < 0.03
        assert row["rho_avg"] < 0.08
        assert row["eta_min"] <= row["eta_avg"] <= row["eta_max"]

    print_table(
        "Table 2 — index utilization at the scaling trigger",
        [
            "bucket", "eta(min)", "eta(max)", "eta(avg)", "theory@ours",
            "theory@paper-n", "paper", "rho", "n3", "n4",
        ],
        [
            (
                f"{row['bucket_bytes'] / KB:g}KB",
                f"{row['eta_min']:.2%}",
                f"{row['eta_max']:.2%}",
                f"{row['eta_avg']:.2%}",
                f"{row['eta_theory_ours']:.2%}",
                f"{row['eta_theory_paper']:.2%}",
                f"{row['paper_eta_avg']:.2%}",
                f"{row['rho_avg']:.3%}",
                row["n3"],
                row["n4"],
            )
            for row in rows
        ],
    )
    save_series(results_dir, "table2_utilization", {"runs": runs, "rows": rows})


def bench_table2_bucket_count_trend(benchmark, results_dir):
    """Eta falls slowly as the bucket count grows (toward the paper's n=26)."""

    def sweep():
        b = 320  # the 8 KB bucket
        return {
            n_bits: float(
                np.mean(
                    [UtilizationSimulator(n_bits, b, seed=s).run_fast().eta for s in range(3)]
                )
            )
            for n_bits in (10, 13)
        }

    etas = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert etas[13] <= etas[10] + 0.01  # more buckets -> earlier trigger
    save_series(results_dir, "table2_bucket_count_trend", etas)
