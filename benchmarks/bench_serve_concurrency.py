"""Serve-daemon concurrency scaling: many simultaneous backup streams.

The async rewrite's acceptance bench (DESIGN.md §12): one
``repro serve`` daemon takes 10 → 200 *simultaneous* remote backup
streams, each a separate client session on its own connection.  The
multiplexed event loop must keep per-stream cost flat — wall clock over
N streams at N=200 stays within 2x of N=10 — where the old
thread-per-connection core pays a thread per socket.  The threaded core
is measured at the low end as the comparison baseline.

Also probed here, because they only show up under load:

- restores stay byte-identical after a 200-way concurrent write storm;
- ``shutdown_gracefully`` under live traffic drains without hitting its
  timeout (the drain-flag ordering fix).
"""

import random
import threading
import time
from pathlib import Path

from harness import save_result, telemetry_session
from conftest import print_table, volume_scale

from repro.net.client import RemoteBackupClient, RetryPolicy
from repro.net.client import NetClient
from repro.net import messages as m
from repro.net.server import serve_vault
from repro.system.vault import DebarVault

#: Simultaneous stream counts for the async core (the acceptance sweep)
#: and for the threaded baseline (kept low: it burns a thread per socket).
ASYNC_STREAMS = [10, 50, 100, 200]
THREADED_STREAMS = [10, 50]

#: Per-stream dataset volume at scale 1.0 (files x bytes each).
N_FILES = 2
FILE_BYTES = 24 * 1024

#: Generous retry budget: with hundreds of streams an admission shed or
#: a slow commit is expected, not an error.
BENCH_RETRY = RetryPolicy(
    max_attempts=10, base_delay=0.05, max_delay=0.8, timeout=30.0
)


def _write_stream_datasets(root: Path, n_streams: int, scale: float):
    datasets = []
    file_bytes = max(4096, int(FILE_BYTES * scale))
    for i in range(n_streams):
        rng = random.Random(9000 + i)
        data = root / f"stream-{i:03d}"
        data.mkdir()
        for j in range(N_FILES):
            # Unique head per stream, repeated tail: every stream ships
            # real bytes and dedup still has intra-file work.
            head = rng.randbytes(file_bytes // 2)
            (data / f"f{j}.bin").write_bytes(head + head[: file_bytes // 2])
        datasets.append(data)
    return datasets


def _run_streams(server, datasets, verify_sample):
    """N concurrent backup streams against one daemon; returns the wall
    time of the storm and the failures (must be none)."""
    host, port = server.server_address
    barrier = threading.Barrier(len(datasets) + 1)
    failures = []
    runs = [None] * len(datasets)

    def one_stream(i, data):
        try:
            with RemoteBackupClient(
                host, port, client_name=f"s{i}", retry=BENCH_RETRY
            ) as rc:
                barrier.wait()
                runs[i] = rc.backup(f"job-{i}", [str(data)])
        except Exception as exc:  # noqa: BLE001 - reported as bench failure
            failures.append((i, repr(exc)))
            barrier.abort()

    threads = [
        threading.Thread(target=one_stream, args=(i, d), daemon=True)
        for i, d in enumerate(datasets)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join(300.0)
    wall = time.perf_counter() - t0
    assert not failures, failures[:5]

    # Byte-identical restores for a sample of the streams that just raced.
    with RemoteBackupClient(host, port, retry=BENCH_RETRY) as rc:
        for i in verify_sample:
            dest = datasets[i].parent / f"restore-{i:03d}"
            rc.restore(runs[i].run_id, dest)
            for src in datasets[i].iterdir():
                restored = next(dest.rglob(src.name)).read_bytes()
                assert restored == src.read_bytes(), (
                    f"stream {i}: {src.name} corrupted under concurrency"
                )
    return wall


def _measure_core(tmp: Path, registry, threaded, n_streams, scale):
    label = "threaded" if threaded else "async"
    root = tmp / f"{label}-{n_streams}"
    root.mkdir()
    vault = DebarVault(root / "vault")
    server = serve_vault(
        vault, registry=registry, threaded=threaded, max_inflight=256
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        datasets = _write_stream_datasets(root, n_streams, scale)
        sample = list(range(n_streams))[:: max(1, n_streams // 5)]
        wall = _run_streams(server, datasets, verify_sample=sample)
    finally:
        server.shutdown()
        server.server_close()
        vault.close()
    return {
        "core": label,
        "streams": n_streams,
        "wall_seconds": wall,
        "per_stream_seconds": wall / n_streams,
    }


def _probe_drain_under_load(tmp: Path, registry):
    """Graceful drain while ping traffic hammers the daemon: must finish
    well inside its timeout (the drain-flag ordering fix)."""
    vault = DebarVault(tmp / "drain-vault")
    server = serve_vault(vault, registry=registry)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    stop = threading.Event()

    def hammer():
        net = NetClient("127.0.0.1", server.port, retry=BENCH_RETRY)
        try:
            while not stop.is_set():
                net.call(m.PING, b"x")
        except Exception:
            pass  # refused once the drain begins
        finally:
            net.close()

    hammers = [
        threading.Thread(target=hammer, daemon=True) for _ in range(8)
    ]
    for t in hammers:
        t.start()
    time.sleep(0.3)  # let the load establish
    t0 = time.perf_counter()
    try:
        drained = server.shutdown_gracefully(timeout=30.0)
        drain_seconds = time.perf_counter() - t0
    finally:
        stop.set()
        for t in hammers:
            t.join(5.0)
        vault.close()
    assert drained is True, "drain under load fell back to its timeout"
    return drain_seconds


def test_serve_concurrency(results_dir, tmp_path):
    scale = volume_scale()
    rows = []
    with telemetry_session() as (registry, tracer):
        for n in ASYNC_STREAMS:
            rows.append(_measure_core(tmp_path, registry, False, n, scale))
        for n in THREADED_STREAMS:
            rows.append(_measure_core(tmp_path, registry, True, n, scale))
        drain_seconds = _probe_drain_under_load(tmp_path, registry)

    by_async = {r["streams"]: r for r in rows if r["core"] == "async"}
    flatness = (
        by_async[ASYNC_STREAMS[-1]]["per_stream_seconds"]
        / by_async[ASYNC_STREAMS[0]]["per_stream_seconds"]
    )
    # The acceptance gate: per-stream cost flat within 2x from 10 -> 200
    # simultaneous streams on the async core.
    assert flatness <= 2.0, (
        f"per-stream cost grew {flatness:.2f}x from "
        f"{ASYNC_STREAMS[0]} to {ASYNC_STREAMS[-1]} streams"
    )
    assert drain_seconds < 30.0

    print_table(
        "serve concurrency scaling",
        ["core", "streams", "wall s", "per-stream s"],
        [
            (r["core"], r["streams"], f"{r['wall_seconds']:.3f}",
             f"{r['per_stream_seconds']:.4f}")
            for r in rows
        ],
    )
    print(f"\nasync per-stream flatness 10->200: {flatness:.2f}x "
          f"(gate <= 2.0); drain under load: {drain_seconds:.2f}s")

    metrics_rows = {row["name"]: row for row in registry.snapshot_metrics()}
    busy = sum(
        s["value"]
        for s in metrics_rows.get("net.busy_rejections", {}).get("samples", [])
    )
    # ~500 traced backup/restore ops produce megabytes of span trees;
    # the committed result only needs the counters and the series above.
    tracer.reset()
    save_result(
        results_dir,
        "serve_concurrency",
        params={
            "scale": scale,
            "async_streams": ASYNC_STREAMS,
            "threaded_streams": THREADED_STREAMS,
            "files_per_stream": N_FILES,
            "file_bytes": max(4096, int(FILE_BYTES * scale)),
            "max_inflight": 256,
        },
        metrics={
            "series": rows,
            "per_stream_flatness_10_to_200": flatness,
            "drain_under_load_seconds": drain_seconds,
            "busy_rejections": busy,
        },
        registry=registry,
        tracer=tracer,
    )
