"""Figure 9: DEBAR dedup-2 vs DDFS daily/cumulative throughput.

Paper anchors: DEBAR dedup-2's daily throughput fluctuates in a small band
(~170–206.8 MB/s, depending on whether the day's run includes an SIU) with
a cumulative of ~197 MB/s — the chunk-log's 224 MB/s sustained read minus
SIL/SIU overhead.  DDFS sustains >155 MB/s daily with ~189 MB/s cumulative:
its pipeline rides the 210 MB/s NIC and dips when the write buffer pauses
to flush.  DEBAR dedup-2 edges out DDFS cumulatively.
"""

from conftest import print_table, save_series

from repro.util import MB, fmt_rate


def _series(result):
    rows = []
    for r in result.days:
        rows.append(
            {
                "day": r.day + 1,
                "dedup2_daily": r.dedup2_throughput if r.dedup2_ran else None,
                "ddfs_daily": r.ddfs_throughput,
            }
        )
    return rows


def bench_fig09_dedup2_vs_ddfs(benchmark, hust_result, results_dir):
    rows = benchmark(_series, hust_result)
    d2_cum = hust_result.dedup2_throughput_cum()
    ddfs_cum = hust_result.ddfs_throughput_cum()

    # Cumulative anchors (paper: ~197 vs ~189 MB/s) and the winner.
    assert 150 * MB < d2_cum < 225 * MB
    assert 150 * MB < ddfs_cum < 215 * MB
    assert d2_cum > ddfs_cum

    # DEBAR dedup-2 is bounded by the 224 MB/s log read; DDFS by the NIC.
    d2_days = [row["dedup2_daily"] for row in rows if row["dedup2_daily"]]
    assert all(t <= 224 * MB * 1.01 for t in d2_days)
    ddfs_days = [row["ddfs_daily"] for row in rows]
    assert all(t <= 210 * MB * 1.01 for t in ddfs_days)
    # DDFS stays within a band: most days above 155 MB/s like the paper.
    above = sum(1 for t in ddfs_days if t > 155 * MB)
    assert above > 0.8 * len(ddfs_days)

    print_table(
        "Figure 9 — dedup-2 vs DDFS (sampled days)",
        ["day", "DEBAR dedup-2", "DDFS"],
        [
            (
                row["day"],
                "-" if row["dedup2_daily"] is None else fmt_rate(row["dedup2_daily"]),
                fmt_rate(row["ddfs_daily"]),
            )
            for row in rows[::4] + [rows[-1]]
        ],
    )
    print(
        f"cumulative: DEBAR dedup-2 {fmt_rate(d2_cum)} (paper ~197MB/s), "
        f"DDFS {fmt_rate(ddfs_cum)} (paper ~189MB/s)"
    )
    save_series(
        results_dir,
        "fig09_dedup2_vs_ddfs",
        {
            "rows": rows,
            "dedup2_cum_MBps": d2_cum / MB,
            "ddfs_cum_MBps": ddfs_cum / MB,
            "paper": {"dedup2_cum_MBps": 197, "ddfs_cum_MBps": 189},
        },
    )
