"""Wire-protocol overhead: in-process vs loopback-RPC backup (real wall time).

The repro.net protocol adds framing, request/response round trips and an
extra serialization of every transferred chunk.  This bench backs up the
same synthetic dataset twice — straight through :class:`DebarVault` and
through a live ``repro serve`` daemon on loopback — and reports both
throughputs plus the protocol byte overhead the client's ``net.*``
counters measured.  No paper counterpart; the daemon is our extension
(DESIGN.md section 9).  Tracked so a chatty-protocol regression (say, an
accidental per-chunk round trip) shows up as a throughput cliff.
"""

import random
import threading
import time
from pathlib import Path

from harness import save_result, telemetry_session
from conftest import print_table, volume_scale

from repro.net.client import RemoteBackupClient
from repro.net.server import serve_vault
from repro.system.vault import DebarVault

#: Dataset volume at scale 1.0 (files x bytes each, ~24 MB).
N_FILES = 24
FILE_BYTES = 1 << 20


def _write_dataset(root: Path, scale: float) -> Path:
    rng = random.Random(1302)
    data = root / "data"
    data.mkdir()
    n_files = max(2, int(N_FILES * scale))
    for i in range(n_files):
        # Compressible-but-unique content: fresh random head, repeated
        # tail, so chunking and dedup both have work to do.
        head = rng.randbytes(FILE_BYTES // 2)
        (data / f"f{i:03d}.bin").write_bytes(head + head[: FILE_BYTES // 2])
    return data


def _measure_in_process(tmp: Path, data: Path):
    vault = DebarVault(tmp / "vault-local")
    t0 = time.perf_counter()
    run = vault.backup("bench", [str(data)])
    elapsed = time.perf_counter() - t0
    vault.close()
    return run, elapsed


def _measure_loopback(tmp: Path, data: Path, registry):
    vault = DebarVault(tmp / "vault-remote")
    server = serve_vault(vault, registry=registry)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        with RemoteBackupClient(host, port, registry=registry) as client:
            t0 = time.perf_counter()
            run = client.backup("bench", [str(data)])
            elapsed = time.perf_counter() - t0
    finally:
        server.shutdown()
        server.server_close()
        vault.close()
    return run, elapsed


def test_net_overhead(results_dir, tmp_path):
    scale = volume_scale()
    data = _write_dataset(tmp_path, scale)
    logical = sum(p.stat().st_size for p in data.iterdir())

    local_run, local_s = _measure_in_process(tmp_path, data)
    with telemetry_session() as (registry, tracer):
        remote_run, remote_s = _measure_loopback(tmp_path, data, registry)

    # Same dedup outcome either way -- the protocol must not change what
    # is stored, only how it travels.
    assert remote_run.logical_bytes == local_run.logical_bytes == logical
    assert remote_run.transferred_bytes == local_run.transferred_bytes

    metrics = {row["name"]: row for row in registry.snapshot_metrics()}
    wire_bytes = sum(
        s["value"] for s in metrics["net.bytes_sent"]["samples"]
    ) + sum(s["value"] for s in metrics["net.bytes_received"]["samples"])
    requests = sum(s["value"] for s in metrics["net.requests"]["samples"])
    local_mbps = logical / local_s / 1e6
    remote_mbps = logical / remote_s / 1e6
    overhead = wire_bytes / logical

    # Sanity floor, not a performance target: loopback RPC must stay
    # within 50x of in-process (a per-chunk round-trip bug is ~1000x),
    # and protocol overhead must stay below 3x the payload.
    assert remote_mbps > local_mbps / 50
    assert overhead < 3.0
    # Batching keeps the request count far below the chunk count.
    assert requests < logical / 4096

    print_table(
        "repro.net loopback overhead",
        ["path", "MB/s", "seconds", "wire bytes / logical"],
        [
            ("in-process", f"{local_mbps:,.1f}", f"{local_s:.3f}", "-"),
            ("loopback RPC", f"{remote_mbps:,.1f}", f"{remote_s:.3f}",
             f"{overhead:.2f}"),
        ],
    )
    save_result(
        results_dir,
        "net_overhead",
        params={"scale": scale, "files": len(list(data.iterdir())),
                "logical_bytes": logical},
        metrics={
            "local_seconds": local_s,
            "remote_seconds": remote_s,
            "local_mb_per_s": local_mbps,
            "remote_mb_per_s": remote_mbps,
            "wire_bytes": wire_bytes,
            "wire_overhead_ratio": overhead,
            "requests": requests,
        },
        registry=registry,
        tracer=tracer,
    )
