"""Table 1: calculated upper bound of Pr(D) per bucket size.

Regenerates, for every bucket size the paper lists (0.5 KB – 64 KB on a
512 GB index), the formula-(1) bound at the paper's utilization point and
the maximum utilization our exact Poisson tail certifies for a 2 % bound.

Paper-vs-measured: the paper's bound column sits at 1.0–2.2 %; our exact
tail is tighter (their arithmetic appears to round the tail up), so we
check the *utilization* column — where the 2 % envelope lands — which
matches within a few points of utilization everywhere.
"""

from conftest import print_table, save_series

from repro.analysis import pr_c_upper_bound, utilization_for_target_bound
from repro.analysis.overflow import TABLE1_BUCKETS, bucket_parameters
from repro.util import KB

#: (bucket size, eta) pairs exactly as printed in Table 1.
PAPER_TABLE1 = [
    (512, 0.35),
    (1 * KB, 0.45),
    (2 * KB, 0.55),
    (4 * KB, 0.70),
    (8 * KB, 0.80),
    (16 * KB, 0.85),
    (32 * KB, 0.90),
    (64 * KB, 0.92),
]


def _compute_table1():
    rows = []
    for size, paper_eta in PAPER_TABLE1:
        b, n = bucket_parameters(size)
        bound_at_paper_eta = pr_c_upper_bound(b, paper_eta, n)
        eta_for_2pct = utilization_for_target_bound(b, n, target=0.02)
        rows.append(
            {
                "bucket_bytes": size,
                "b": b,
                "n": n,
                "paper_eta": paper_eta,
                "bound_at_paper_eta": bound_at_paper_eta,
                "eta_for_2pct_bound": eta_for_2pct,
            }
        )
    return rows


def bench_table1_bound(benchmark, results_dir):
    rows = benchmark(_compute_table1)

    # Shape checks: the bound is small at every paper point, and the
    # certified utilization grows with bucket size exactly as in Table 1.
    for row in rows:
        assert row["bound_at_paper_eta"] < 0.03
    etas = [row["eta_for_2pct_bound"] for row in rows]
    assert etas == sorted(etas)
    # The certified utilizations track the paper's column closely.
    for row in rows:
        assert row["eta_for_2pct_bound"] >= row["paper_eta"] - 0.02

    print_table(
        "Table 1 — upper bound of Pr(D)",
        ["bucket", "b", "n", "eta(paper)", "bound@eta", "eta@2% (ours)"],
        [
            (
                f"{row['bucket_bytes'] / KB:g}KB",
                row["b"],
                row["n"],
                f"{row['paper_eta']:.0%}",
                f"{row['bound_at_paper_eta']:.3%}",
                f"{row['eta_for_2pct_bound']:.1%}",
            )
            for row in rows
        ],
    )
    save_series(results_dir, "table1_overflow_bound", {"rows": rows})
