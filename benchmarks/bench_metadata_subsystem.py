"""The director's metadata storage subsystem (Section 6.3).

The paper: "over 250 backup jobs [can] read or write their metadata
concurrently with an aggregate metadata throughput of over 100 MB/s",
which is what lets one director serve tens of backup servers.  This bench
drives 256 concurrent jobs' metadata through the MetadataStore and checks
the aggregate-throughput claim against the model.
"""

from conftest import print_table, save_series

from repro.core.fingerprint import SyntheticFingerprints
from repro.director.metadata import FileIndexEntry, FileMetadata, MetadataManager, MetadataStore
from repro.util import MB, fmt_rate


def bench_metadata_subsystem(benchmark, results_dir):
    def run():
        store = MetadataStore()
        manager = MetadataManager(store=store)
        gen = SyntheticFingerprints(0)
        jobs = 256
        for run_id in range(1, jobs + 1):
            fps = gen.fresh(400)  # ~8 KB of file-index metadata per job
            entries = [FileIndexEntry(FileMetadata(f"/job{run_id}/data", 400 * 8192), fps)]
            manager.record_run_files(run_id, entries)
        for run_id in range(1, jobs + 1):
            manager.files_for_run(run_id)
        return store

    store = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = store.aggregate_throughput
    assert throughput > 95 * MB  # "over 100MB/s" aggregate
    assert store.bytes_written > 0 and store.bytes_read > 0

    print_table(
        "Section 6.3 — metadata subsystem",
        ["jobs", "written", "read", "aggregate throughput"],
        [(256, f"{store.bytes_written / MB:.1f}MB", f"{store.bytes_read / MB:.1f}MB",
          fmt_rate(throughput))],
    )
    save_series(
        results_dir,
        "metadata_subsystem",
        {
            "jobs": 256,
            "throughput_MBps": throughput / MB,
            "paper_claim_MBps": 100,
        },
    )
