"""Shared fixtures for the figure/table reproduction benchmarks.

Heavy experiments (the 31-day HUSt comparison) run once per session and
are shared by every figure that reads their series.  Set the environment
variable ``REPRO_BENCH_SCALE`` to shrink or grow the workload volumes
(default 1.0 ≈ 48 k chunks/day; ratios are scale-invariant).

Measurement/reporting helpers live in :mod:`harness`; ``print_table``,
``save_series`` and ``volume_scale`` are re-exported here for the
benchmarks that import them from conftest.
"""

from __future__ import annotations

from pathlib import Path

import pytest

# Re-exported for the bench modules (the helpers moved to harness.py).
from harness import (  # noqa: F401
    RESULTS_DIR,
    print_table,
    save_series,
    telemetry_session,
    volume_scale,
)

from repro.analysis.hust_experiment import (
    HustComparisonResult,
    paper_scaled_configs,
    run_hust_comparison,
)


@pytest.fixture(scope="session")
def hust_result() -> HustComparisonResult:
    """The Section 6.1 DEBAR-vs-DDFS month, run once per session.

    Runs under a dedicated telemetry session; the registry is attached as
    ``result.telemetry`` so benchmarks can read phase timings from the
    ``meter.seconds`` counters instead of re-deriving them.
    """
    hust_cfg, debar_cfg = paper_scaled_configs(scale=volume_scale())
    with telemetry_session() as (registry, _tracer):
        result = run_hust_comparison(hust_cfg, debar_config=debar_cfg)
    result.telemetry = registry
    return result


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
