"""Shared fixtures for the figure/table reproduction benchmarks.

Heavy experiments (the 31-day HUSt comparison) run once per session and
are shared by every figure that reads their series.  Set the environment
variable ``REPRO_BENCH_SCALE`` to shrink or grow the workload volumes
(default 1.0 ≈ 48 k chunks/day; ratios are scale-invariant).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.hust_experiment import (
    HustComparisonResult,
    paper_scaled_configs,
    run_hust_comparison,
)

RESULTS_DIR = Path(__file__).parent / "results"


def volume_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def hust_result() -> HustComparisonResult:
    """The Section 6.1 DEBAR-vs-DDFS month, run once per session."""
    hust_cfg, debar_cfg = paper_scaled_configs(scale=volume_scale())
    return run_hust_comparison(hust_cfg, debar_config=debar_cfg)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_series(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist one reproduced figure/table as JSON under results/."""
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def print_table(title: str, headers, rows) -> None:
    """Render a reproduced table to stdout (visible with pytest -s)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
