"""Figure 14: aggregate throughput of DEBAR with 16 backup servers.

(a) Write: dedup-1 stays above ~9 GB/s regardless of index size (the
    preliminary filter keeps duplicate bytes off the wire across 16 NICs);
    total write throughput decays with total index size — the paper
    reports 4.3 / 2.5 / 1.7 GB/s at 0.5 / 4 / 8 TB.

(b) Read: 64 clients restore their version chains in parallel; the first
    version reads fastest (~1620 MB/s — fresh, locally placed containers)
    and later versions settle around ~1520 MB/s as cross-stream duplicates
    pull containers from other repository nodes.  SISL + LPC keep the
    random-lookup elimination above 99 %.
"""

from conftest import volume_scale, print_table, save_series

from repro.analysis.cluster_experiment import run_read_experiment, run_write_experiment
from repro.util import GB, MB, TB, fmt_bytes, fmt_rate

#: (part size GB) -> paper total write throughput (GB/s) where given.
PAPER_WRITE = {32: 4.3, 256: 2.5, 512: 1.7}


def bench_fig14a_cluster_write(benchmark, results_dir):
    scale = min(1.0, volume_scale())
    version_chunks = max(256, int(3200 * scale))

    def run():
        # 6 versions with the cache-driven trigger reproduce the paper's
        # "2 dedup-2 processes (2 PSIL, 1 PSIU) per run mode".
        return [
            run_write_experiment(
                w_bits=4, part_modeled_bytes=gb * GB, versions=6,
                version_chunks=version_chunks,
            )
            for gb in (32, 256, 512)
        ]

    modes = benchmark.pedantic(run, rounds=1, iterations=1)

    # dedup-1 aggregate: multi-GB/s, roughly flat across index sizes.
    for mode in modes:
        assert mode.dedup1_throughput > 4 * GB
    d1 = [m.dedup1_throughput for m in modes]
    assert max(d1) / min(d1) < 1.5

    # Total write throughput decays with index size; endpoints near paper.
    totals = [m.total_throughput for m in modes]
    assert totals == sorted(totals, reverse=True)
    assert 0.5 * 4.3 * GB < totals[0] < 1.6 * 4.3 * GB
    assert 0.5 * 1.7 * GB < totals[-1] < 1.9 * 1.7 * GB

    print_table(
        "Figure 14(a) — aggregate write throughput, 16 servers",
        ["total index", "dedup-1", "dedup-2", "total", "paper total"],
        [
            (
                fmt_bytes(m.part_modeled_bytes * m.n_servers),
                fmt_rate(m.dedup1_throughput),
                fmt_rate(m.dedup2_throughput),
                fmt_rate(m.total_throughput),
                f"{PAPER_WRITE.get(int(m.part_modeled_bytes / GB), '-')}GB/s",
            )
            for m in modes
        ],
    )
    save_series(
        results_dir,
        "fig14a_cluster_write",
        {
            "version_chunks": version_chunks,
            "modes": [
                {
                    "total_index_bytes": m.part_modeled_bytes * m.n_servers,
                    "dedup1_GBps": m.dedup1_throughput / GB,
                    "dedup2_GBps": m.dedup2_throughput / GB,
                    "total_GBps": m.total_throughput / GB,
                }
                for m in modes
            ],
            "paper_total_GBps": PAPER_WRITE,
        },
    )


def bench_fig14b_cluster_read(benchmark, results_dir):
    scale = min(1.0, volume_scale())
    version_chunks = max(256, int(3200 * scale))

    def run():
        write = run_write_experiment(
            w_bits=4, part_modeled_bytes=128 * GB, versions=4,
            version_chunks=version_chunks, section_chunks=2048,
            keep_cluster=True,
        )
        return run_read_experiment(write)

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    # Aggregate read throughput in the paper's GB/s regime (our absolute
    # sits ~0.5x the paper's 1520-1620 MB/s: scaled duplicate sections
    # straddle container boundaries, halving per-fetch consumption —
    # see EXPERIMENTS.md).
    for p in points:
        assert 0.3 * GB < p.throughput < 3.0 * GB

    # Version 1 reads fastest; later versions settle lower (cross-stream
    # sharing pulls containers from remote nodes) but stay the same order.
    assert points[0].throughput >= max(p.throughput for p in points[1:])
    later = [p.throughput for p in points[1:]]
    assert max(later) / min(later) < 2.2

    # SISL + LPC eliminate ~99 % of random lookups (paper: 99.3 %).
    for p in points:
        assert p.lpc_hit_rate > 0.97

    print_table(
        "Figure 14(b) — aggregate read throughput per version",
        ["version", "throughput", "LPC hit rate"],
        [
            (p.version, fmt_rate(p.throughput), f"{p.lpc_hit_rate:.2%}")
            for p in points
        ],
    )
    save_series(
        results_dir,
        "fig14b_cluster_read",
        {
            "points": [
                {
                    "version": p.version,
                    "throughput_MBps": p.throughput / MB,
                    "lpc_hit_rate": p.lpc_hit_rate,
                }
                for p in points
            ],
            "paper": {"v1_MBps": 1620, "steady_MBps": 1520, "lookup_elimination": 0.993},
        },
    )
