"""Figure 6: logical data backed up vs physical data stored, day by day.

Paper: 31 days, ~583 GB/day average (under 150 GB to over 800 GB), ending
at 17.09 TB logical vs 1.82 TB physical in both systems — 9.39:1.

Ours is byte-scaled (see DESIGN.md); the reproduced quantities are the
growth *shapes* and the final logical:physical ratio, which is
scale-invariant.
"""

from conftest import print_table, save_series

from repro.util import fmt_bytes


def _series(result):
    rows = []
    logical_cum = 0
    for r in result.days:
        logical_cum += r.logical_bytes
        rows.append(
            {
                "day": r.day + 1,
                "logical_cum": logical_cum,
                "debar_physical_cum": r.debar_physical_cum,
                "ddfs_physical_cum": r.ddfs_physical_cum,
            }
        )
    return rows


def bench_fig06_capacity_growth(benchmark, hust_result, results_dir):
    rows = benchmark(_series, hust_result)

    # Monotone growth of all three series.
    for key in ("logical_cum", "debar_physical_cum", "ddfs_physical_cum"):
        series = [row[key] for row in rows]
        assert series == sorted(series)

    # Both systems store far less than logical; final ratio near 9.39:1.
    final = rows[-1]
    debar_ratio = final["logical_cum"] / final["debar_physical_cum"]
    ddfs_ratio = final["logical_cum"] / final["ddfs_physical_cum"]
    assert 7.5 < debar_ratio < 11.5  # paper: 9.39
    assert 7.5 < ddfs_ratio < 11.5
    # The two systems converge on (nearly) the same physical footprint —
    # the paper observes identical storage for both.
    assert abs(debar_ratio - ddfs_ratio) / debar_ratio < 0.10

    # Daily volumes swing widely (weekly fulls), like the paper's series.
    dailies = [r.logical_bytes for r in hust_result.days]
    assert max(dailies) > 2.0 * min(dailies)

    print_table(
        "Figure 6 — logical vs stored (sampled days)",
        ["day", "logical(cum)", "DEBAR stored", "DDFS stored", "ratio"],
        [
            (
                row["day"],
                fmt_bytes(row["logical_cum"]),
                fmt_bytes(row["debar_physical_cum"]),
                fmt_bytes(row["ddfs_physical_cum"]),
                f"{row['logical_cum'] / row['debar_physical_cum']:.2f}",
            )
            for row in rows[::5] + [rows[-1]]
        ],
    )
    save_series(
        results_dir,
        "fig06_capacity_growth",
        {"rows": rows, "debar_ratio": debar_ratio, "ddfs_ratio": ddfs_ratio,
         "paper": {"final_ratio": 9.39}},
    )
