"""Figure 13: PSIL/PSIU speeds with 16 backup servers.

Paper anchors (16 servers x 1 GB cache): 3710 k / 1524 k fingerprints per
second at a 0.5 TB total index, decaying to 338 k / 135 k at 8 TB.

The measurement drives the real cluster machinery — partition, exchange,
owner-side SIL sweeps, chunk storing, PSIU — at sigma-scaled volumes (see
``repro.analysis.cluster_experiment``); speeds are scale-invariant up to
fixed seek/RTT terms, which cost us ~15-25 % versus the paper at the ends
of the range.  The whole sweep runs under a telemetry session: the
per-point fingerprint counts and exchange volumes are cross-checked
against the cluster's own registry counters.
"""

from conftest import volume_scale, print_table
from harness import save_result, telemetry_session

from repro.analysis.cluster_experiment import measure_psil_psiu
from repro.util import GB, TB, fmt_bytes

#: Index-part sizes: 32 GB/server x 16 = 0.5 TB total, up to 8 TB.
PART_SIZES_GB = (32, 64, 128, 256, 512)

PAPER_ENDPOINTS = {0.5 * TB: (3710, 1524), 8 * TB: (338, 135)}


def bench_fig13_psil_psiu(benchmark, results_dir):
    sigma = (1.0 / 2048) * min(1.0, volume_scale())
    captured = {}

    def run():
        with telemetry_session() as (registry, _tracer):
            points = [measure_psil_psiu(gb * GB, sigma=sigma) for gb in PART_SIZES_GB]
            captured["registry"] = registry
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    registry = captured["registry"]

    # Monotone decay with index size; PSIL above PSIU everywhere.
    psil = [p.psil_kfps for p in points]
    psiu = [p.psiu_kfps for p in points]
    assert psil == sorted(psil, reverse=True)
    assert psiu == sorted(psiu, reverse=True)
    assert all(a > b for a, b in zip(psil, psiu))

    # Paper endpoints within a 2x band (fixed latencies cost us ~15-25 %).
    for point in points:
        paper = PAPER_ENDPOINTS.get(point.total_index_modeled_bytes)
        if paper:
            assert 0.5 * paper[0] < point.psil_kfps < 1.5 * paper[0]
            assert 0.5 * paper[1] < point.psiu_kfps < 1.5 * paper[1]

    # The aggregate far exceeds a single server's SIL: parallel scaling.
    from repro.analysis import sil_efficiency

    single = sil_efficiency(32 * GB, 1 * GB) / 1e3
    assert points[0].psil_kfps > 8 * single

    # Registry cross-checks: the clusters' own counters saw every PSIL
    # fingerprint, and the all-to-all exchanges balanced.
    assert registry.total("cluster.psil.fingerprints") == sum(
        p.fingerprints for p in points
    )
    sent = registry.total("cluster.exchange.bytes_sent")
    received = registry.total("cluster.exchange.bytes_received")
    assert sent == received
    assert sent > 0

    print_table(
        "Figure 13 — PSIL/PSIU speed, 16 servers",
        ["total index", "PSIL (k fps)", "PSIU (k fps)", "paper PSIL", "paper PSIU"],
        [
            (
                fmt_bytes(p.total_index_modeled_bytes),
                f"{p.psil_kfps:,.0f}",
                f"{p.psiu_kfps:,.0f}",
                PAPER_ENDPOINTS.get(p.total_index_modeled_bytes, ("-", "-"))[0],
                PAPER_ENDPOINTS.get(p.total_index_modeled_bytes, ("-", "-"))[1],
            )
            for p in points
        ],
    )
    save_result(
        results_dir,
        "fig13_psil_psiu",
        params={"sigma": sigma, "part_sizes_gb": list(PART_SIZES_GB)},
        metrics={
            "points": [
                {
                    "total_index_bytes": p.total_index_modeled_bytes,
                    "psil_kfps": p.psil_kfps,
                    "psiu_kfps": p.psiu_kfps,
                }
                for p in points
            ],
            "exchange_bytes": sent,
            "paper": {str(k): v for k, v in PAPER_ENDPOINTS.items()},
        },
        registry=registry,
    )
