#!/usr/bin/env python3
"""Disk-index lifecycle: on-disk persistence, capacity scaling, recovery.

Demonstrates the Section 4 index properties end to end:

1. build a *file-backed* disk index, close it, reopen it — entries persist;
2. fill it past the three-adjacent-full trigger and let capacity scaling
   double the bucket count without touching the chunk repository;
3. "corrupt" the index and rebuild it by scanning the self-described
   container metadata sections (the high-cost recovery path).

Run:  python examples/index_recovery.py
"""

import tempfile
from pathlib import Path

from repro.core.disk_index import DiskIndex, IndexFullError
from repro.core.tpds import TwoPhaseDeduplicator
from repro.core.fingerprint import SyntheticFingerprints
from repro.storage import ChunkRepository, FileBlockStore
from repro.util import fmt_bytes


def persistence_demo(workdir: Path) -> None:
    print("1. File-backed persistence")
    path = workdir / "index.bin"
    n_bits, bucket = 8, 512
    store = FileBlockStore(path, (1 << n_bits) * bucket)
    index = DiskIndex(n_bits, bucket_bytes=bucket, store=store)
    fps = SyntheticFingerprints(0).fresh(500)
    for i, fp in enumerate(fps):
        index.insert(fp, i)
    store.flush()
    store.close()
    reopened = DiskIndex(n_bits, bucket_bytes=bucket, store=FileBlockStore(path, (1 << n_bits) * bucket))
    assert all(reopened.lookup(fp) == i for i, fp in enumerate(fps))
    print(f"   wrote {len(fps)} entries to {path.name} "
          f"({fmt_bytes(path.stat().st_size)}), reopened, all found\n")


def capacity_scaling_demo() -> None:
    print("2. Capacity scaling on the three-adjacent-full trigger")
    index = DiskIndex(4, bucket_bytes=512)  # 16 buckets x 20 entries
    gen = SyntheticFingerprints(1)
    inserted = 0
    while True:
        try:
            index.insert(gen.fresh(1)[0], inserted)
            inserted += 1
        except IndexFullError as exc:
            print(f"   trigger at bucket {exc.bucket}, "
                  f"utilization {exc.utilization:.1%} (Table 2 regime)")
            break
    scaled = index.scale_capacity()
    print(f"   2^{index.n_bits} -> 2^{scaled.n_bits} buckets by bucket copying; "
          f"{len(scaled)} entries preserved, utilization now {scaled.utilization:.1%}\n")


def recovery_demo() -> None:
    print("3. Rebuilding a corrupted index from container metadata")
    tpds = TwoPhaseDeduplicator(
        DiskIndex(8, bucket_bytes=512), ChunkRepository(),
        filter_capacity=1 << 12, cache_capacity=1 << 18, container_bytes=256 * 1024,
    )
    fps = SyntheticFingerprints(2).fresh(1200)
    tpds.dedup1_backup([(fp, 8192) for fp in fps])
    tpds.dedup2()
    live = dict(tpds.index.iter_entries())
    # The index is lost; containers are self-described (Section 3.4), so a
    # repository scan recovers the exact mapping.
    rebuilt = DiskIndex.rebuild_from_entries(
        tpds.repository.iter_index_entries(), n_bits=tpds.index.n_bits, bucket_bytes=512
    )
    recovered = dict(rebuilt.iter_entries())
    assert recovered == live
    print(f"   scanned {len(tpds.repository)} containers, "
          f"recovered {len(recovered)} index entries — identical to the lost index")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="debar-index-"))
    persistence_demo(workdir)
    capacity_scaling_demo()
    recovery_demo()


if __name__ == "__main__":
    main()
