#!/usr/bin/env python3
"""Cluster scaling: grow a DEBAR deployment from 1 to 8 backup servers.

Shows the paper's two scaling properties in action:

* **performance scaling** — the disk index splits into ``2^w`` prefix
  parts, PSIL/PSIU run on all servers concurrently, and aggregate write
  throughput grows near-linearly with the server count (Figure 15);
* **global de-duplication** — cross-stream duplicates are stored exactly
  once no matter which server receives them, arbitrated by the owning
  index part during PSIL.

Run:  python examples/cluster_scaling.py
"""

from repro.analysis.cluster_experiment import run_write_experiment
from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.system import DebarCluster
from repro.util import GB, fmt_bytes, fmt_rate


def scaling_sweep() -> None:
    print("Write throughput vs number of backup servers (32 GB index parts):")
    print(f"{'servers':>8} {'dedup-1':>12} {'total':>12} {'capacity':>10}")
    for w in (0, 1, 2, 3):
        result = run_write_experiment(
            w_bits=w, part_modeled_bytes=32 * GB, versions=3, version_chunks=1024,
        )
        print(
            f"{result.n_servers:>8} {fmt_rate(result.dedup1_throughput):>12} "
            f"{fmt_rate(result.total_throughput):>12} "
            f"{fmt_bytes(result.supported_capacity_bytes):>10}"
        )


def cross_stream_dedup() -> None:
    print("\nCross-stream de-duplication on a 4-server cluster:")
    cfg = BackupServerConfig(
        index_n_bits=10, index_bucket_bytes=512, container_bytes=256 * 1024,
        filter_capacity=1 << 14, cache_capacity=1 << 18,
    )
    cluster = DebarCluster(w_bits=2, config=cfg)
    shared = SyntheticFingerprints(9).fresh(2000)  # every client sends this
    jobs = [cluster.director.define_job(f"host{i}", f"host{i}", []) for i in range(4)]
    streams = [[(fp, 8192) for fp in shared] for _ in jobs]
    d1 = cluster.backup_streams(list(zip(jobs, streams)))
    d2 = cluster.run_dedup2(force_psiu=True)
    print(f"  4 servers each received {len(shared)} identical chunks "
          f"({fmt_bytes(d1.logical_bytes)} logical)")
    print(f"  chunks stored: {d2.new_chunks_stored} "
          f"(duplicate decisions: {d2.duplicate_chunks})")
    print(f"  physical bytes: {fmt_bytes(cluster.physical_bytes_stored)} — stored once, "
          f"readable through any server")
    data = cluster.read_chunk(shared[0], via_server=3)
    print(f"  spot restore via server 3: {len(data)} bytes OK")
    per_part = [len(s.index) for s in cluster.servers]
    print(f"  index entries per prefix part: {per_part} (sum {sum(per_part)})")


def main() -> None:
    scaling_sweep()
    cross_stream_dedup()


if __name__ == "__main__":
    main()
