#!/usr/bin/env python3
"""Data-center backup: a scaled month of the paper's HUSt experiment.

Replays the Section 6.1 scenario — 8 clients, daily backups for 31 days,
daily-incremental/weekly-full composition — through a single-server DEBAR
and a DDFS baseline side by side, printing the Figure 6/7/8/9 series:
capacity growth, compression ratios, and throughput.

Run:  python examples/datacenter_backup.py  [--days N] [--chunks-per-day N]
"""

import argparse

from repro.analysis.hust_experiment import paper_scaled_configs, run_hust_comparison
from repro.util import fmt_bytes, fmt_rate
from repro.workloads import HustConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=31)
    parser.add_argument("--chunks-per-day", type=int, default=16_000,
                        help="fleet-wide daily logical chunks (scales byte volume)")
    args = parser.parse_args()

    hust_cfg, debar_cfg = paper_scaled_configs()
    hust_cfg = HustConfig(
        mean_daily_chunks=args.chunks_per_day,
        days=args.days,
        seed=hust_cfg.seed,
        section_chunks=hust_cfg.section_chunks,
    )
    print(f"Backing up {hust_cfg.n_clients} clients for {hust_cfg.days} days "
          f"(~{fmt_bytes(hust_cfg.mean_daily_chunks * hust_cfg.chunk_size)}/day)...\n")
    result = run_hust_comparison(hust_cfg, debar_config=debar_cfg)

    print(f"{'day':>4} {'logical':>10} {'xfer':>10} {'d1 ratio':>9} "
          f"{'d2?':>4} {'DEBAR cum':>10} {'DDFS cum':>9} {'d1 MB/s':>8} {'DDFS MB/s':>9}")
    for r in result.days:
        print(
            f"{r.day + 1:>4} {fmt_bytes(r.logical_bytes):>10} "
            f"{fmt_bytes(r.dedup1_transferred_bytes):>10} "
            f"{r.dedup1_ratio_daily:>8.2f} "
            f"{'yes' if r.dedup2_ran else '-':>4} "
            f"{result.debar_ratio_cum(r.day):>9.2f} "
            f"{result.ddfs_ratio_cum(r.day):>8.2f} "
            f"{r.dedup1_throughput / (1 << 20):>8.0f} "
            f"{r.ddfs_throughput / (1 << 20):>9.0f}"
        )

    last = result.days[-1]
    print(f"\nAfter {hust_cfg.days} days:")
    print(f"  logical data protected : {fmt_bytes(result.logical_cum())}")
    print(f"  DEBAR physical stored  : {fmt_bytes(last.debar_physical_cum)} "
          f"({result.debar_ratio_cum():.2f}:1 — paper: 9.39:1)")
    print(f"  DDFS physical stored   : {fmt_bytes(last.ddfs_physical_cum)} "
          f"({result.ddfs_ratio_cum():.2f}:1)")
    print(f"  dedup-1 cumulative     : {result.dedup1_ratio_cum():.2f}:1 (paper ~3.6:1)")
    print(f"  dedup-2 cumulative     : {result.dedup2_ratio_cum():.2f}:1 (paper ~2.6:1), "
          f"ran on days {[d + 1 for d in result.dedup2_run_days]}")
    print(f"  DEBAR dedup-1 thruput  : {fmt_rate(result.dedup1_throughput_cum())} (paper 641.6MB/s)")
    print(f"  DEBAR total thruput    : {fmt_rate(result.debar_total_throughput_cum())} (paper 329.2MB/s)")
    print(f"  DDFS thruput           : {fmt_rate(result.ddfs_throughput_cum())} (paper ~189MB/s)")


if __name__ == "__main__":
    main()
