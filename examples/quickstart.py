#!/usr/bin/env python3
"""Quickstart: back up a directory tree with DEBAR, edit it, back it up
again, and restore every version byte-identically.

Walks the whole Figure 2 pipeline in file mode: CDC chunking and SHA-1
fingerprinting on the client, the preliminary filter and chunk log in
dedup-1, SIL -> chunk storing -> SIU in dedup-2, and the LPC-cached
restore path.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import DebarSystem
from repro.server import BackupServerConfig
from repro.util import fmt_bytes, fmt_duration
from repro.workloads import FileTreeGenerator, mutate_tree


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="debar-quickstart-"))
    source = workdir / "data"
    print(f"Working under {workdir}")

    # 1. Create something worth protecting: ~2 MB of files.
    files = FileTreeGenerator(seed=42).generate(
        source, n_files=12, n_dirs=3, min_size=64 * 1024, max_size=256 * 1024
    )
    total = sum(f.stat().st_size for f in files)
    print(f"Generated {len(files)} files, {fmt_bytes(total)}")

    # 2. Bring up a single-server DEBAR (scaled-down geometry, real payloads).
    system = DebarSystem(
        config=BackupServerConfig(
            index_n_bits=10,
            index_bucket_bytes=512,
            container_bytes=512 * 1024,
            filter_capacity=1 << 15,
            cache_capacity=1 << 20,
            materialize=True,
        )
    )
    job = system.define_job(
        "quickstart", client="laptop", dataset=[source], schedule="daily at 1.05am"
    )

    # 3. First backup: everything is new.
    run1, d1 = system.run_backup(job)
    print(
        f"\nBackup #1: {d1.logical_chunks} chunks, "
        f"{fmt_bytes(d1.logical_bytes)} logical, "
        f"{fmt_bytes(d1.transferred_bytes)} transferred "
        f"(dedup-1 ratio {d1.compression_ratio:.2f}:1)"
    )
    d2 = system.run_dedup2()
    print(
        f"dedup-2: stored {d2.new_chunks_stored} chunks in "
        f"{d2.containers_written} containers; SIL {fmt_duration(d2.sil_time)}, "
        f"SIU {fmt_duration(d2.siu_time)} (simulated device time)"
    )

    # 4. Edit the tree and back it up again: the preliminary filter, seeded
    #    with run #1's fingerprints by the job chain, suppresses the bulk.
    edits = mutate_tree(source, seed=7, new_files=2, delete_files=1)
    run2, d1b = system.run_backup(job)
    print(
        f"\nEdited {edits['edited']} files (+{edits['created']}, -{edits['deleted']}); "
        f"Backup #2 transferred only {fmt_bytes(d1b.transferred_bytes)} of "
        f"{fmt_bytes(d1b.logical_bytes)} "
        f"({d1b.filtered_chunks} of {d1b.logical_chunks} chunks filtered)"
    )
    system.run_dedup2()

    # 5. Restore both versions and verify the latest matches the source.
    restore2 = workdir / "restore-v2"
    system.restore_run(run2, restore2, strip_prefix=workdir)
    mismatches = 0
    for path in sorted(p for p in source.rglob("*") if p.is_file()):
        restored = restore2 / path.relative_to(workdir)
        if restored.read_bytes() != path.read_bytes():
            mismatches += 1
    print(f"\nRestore of backup #2: {'OK — byte-identical' if not mismatches else f'{mismatches} mismatches!'}")

    restore1 = workdir / "restore-v1"
    system.restore_run(run1, restore1, strip_prefix=workdir)
    print(f"Restore of backup #1 (pre-edit version): {len(list(restore1.rglob('*')))} entries")

    print(
        f"\nTotals: {fmt_bytes(system.logical_bytes_protected)} protected, "
        f"{fmt_bytes(system.physical_bytes_stored)} stored "
        f"({system.compression_ratio:.2f}:1), "
        f"LPC hit rate on restore {system.server.chunk_store.lpc_hit_rate:.1%}"
    )


if __name__ == "__main__":
    main()
