#!/usr/bin/env python3
"""Head-to-head: DEBAR vs DDFS vs Venti-style random-index dedup.

Feeds the same two-session backup workload (fresh data, then a 70 %
duplicate second session) through all three systems and compares the
simulated time each needed — the motivating comparison of Sections 1-2:

* Venti pays one random disk I/O per fingerprint (hundreds of fps/s);
* DDFS avoids most random I/O with its Bloom filter + LPC but receives
  every logical byte over the NIC and pauses to flush its write buffer;
* DEBAR filters duplicates before they cross the wire and batches all
  index I/O into sequential SIL/SIU sweeps.

Run:  python examples/compare_baselines.py
"""

from repro.baselines import DdfsServer, VentiServer
from repro.core.disk_index import DiskIndex
from repro.core.fingerprint import SyntheticFingerprints
from repro.server import BackupServerConfig
from repro.storage import ChunkRepository
from repro.system import DebarSystem
from repro.util import fmt_bytes, fmt_duration, fmt_rate


def build_sessions(n_sessions: int = 5, session_chunks: int = 3000, dup: float = 0.9):
    """A nightly-backup chain: each session is ~90 % its predecessor."""
    gen = SyntheticFingerprints(0)
    sessions = [gen.fresh(session_chunks)]
    keep = int(session_chunks * dup)
    for _ in range(n_sessions - 1):
        sessions.append(sessions[-1][:keep] + gen.fresh(session_chunks - keep))
    return [[(fp, 8192) for fp in s] for s in sessions]


def run_debar(sessions):
    system = DebarSystem(
        config=BackupServerConfig(
            index_n_bits=10, index_bucket_bytes=512, container_bytes=512 * 1024,
            filter_capacity=1 << 14, cache_capacity=1 << 18, siu_every=2,
        )
    )
    job = system.define_job("nightly", client="host")
    for t, session in enumerate(sessions):
        system.backup_stream(job, session, timestamp=float(t), auto_dedup2=False)
        system.run_dedup2(force_siu=(t == len(sessions) - 1))
    return system.elapsed, system.physical_bytes_stored


def run_ddfs(sessions):
    server = DdfsServer(
        DiskIndex(10, bucket_bytes=512), ChunkRepository(),
        bloom_bits=1 << 18, lpc_containers=64,
        write_buffer_capacity=1 << 12, container_bytes=512 * 1024,
    )
    for session in sessions:
        server.backup_stream(session)
        server.finish_backup()
    return server.clock.now, server.repository.stored_chunk_bytes


def run_venti(sessions):
    server = VentiServer(
        DiskIndex(10, bucket_bytes=512), ChunkRepository(), container_bytes=512 * 1024
    )
    for session in sessions:
        server.backup_stream(session)
    return server.clock.now, server.repository.stored_chunk_bytes


def main() -> None:
    sessions = build_sessions()
    logical = sum(size for s in sessions for _, size in s)
    print(f"Workload: {len(sessions)} nightly sessions, {fmt_bytes(logical)} logical "
          f"({sum(len(s) for s in sessions)} chunks, ~90% session-to-session duplication)\n")

    rows = []
    for name, runner in (("DEBAR", run_debar), ("DDFS", run_ddfs), ("Venti", run_venti)):
        elapsed, stored = runner(sessions)
        rows.append((name, elapsed, stored))

    print(f"{'system':>7} {'time':>12} {'throughput':>14} {'stored':>10}")
    for name, elapsed, stored in rows:
        print(f"{name:>7} {fmt_duration(elapsed):>12} "
              f"{fmt_rate(logical / elapsed):>14} {fmt_bytes(stored):>10}")

    debar_t = rows[0][1]
    print(f"\nDEBAR vs DDFS : {rows[1][1] / debar_t:.1f}x faster")
    print(f"DEBAR vs Venti: {rows[2][1] / debar_t:.0f}x faster "
          f"(Venti is pinned at ~{522:.0f} random lookups/s)")
    stored = {stored for _, _, stored in rows}
    print(f"All three stored the same physical bytes: {len(stored) == 1}")


if __name__ == "__main__":
    main()
