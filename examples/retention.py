#!/usr/bin/env python3
"""Retention lifecycle: diff, forget, garbage-collect, deep-verify.

The operations a long-lived backup vault needs beyond the paper's write
path: comparing versions by fingerprint, expiring old runs, reclaiming the
space their unshared chunks held (without touching chunks newer runs still
reference), and proving integrity end to end by re-hashing every payload.

Run:  python examples/retention.py
"""

import tempfile
from pathlib import Path

from repro.system import DebarVault
from repro.util import fmt_bytes
from repro.workloads import FileTreeGenerator, mutate_tree


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="debar-retention-"))
    src = workdir / "data"
    FileTreeGenerator(seed=17).generate(
        src, n_files=10, n_dirs=3, min_size=32 * 1024, max_size=128 * 1024
    )

    with DebarVault(workdir / "vault", container_bytes=64 * 1024) as vault:
        # Three generations of nightly backups.
        runs = [vault.backup("nightly", [src], timestamp=0.0)]
        for day in (1, 2):
            mutate_tree(src, seed=day, edit_fraction=0.4, new_files=2, delete_files=1)
            runs.append(vault.backup("nightly", [src], timestamp=float(day)))
        s = vault.stats()
        print(f"3 generations: {fmt_bytes(s['logical_bytes'])} logical, "
              f"{fmt_bytes(s['physical_bytes'])} stored ({s['compression_ratio']:.2f}:1)")

        # What changed between generation 1 and 3?
        diff = vault.diff(runs[0].run_id, runs[2].run_id)
        print(f"diff gen1 -> gen3: +{len(diff['added'])} files, "
              f"-{len(diff['removed'])}, ~{len(diff['changed'])} changed, "
              f"{len(diff['unchanged'])} untouched")

        # Expire generation 1 and reclaim.
        before = vault.stats()["physical_bytes"]
        vault.forget(runs[0].run_id)
        report = vault.gc(rewrite_threshold=0.9)
        after = vault.stats()["physical_bytes"]
        print(f"\ngc after forgetting gen1: scanned {report.containers_scanned} "
              f"containers, removed {report.containers_removed}, "
              f"rewrote {report.containers_rewritten} "
              f"(copied {report.live_chunks_copied} shared chunks forward)")
        print(f"physical: {fmt_bytes(before)} -> {fmt_bytes(after)} "
              f"({fmt_bytes(report.bytes_reclaimed)} reclaimed)")

        # The surviving generations still verify and restore byte-identically.
        deep = vault.verify(deep=True)
        print(f"\ndeep verify: {deep['payloads_verified']} payloads re-hashed — OK")
        vault.restore(runs[2].run_id, workdir / "restore", strip_prefix=workdir)
        mismatches = sum(
            1
            for p in src.rglob("*")
            if p.is_file()
            and (workdir / "restore" / p.relative_to(workdir)).read_bytes() != p.read_bytes()
        )
        print(f"restore of gen3 after gc: "
              f"{'byte-identical' if mismatches == 0 else f'{mismatches} MISMATCHES'}")


if __name__ == "__main__":
    main()
