"""Adjacent-range coalescing shared by every batched read planner.

Two planners in the tree batch adjacent work items into one request:

* the cold-tier read planner (:mod:`repro.backend.planner`) coalesces
  adjacent chunk byte ranges inside a container into multi-range GETs;
* :class:`repro.net.client.RemoteChunkReader` groups consecutive planned
  fingerprints into one batched ``CHUNK_READ``.

Both reduce to the same question — *which spans of a sorted sequence are
close enough to fetch together?* — so the grouping lives here once, with
its own unit tests, and the two planners cannot drift.

A :class:`Span` is ``(start, length, item)`` in whatever coordinate the
caller batches over (byte offsets for range GETs, plan indices for wire
batches).  :func:`coalesce` groups sorted spans while the gap to the next
span stays within ``max_gap`` and the group stays under its caps; a group's
``start``/``end`` give the single fetch that covers every member (gap bytes
included — deliberate over-fetch that trades waste for request count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Span(Generic[T]):
    """One item occupying ``[start, start + length)`` on the batching axis."""

    start: int
    length: int
    item: T

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class SpanGroup(Generic[T]):
    """A run of spans one fetch can cover."""

    spans: List[Span[T]]

    @property
    def start(self) -> int:
        return self.spans[0].start

    @property
    def end(self) -> int:
        return max(s.end for s in self.spans)

    @property
    def length(self) -> int:
        """Bytes (or slots) the covering fetch spans, gaps included."""
        return self.end - self.start

    @property
    def items(self) -> List[T]:
        return [s.item for s in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


def coalesce(
    spans: Iterable[Span[T]],
    *,
    max_gap: int = 0,
    max_items: Optional[int] = None,
    max_span: Optional[int] = None,
) -> List[SpanGroup[T]]:
    """Group spans that are adjacent (within ``max_gap``) into fetch groups.

    ``spans`` is sorted by ``start`` first, so callers may pass any order.
    A new group opens when the next span starts more than ``max_gap`` past
    the current group's end, when the group already holds ``max_items``
    spans, or when extending it would push the covered extent past
    ``max_span``.  Zero-length inputs yield zero groups.

    Overlapping spans always share a group (an overlap is a gap of less
    than zero); duplicate spans are kept — deduplication is the caller's
    business, not the geometry's.
    """
    if max_gap < 0:
        raise ValueError("max_gap must be >= 0")
    if max_items is not None and max_items < 1:
        raise ValueError("max_items must be >= 1")
    if max_span is not None and max_span < 1:
        raise ValueError("max_span must be >= 1")
    ordered = sorted(spans, key=lambda s: (s.start, s.end))
    groups: List[SpanGroup[T]] = []
    current: Optional[SpanGroup[T]] = None
    current_end = 0
    for span in ordered:
        if current is not None:
            too_far = span.start > current_end + max_gap
            too_many = max_items is not None and len(current) >= max_items
            too_wide = max_span is not None and (
                max(current_end, span.end) - current.start > max_span
            )
            if too_far or too_many or too_wide:
                current = None
        if current is None:
            current = SpanGroup([span])
            groups.append(current)
            current_end = span.end
        else:
            current.spans.append(span)
            current_end = max(current_end, span.end)
    return groups


def leading_run(
    spans: Sequence[Span[T]],
    *,
    max_gap: int = 0,
    max_items: Optional[int] = None,
    max_span: Optional[int] = None,
) -> List[Span[T]]:
    """The first coalesced group of an *already ordered* sequence.

    This is the wire planner's shape: from the current plan position,
    batch the run of consecutive entries — stop at the first break in
    adjacency or at the caps.  Returns ``[]`` for an empty sequence.
    """
    members: List[Span[T]] = []
    end = 0
    start = 0
    for span in spans:
        if members:
            if span.start > end + max_gap:
                break
            if max_items is not None and len(members) >= max_items:
                break
            if max_span is not None and max(end, span.end) - start > max_span:
                break
            end = max(end, span.end)
        else:
            start, end = span.start, span.end
        members.append(span)
    return members


class SegmentBuffer:
    """Random-access reads over a handful of fetched segments.

    A planner fetches a few coalesced ranges of a remote object; records
    then read their exact payload slices back out.  ``read`` raises
    ``KeyError`` when no fetched segment covers the requested range, so a
    planner bug surfaces as a loud miss instead of silent short data.
    """

    def __init__(self) -> None:
        self._segments: List[tuple] = []  # (start, bytes), insertion order

    def add(self, start: int, data: bytes) -> None:
        self._segments.append((start, data))

    def read(self, offset: int, length: int) -> bytes:
        for start, data in self._segments:
            if start <= offset and offset + length <= start + len(data):
                lo = offset - start
                return data[lo : lo + length]
        raise KeyError(
            f"no fetched segment covers [{offset}, {offset + length})"
        )

    def covers(self, offset: int, length: int) -> bool:
        try:
            self.read(offset, length)
            return True
        except KeyError:
            return False

    @property
    def fetched_bytes(self) -> int:
        return sum(len(data) for _, data in self._segments)
