"""Byte-size constants and human-readable formatting.

The de-duplication literature (and the DEBAR paper) uses power-of-two units
throughout ("8KB chunk", "1GB Bloom filter", "32GB disk index"), so the short
names ``KB``/``MB``/... are binary units here.  The explicit ``KiB``/``MiB``
aliases are provided for readers who prefer unambiguous names.
"""

from __future__ import annotations

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40
PiB = 1 << 50

# The paper's units: binary.
KB = KiB
MB = MiB
GB = GiB
TB = TiB
PB = PiB

_SCALES = [(PiB, "PB"), (TiB, "TB"), (GiB, "GB"), (MiB, "MB"), (KiB, "KB")]


def fmt_bytes(n: float) -> str:
    """Format a byte count with the paper's binary units, e.g. ``1.82TB``."""
    if n < 0:
        return "-" + fmt_bytes(-n)
    for scale, suffix in _SCALES:
        if n >= scale:
            return f"{n / scale:.2f}{suffix}"
    return f"{n:.0f}B"


def fmt_duration(seconds: float) -> str:
    """Format a duration as seconds/minutes/hours, e.g. ``2.53min``."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    if seconds < 2 * 3600:
        return f"{seconds / 60:.2f}min"
    return f"{seconds / 3600:.2f}h"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a data rate, e.g. ``329.2MB/s``."""
    return fmt_bytes(bytes_per_second) + "/s"
