"""Small shared utilities: byte-size units, bit arithmetic, RNG helpers."""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    PB,
    KiB,
    MiB,
    GiB,
    TiB,
    PiB,
    fmt_bytes,
    fmt_duration,
    fmt_rate,
)
from repro.util.bits import (
    bit_prefix,
    is_power_of_two,
    log2_exact,
    required_bits,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "PiB",
    "fmt_bytes",
    "fmt_duration",
    "fmt_rate",
    "bit_prefix",
    "is_power_of_two",
    "log2_exact",
    "required_bits",
]
