"""Bit-level helpers shared by the disk index and the fingerprint module."""

from __future__ import annotations


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return ``n`` such that ``2**n == x``; raise if ``x`` is not a power of two."""
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a power of two")
    return x.bit_length() - 1


def required_bits(n_values: int) -> int:
    """Number of bits needed to address ``n_values`` distinct values."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    return max(1, (n_values - 1).bit_length())


def bit_prefix(data: bytes, bits: int) -> int:
    """Return the first ``bits`` bits of ``data`` as an unsigned integer.

    This is the paper's bucket-number function: DEBAR maps a fingerprint to
    disk-index bucket ``first n bits``, to a backup server by its first ``w``
    bits, and to an index-cache bucket by its first ``m`` bits (Sections 4-5).
    """
    if bits < 0:
        raise ValueError("bits must be non-negative")
    if bits == 0:
        return 0
    nbytes = (bits + 7) // 8
    if nbytes > len(data):
        raise ValueError(f"need {nbytes} bytes for a {bits}-bit prefix, got {len(data)}")
    value = int.from_bytes(data[:nbytes], "big")
    return value >> (nbytes * 8 - bits)
