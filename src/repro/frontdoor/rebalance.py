"""Rebalancing: turning a ring diff into an executed container move list
(DESIGN.md §14.4).

When membership changes, the new :class:`PlacementRing` assigns some
containers replica sets their copies are not on yet.  The *plan* is the
difference made explicit: one step per ``(origin, container_id, dst)``
that the ring wants covered and nobody holds.  Consistent hashing keeps
the plan small — a join moves ≈1/N of the keys, so ≈1/N of the
replicated containers gain one new home each.

The planner only needs what the cluster already reports: each live
node's ``REPL_STATUS`` carries its own sealed container ids (the
origin inventory) and its replica holdings (the coverage map).  Steps
execute over the *existing* replication verbs — ``CONTAINER_FETCH`` from
any current holder, ``CONTAINER_PUSH`` to the new home — so the mover
needs no new server support and inherits their content verification.

Resumability is layered twice: the router persists the plan (with
``done`` flags advanced by ``REBALANCE_ACK``) in
``<state>/rebalance.json``, so a crashed executor re-runs only the
remainder; and the pushes themselves are idempotent (a replica store
accepts a duplicate container as a no-op), so re-executing an
acknowledged-but-unrecorded step is harmless.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.net import messages as m
from repro.net.client import NetClient, RetryPolicy
from repro.replication.ring import PlacementRing

_PLAN_FILE = "rebalance.json"


def _parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host or "127.0.0.1", int(port)


def collect_inventories(
    addresses: Dict[str, str], retry: Optional[RetryPolicy] = None
) -> Dict[str, dict]:
    """``REPL_STATUS`` from every reachable node; unreachable ones are
    simply absent (their containers cannot be planned from, and their
    replica holdings are invisible — the conservative direction: a copy
    we cannot see might be re-made, never skipped)."""
    out: Dict[str, dict] = {}
    for name in sorted(addresses):
        host, port = _parse_address(addresses[name])
        try:
            with NetClient(
                host, port, client_name="rebalance", retry=retry
            ) as net:
                out[name] = net.call_json(m.REPL_STATUS, {})
        except Exception:
            continue
    return out


def build_plan(
    ring: PlacementRing, inventories: Dict[str, dict], epoch: int
) -> dict:
    """The move list: every ``(origin, container, dst)`` the ring wants
    covered that no current holder covers.

    Steps are deterministic and sorted, so two planners over the same
    inputs emit the same plan (ids double as idempotency keys).
    """
    steps: List[dict] = []
    for origin in sorted(inventories):
        inventory = inventories[origin]
        own = [int(c) for c in inventory.get("containers", [])]
        for cid in sorted(own):
            desired = ring.replicas_for_container(origin, cid)
            holders = {origin}
            for peer in inventories:
                held = (
                    inventories[peer]
                    .get("replicas", {})
                    .get(origin, {})
                    .get("container_ids", [])
                )
                if cid in held:
                    holders.add(peer)
            for dst in desired:
                if dst in holders:
                    continue
                steps.append(
                    {
                        "id": f"{origin}:{cid}:{dst}",
                        "origin": origin,
                        "container_id": cid,
                        "dst": dst,
                        "sources": sorted(holders),
                        "done": False,
                    }
                )
    return {"epoch": epoch, "steps": steps}


class RebalancePlanner:
    """The router-side plan store: build, persist, acknowledge.

    A plan is pinned to the epoch it was built at; a later membership
    change invalidates the remainder (the moves may no longer be wanted)
    and the next ``REBALANCE_PLAN`` replans from live inventories.
    """

    def __init__(self, state_dir: Optional[Path] = None) -> None:
        if state_dir is not None:
            Path(state_dir).mkdir(parents=True, exist_ok=True)
            self._path = Path(state_dir) / _PLAN_FILE
        else:
            self._path = None
        self.plan: Optional[dict] = None
        if self._path is not None and self._path.exists():
            self.plan = json.loads(self._path.read_text())

    def _save(self) -> None:
        if self._path is None or self.plan is None:
            return
        tmp = self._path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.plan, indent=1, sort_keys=True))
        tmp.replace(self._path)

    def current(
        self, ring: PlacementRing, inventories: Dict[str, dict], epoch: int
    ) -> dict:
        """The pending plan for ``epoch`` — reused while steps remain, so
        a crashed executor resumes instead of replanning from scratch."""
        if (
            self.plan is not None
            and self.plan.get("epoch") == epoch
            and any(not s["done"] for s in self.plan["steps"])
        ):
            return self.plan
        self.plan = build_plan(ring, inventories, epoch)
        self._save()
        return self.plan

    def ack(self, step_id: str) -> bool:
        """Mark one step done (idempotent); returns False for unknown ids."""
        if self.plan is None:
            return False
        for step in self.plan["steps"]:
            if step["id"] == step_id:
                if not step["done"]:
                    step["done"] = True
                    self._save()
                return True
        return False

    def summary(self) -> dict:
        if self.plan is None:
            return {"epoch": None, "steps": 0, "done": 0}
        steps = self.plan["steps"]
        return {
            "epoch": self.plan["epoch"],
            "steps": len(steps),
            "done": sum(1 for s in steps if s["done"]),
        }


def execute_plan(
    plan: dict,
    addresses: Dict[str, str],
    ack: Callable[[str], None],
    retry: Optional[RetryPolicy] = None,
    limit: Optional[int] = None,
) -> dict:
    """Run the plan's pending steps: fetch each container image from a
    holder, push it to its new home, acknowledge.

    ``limit`` caps the steps executed this invocation (the crash-recovery
    drill runs the first half, "crashes", and resumes).  Connections are
    cached per node; the origin's mirrored catalog follows its containers
    to each new home once per ``(origin, dst)`` pair, so a later failover
    restore from that home has the run metadata too.
    """
    clients: Dict[str, NetClient] = {}

    def client_for(name: str) -> NetClient:
        if name not in clients:
            host, port = _parse_address(addresses[name])
            clients[name] = NetClient(
                host, port, client_name="rebalance", retry=retry
            )
        return clients[name]

    executed = 0
    failed: List[dict] = []
    catalogs_shipped = set()
    try:
        for step in plan["steps"]:
            if step["done"]:
                continue
            if limit is not None and executed >= limit:
                break
            origin, cid, dst = step["origin"], step["container_id"], step["dst"]
            sources = [s for s in step["sources"] if s in addresses]
            error: Optional[str] = None
            image = None
            for source in sources:
                try:
                    payload = client_for(source).call(
                        m.CONTAINER_FETCH,
                        m.encode_json({"origin": origin, "container_id": cid}),
                    )
                    _, image = m.decode_container_image(payload)
                    break
                except Exception as exc:
                    error = f"fetch from {source}: {exc}"
                    continue
            if image is None:
                failed.append({"id": step["id"], "error": error or "no source"})
                continue
            try:
                client_for(dst).call(
                    m.CONTAINER_PUSH,
                    m.encode_container_image(
                        {"origin": origin, "container_id": cid}, image
                    ),
                )
                if (origin, dst) not in catalogs_shipped:
                    _ship_catalog(client_for, sources, origin, dst)
                    catalogs_shipped.add((origin, dst))
            except Exception as exc:
                failed.append({"id": step["id"], "error": f"push to {dst}: {exc}"})
                continue
            ack(step["id"])
            step["done"] = True
            executed += 1
    finally:
        for net in clients.values():
            net.close()
    pending = sum(1 for s in plan["steps"] if not s["done"])
    return {
        "executed": executed,
        "failed": failed,
        "pending": pending,
        "total": len(plan["steps"]),
    }


def _ship_catalog(client_for, sources: List[str], origin: str, dst: str) -> None:
    """Best-effort catalog mirror to a container's new home."""
    for source in sources:
        try:
            doc = m.decode_json(
                client_for(source).call(
                    m.CATALOG_FETCH, m.encode_json({"origin": origin})
                )
            )
            catalog = doc.get("catalog")
            if not isinstance(catalog, dict):
                continue
            client_for(dst).call(
                m.CATALOG_PUSH,
                m.encode_json({"origin": origin, "catalog": catalog}),
            )
            return
        except Exception:
            continue
