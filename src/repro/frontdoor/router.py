"""The front-door router: one address for the whole cluster (DESIGN.md §14).

:class:`FrontDoorRouter` is an asyncio daemon speaking the same ``DBAR``
frame protocol as ``repro serve`` (it reuses the framing layer and the
serving core's event-loop shape), but it owns no vault.  It owns the
:class:`~repro.frontdoor.membership.ClusterMembership` table and serves
two kinds of clients:

* **smart clients** ask ``ROUTE_LOOKUP`` for the ring inputs + address
  book, rebuild the :class:`PlacementRing` locally (determinism is the
  contract), and talk to nodes directly — the router then costs one
  small RPC per topology change, validated cheaply via ``ROUTE_HINT``;
* **dumb clients** connect as if the router were a ``repro serve`` node
  and every data frame is **proxied**: forwarded verbatim (same request
  id, so the nodes' idempotency caches keep protecting retries) to the
  node the ring picks.

Routing keys: a backup session is pinned to ``job:<name>`` at
``SESSION_BEGIN`` (the session id in ``SESSION_OK`` keys the rest of the
session's frames to that node); content-addressed reads
(``CHUNK_READ``, keyed by fingerprint) try the connection's last-good
node first and fail over across the live set — a node that lacks the
data answers with an ``ERROR`` frame and the next candidate is tried,
which is exactly how replica-set failover reaches a dead node's
surviving copies (the serve core falls through to its replica store).
Run-keyed frames are different: run ids are **per vault** (every node
numbers its own runs from 1), so ``META_GET`` is addressed by
(job, run id) — the job resolved via small ``RUNS`` queries when the
client did not supply one, ambiguity refused rather than guessed, and
nodes validating the job server-side so a colliding id on the wrong
vault errors instead of answering — and the destructive ``FORGET``
routes to exactly one resolved owner and never fails over.  Two deeper
fallbacks make restores survive a dead origin outright: a
``CHUNK_READ`` batch no single node can serve whole is split
per-fingerprint across the live set, and a ``META_GET`` for a dead
node's run is synthesized from the mirrored run catalog a surviving
replica holds.

Health is a PING sweep (:class:`HealthMonitor`) plus the data path
itself: a proxied frame that dies on transport counts as a failed probe,
so a crashed node stops receiving traffic after ``mark_down_after``
consecutive failures without waiting out the sweep timer.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.frontdoor.health import (
    DEFAULT_MARK_DOWN_AFTER,
    DEFAULT_PROBE_INTERVAL,
    DEFAULT_PROBE_TIMEOUT,
    HealthMonitor,
)
from repro.frontdoor.membership import ClusterMembership, MembershipError
from repro.frontdoor.rebalance import RebalancePlanner, collect_inventories
from repro.net import messages as m
from repro.net.client import RetryPolicy
from repro.net.framing import FRAME_HEADER_SIZE, Frame, FrameError, decode_header
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Budget for one proxied round trip (generous: SESSION_COMMIT runs
#: dedup-2 server-side).
DEFAULT_PROXY_TIMEOUT = 60.0
#: Budget for opening + handshaking a downstream connection.
DEFAULT_CONNECT_TIMEOUT = 2.0

#: Session-scoped message types whose payload *starts* with the u32
#: session id (binary payloads).
_SESSION_PREFIXED = frozenset({m.FILTER_QUERY, m.CHUNK_APPEND, m.META_PUT})
#: Session-scoped message types carrying the session id in JSON.
_SESSION_JSON = frozenset({m.SESSION_COMMIT, m.SESSION_ABORT})
#: Read types that fail over across the live set on any error.  Only
#: content-addressed reads belong here: a CHUNK_READ is keyed by
#: fingerprint (a content hash), so whichever node answers, the bytes are
#: the right bytes.  META_GET and FORGET are keyed by *per-vault* run ids
#: that collide across nodes (every vault numbers its own runs from 1),
#: so they route through the job-qualified paths below instead —
#: and FORGET, being destructive, never fails over at all.
#: DELTA_FETCH qualifies: its key (origin, job, base, run) names one
#: archive segment globally, so any node holding the chain answers with
#: the right bytes.
_FAILOVER_READS = frozenset({m.CHUNK_READ, m.DELTA_FETCH})


class RouteError(Exception):
    """The router could not place or forward a frame."""


def _error_frame(request_id: int, error: str, message: str) -> Frame:
    return Frame(
        m.ERROR,
        request_id,
        m.encode_json({"error": error, "message": message}),
    )


def _parse_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    return host or "127.0.0.1", int(port)


class _Downstream:
    """One router->node connection, multiplexed by request id.

    Frames are forwarded with the client's own request ids; a single
    reader task resolves pending futures as the node answers in whatever
    order its event loop finishes them.
    """

    def __init__(self, name: str, address: str, router: "FrontDoorRouter") -> None:
        self.name = name
        self.address = address
        self._router = router
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._wlock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self._pending: Dict[int, asyncio.Future] = {}
        self._pump_task: Optional[asyncio.Task] = None

    async def ensure(self, hello_doc: dict) -> None:
        # Serialized: two frames dispatched concurrently for the same node
        # must not both open a connection (the loser's socket and pump
        # task would leak for the life of the client connection).
        async with self._connect_lock:
            if self._writer is not None:
                return
            host, port = _parse_address(self.address)
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=self._router.connect_timeout,
            )
            self._pump_task = asyncio.ensure_future(self._pump())
            # Replay the client's HELLO (it may carry a tenant token the node
            # wants); the router's own id keeps it out of the client's id space.
            response = await self.call(
                Frame(m.HELLO, self._router._next_rid(), m.encode_json(hello_doc)),
                timeout=self._router.connect_timeout,
            )
            if response.msg_type != m.HELLO_OK:
                doc = m.decode_json(response.payload)
                raise RouteError(
                    f"{self.name} refused the handshake: {doc.get('message', '')}"
                )

    async def call(self, frame: Frame, timeout: float) -> Frame:
        writer = self._writer
        if writer is None:
            raise ConnectionError(f"downstream {self.name} is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[frame.request_id] = future
        try:
            async with self._wlock:
                writer.write(frame.encode())
                await writer.drain()
            return await asyncio.wait_for(future, timeout=timeout)
        finally:
            self._pending.pop(frame.request_id, None)

    async def _pump(self) -> None:
        reader = self._reader
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_SIZE)
                msg_type, request_id, length = decode_header(header)
                payload = (
                    await reader.readexactly(length) if length else b""
                )
                future = self._pending.get(request_id)
                if future is not None and not future.done():
                    future.set_result(Frame(msg_type, request_id, payload))
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            FrameError,
            asyncio.CancelledError,
        ) as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"downstream {self.name} dropped: {exc}")
                    )
            # The transport is dead: drop it *now* so the next proxied
            # frame reconnects immediately instead of writing into a dead
            # socket and waiting out the full proxy timeout.
            writer, self._writer, self._reader = self._writer, None, None
            if writer is not None:
                with contextlib.suppress(Exception):
                    writer.close()

    async def close(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._pump_task
            self._pump_task = None
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
            self._writer = None
        self._reader = None


class _Connection:
    """Per-client-connection proxy state."""

    def __init__(self) -> None:
        self.hello_doc: dict = {"client": "router"}
        self.downstreams: Dict[str, _Downstream] = {}
        #: session id -> node name.  Session ids are allocated per node,
        #: so two nodes can hand out the same id; mapping them per client
        #: connection keeps that collision away from everything except a
        #: client interleaving concurrent backups to different jobs on one
        #: socket (which the CLI never does — it opens one connection per
        #: invocation).
        self.sessions: Dict[int, str] = {}
        #: Last node that answered an unkeyed read for this connection.
        self.pin: Optional[str] = None


class FrontDoorRouter:
    """The cluster's single client-facing address."""

    def __init__(
        self,
        membership: ClusterMembership,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        state_dir: Optional[Path] = None,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        mark_down_after: int = DEFAULT_MARK_DOWN_AFTER,
        proxy_timeout: float = DEFAULT_PROXY_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        self.membership = membership
        self.proxy_timeout = proxy_timeout
        self.connect_timeout = connect_timeout
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self.health = HealthMonitor(
            membership,
            interval=probe_interval,
            probe_timeout=probe_timeout,
            mark_down_after=mark_down_after,
            registry=registry,
        )
        self.planner = RebalancePlanner(state_dir)
        # Router request ids (downstream HELLOs) get their own nonce so
        # they never collide with a client's id space.
        self._rid_base = random.SystemRandom().getrandbits(32) << 32
        self._rid_next = 0
        # Bind synchronously: server_address valid on return, bind failure
        # raises from the constructor (same contract as the serve core).
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(128)
        except OSError:
            sock.close()
            raise
        self._listen_sock = sock
        self.server_address = sock.getsockname()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server = None
        self._stop_requested = False
        self._stopped = threading.Event()
        self._conn_tasks: set = set()
        # Blocking cluster work (inventory sweeps for rebalance plans)
        # stays off the loop thread.
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-route-worker"
        )
        self._t_requests = registry.counter(
            "router.requests", "front-door requests handled, by message type"
        )
        self._t_proxied = registry.counter(
            "router.proxied_frames", "frames proxied to nodes, by message type"
        )
        self._t_proxy_latency = registry.histogram(
            "router.proxy_latency",
            "proxied round-trip seconds, by message type",
        )
        self._t_lookups = registry.counter(
            "router.lookups", "ROUTE_LOOKUP ring handouts to smart clients"
        ).labels()
        self._t_failovers = registry.counter(
            "router.failovers",
            "proxied reads answered by a node other than the first choice",
        ).labels()
        self._t_sessions = registry.counter(
            "router.sessions_routed", "backup sessions pinned to a node"
        ).labels()
        self._t_rebalance = registry.counter(
            "router.rebalance_steps", "rebalance steps, by lifecycle state"
        )
        self._t_epoch = registry.gauge(
            "router.ring_epoch", "current membership epoch"
        ).labels()
        self._t_connections = registry.counter(
            "router.connections", "client connections accepted"
        ).labels()
        self._t_epoch.set(float(membership.epoch))

    # -- addressing ---------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _next_rid(self) -> int:
        self._rid_next += 1
        return self._rid_base | (self._rid_next & 0xFFFFFFFF)

    # -- lifecycle ----------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (blocking call)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._stopped.clear()
        try:
            loop.run_until_complete(self._main())
        finally:
            self._loop = None
            with contextlib.suppress(Exception):
                loop.close()
            self._stopped.set()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            self._stop_event.set()
        server = await asyncio.start_server(
            self._handle_conn, sock=self._listen_sock
        )
        self._aio_server = server
        try:
            await self._stop_event.wait()
        finally:
            self._aio_server = None
            server.close()
            pending = [t for t in self._conn_tasks if not t.done()]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(Exception):
                await server.wait_closed()
            self._executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        self._stop_requested = True
        self.health.stop()
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._request_stop)
            self._stopped.wait(timeout=10.0)

    def _request_stop(self) -> None:
        if hasattr(self, "_stop_event"):
            self._stop_event.set()

    def server_close(self) -> None:
        with contextlib.suppress(OSError):
            if self._listen_sock.fileno() != -1:
                self._listen_sock.close()

    # -- connection pump ----------------------------------------------------------
    async def _read_frame(self, reader: asyncio.StreamReader) -> Optional[Frame]:
        try:
            header = await reader.readexactly(FRAME_HEADER_SIZE)
            msg_type, request_id, length = decode_header(header)
            payload = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ConnectionError, OSError, FrameError):
            return None
        return Frame(msg_type, request_id, payload)

    async def _write_frame(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, frame: Frame
    ) -> bool:
        try:
            async with wlock:
                writer.write(frame.encode())
                await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._t_connections.inc()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        wlock = asyncio.Lock()
        conn = _Connection()
        pending: set = set()
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                job = asyncio.ensure_future(
                    self._dispatch(conn, frame, writer, wlock)
                )
                pending.add(job)
                job.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if pending:
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.gather(*pending, return_exceptions=True)
            for downstream in conn.downstreams.values():
                with contextlib.suppress(Exception):
                    await downstream.close()
            with contextlib.suppress(Exception):
                writer.close()
            self._conn_tasks.discard(task)

    async def _dispatch(
        self,
        conn: _Connection,
        frame: Frame,
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> None:
        self._t_requests.labels(type=m.msg_name(frame.msg_type)).inc()
        try:
            response = await self._handle_frame(conn, frame)
        except asyncio.CancelledError:
            return
        except Exception as exc:  # routing must never kill the pump
            response = _error_frame(
                frame.request_id, type(exc).__name__, str(exc)
            )
        await self._write_frame(writer, wlock, response)

    # -- local handlers -----------------------------------------------------------
    async def _handle_frame(self, conn: _Connection, frame: Frame) -> Frame:
        handler = _LOCAL_HANDLERS.get(frame.msg_type)
        if handler is not None:
            return handler(self, conn, frame)
        if frame.msg_type == m.REBALANCE_PLAN:
            return await self._on_rebalance_plan(frame)
        return await self._proxy(conn, frame)

    def _on_hello(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        if isinstance(doc, dict):
            conn.hello_doc = doc
        return Frame(
            m.HELLO_OK,
            frame.request_id,
            m.encode_json({
                "server": "repro-route",
                "cluster_epoch": self.membership.epoch,
                "client": doc.get("client", "") if isinstance(doc, dict) else "",
            }),
        )

    def _on_ping(self, conn: _Connection, frame: Frame) -> Frame:
        return Frame(m.PONG, frame.request_id, frame.payload)

    def _on_route_lookup(self, conn: _Connection, frame: Frame) -> Frame:
        self._t_lookups.inc()
        return Frame(
            m.ROUTE_INFO, frame.request_id, m.encode_json(self.membership.route_doc())
        )

    def _on_route_hint(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        seen = int(doc.get("epoch", -1))
        return Frame(
            m.ROUTE_HINT_OK,
            frame.request_id,
            m.encode_json({
                "epoch": self.membership.epoch,
                "stale": seen != self.membership.epoch,
            }),
        )

    def _on_node_join(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        name = str(doc.get("name", ""))
        address = str(doc.get("address", ""))
        try:
            changed = self.membership.join(name, address)
        except MembershipError as exc:
            return _error_frame(frame.request_id, "MembershipError", str(exc))
        self._t_epoch.set(float(self.membership.epoch))
        return Frame(
            m.NODE_JOIN_OK,
            frame.request_id,
            m.encode_json({
                "epoch": self.membership.epoch,
                "changed": changed,
                "nodes": self.membership.names(),
            }),
        )

    def _on_node_leave(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        name = str(doc.get("name", ""))
        changed = self.membership.leave(name)
        self._t_epoch.set(float(self.membership.epoch))
        return Frame(
            m.NODE_LEAVE_OK,
            frame.request_id,
            m.encode_json({
                "epoch": self.membership.epoch,
                "changed": changed,
                "nodes": self.membership.names(),
            }),
        )

    def _on_cluster_status(self, conn: _Connection, frame: Frame) -> Frame:
        status = self.membership.describe()
        status["rebalance"] = self.planner.summary()
        return Frame(m.CLUSTER_STATUS_OK, frame.request_id, m.encode_json(status))

    def _on_rebalance_ack(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        step_id = str(doc.get("id", ""))
        known = self.planner.ack(step_id)
        if known:
            self._t_rebalance.labels(state="acked").inc()
        return Frame(
            m.REBALANCE_ACK_OK,
            frame.request_id,
            m.encode_json({"id": step_id, "known": known}),
        )

    async def _on_rebalance_plan(self, frame: Frame) -> Frame:
        """Build (or resume) the move plan for the current epoch.

        The inventory sweep is blocking socket work — it runs on the
        worker executor so planning never stalls the proxy path.
        """
        epoch = self.membership.epoch
        ring = self.membership.ring()
        live = {
            name: self.membership.address(name)
            for name in self.membership.live_names()
        }
        loop = asyncio.get_running_loop()
        retry = RetryPolicy(
            max_attempts=2, timeout=self.proxy_timeout,
            connect_timeout=self.connect_timeout,
        )
        inventories = await loop.run_in_executor(
            self._executor, collect_inventories, live, retry
        )
        plan = self.planner.current(ring, inventories, epoch)
        planned = sum(1 for s in plan["steps"] if not s["done"])
        self._t_rebalance.labels(state="planned").inc(planned)
        doc = dict(plan)
        doc["addresses"] = self.membership.addresses()
        return Frame(m.REBALANCE_PLAN_OK, frame.request_id, m.encode_json(doc))

    # -- the proxy path -----------------------------------------------------------
    async def _downstream(self, conn: _Connection, node: str) -> _Downstream:
        downstream = conn.downstreams.get(node)
        if downstream is None:
            downstream = _Downstream(node, self.membership.address(node), self)
            conn.downstreams[node] = downstream
        try:
            await downstream.ensure(conn.hello_doc)
        except Exception:
            conn.downstreams.pop(node, None)
            with contextlib.suppress(Exception):
                await downstream.close()
            raise
        return downstream

    async def _forward(self, conn: _Connection, node: str, frame: Frame) -> Frame:
        """One proxied round trip; transport failure counts as a probe
        failure (the data path is a health signal too) and the downstream
        is torn down so the next use reconnects."""
        t0 = wall_now()
        try:
            downstream = await self._downstream(conn, node)
            response = await downstream.call(frame, timeout=self.proxy_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
            downstream = conn.downstreams.pop(node, None)
            if downstream is not None:
                with contextlib.suppress(Exception):
                    await downstream.close()
            self.health.note_failure(node)
            raise
        self._t_proxied.labels(type=m.msg_name(frame.msg_type)).inc()
        self._t_proxy_latency.labels(type=m.msg_name(frame.msg_type)).observe(
            wall_now() - t0
        )
        return response

    def _live_candidates(self, conn: _Connection, preferred: Optional[str]) -> List[str]:
        live = self.membership.live_names()
        ordered: List[str] = []
        for name in ([preferred] if preferred else []) + [conn.pin or ""] + live:
            if name and name in live and name not in ordered:
                ordered.append(name)
        return ordered

    def _primary_for_job(self, job: str) -> Optional[str]:
        """First *live* node in ring order for the job key."""
        ring = self.membership.ring()
        live = set(self.membership.live_names())
        for name in ring.replicas(f"job:{job}", rf=len(ring.nodes)):
            if name in live:
                return name
        return None

    async def _proxy(self, conn: _Connection, frame: Frame) -> Frame:
        if frame.msg_type == m.SESSION_BEGIN:
            return await self._proxy_session_begin(conn, frame)
        if frame.msg_type in _SESSION_PREFIXED:
            if len(frame.payload) < 4:
                return _error_frame(
                    frame.request_id, "ProtocolError", "missing session prefix"
                )
            session = m._U32.unpack_from(frame.payload)[0]
            node = conn.sessions.get(session)
            if node is None:
                return _error_frame(
                    frame.request_id, "KeyError", f"unknown session {session}"
                )
            return await self._forward(conn, node, frame)
        if frame.msg_type in _SESSION_JSON:
            doc = m.decode_json(frame.payload)
            session = int(doc.get("session", -1))
            node = conn.sessions.get(session)
            if node is None:
                return _error_frame(
                    frame.request_id, "KeyError", f"unknown session {session}"
                )
            response = await self._forward(conn, node, frame)
            if response.msg_type != m.ERROR:
                conn.sessions.pop(session, None)
            return response
        if frame.msg_type == m.RUNS:
            return await self._proxy_runs(conn, frame)
        if frame.msg_type == m.ARCHIVE_STATUS:
            return await self._proxy_archive_status(conn, frame)
        if frame.msg_type == m.META_GET:
            return await self._proxy_meta_get(conn, frame)
        if frame.msg_type == m.FORGET:
            return await self._proxy_forget(conn, frame)
        if frame.msg_type in _FAILOVER_READS:
            return await self._proxy_with_failover(conn, frame)
        # Everything else (STATS, GC, VERIFY, DEDUP2, REPL_STATUS...) goes
        # to the pinned node, else the first live one.
        candidates = self._live_candidates(conn, None)
        if not candidates:
            return _error_frame(
                frame.request_id, "Unavailable", "no live nodes in the cluster"
            )
        return await self._forward(conn, candidates[0], frame)

    async def _proxy_session_begin(self, conn: _Connection, frame: Frame) -> Frame:
        doc = m.decode_json(frame.payload)
        job = str(doc.get("job", ""))
        node = self._primary_for_job(job) if job else None
        if node is None:
            return _error_frame(
                frame.request_id, "Unavailable",
                f"no live node to own job {job!r}",
            )
        response = await self._forward(conn, node, frame)
        if response.msg_type == m.SESSION_OK:
            session = int(m.decode_json(response.payload).get("session", -1))
            if session >= 0:
                conn.sessions[session] = node
                self._t_sessions.inc()
        return response

    async def _proxy_runs(self, conn: _Connection, frame: Frame) -> Frame:
        """``RUNS`` without a job fans out and merges (cluster view); with
        a job it routes like the job's sessions do, with failover."""
        doc = m.decode_json(frame.payload)
        if doc.get("job"):
            return await self._proxy_with_failover(
                conn, frame, preferred=self._primary_for_job(str(doc["job"]))
            )
        merged: List[dict] = []
        answered = False
        for node in self._live_candidates(conn, None):
            try:
                response = await self._forward(conn, node, frame)
            except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                continue
            if response.msg_type == m.ERROR:
                continue
            answered = True
            merged.extend(m.decode_json(response.payload))
        if not answered:
            return _error_frame(
                frame.request_id, "Unavailable", "no live node answered RUNS"
            )
        merged.sort(key=lambda r: (r.get("job", ""), r.get("run_id", 0)))
        return Frame(m.RUNS_OK, frame.request_id, m.encode_json(merged))

    async def _proxy_archive_status(self, conn: _Connection, frame: Frame) -> Frame:
        """``ARCHIVE_STATUS`` fans out to every live node and merges: the
        cluster view unions each node's archived chains (an origin+job chain
        lives on one archive node, so the union is disjoint), keeping the
        per-node detail under ``nodes``.  The merged ``origins`` map keeps
        the response shape of a single archive node, so a point-in-time
        restore pointed at the router resolves chains cluster-wide and the
        DELTA_FETCHes that follow fail over to whichever node holds them."""
        nodes: Dict[str, dict] = {}
        origins: Dict[str, dict] = {}
        for node in self._live_candidates(conn, None):
            try:
                response = await self._forward(
                    conn, node, Frame(m.ARCHIVE_STATUS, self._next_rid(), frame.payload)
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                continue
            if response.msg_type == m.ERROR:
                continue
            doc = m.decode_json(response.payload)
            nodes[node] = doc
            for origin, jobs in (doc.get("origins") or {}).items():
                origins.setdefault(origin, {}).update(jobs)
        if not nodes:
            return _error_frame(
                frame.request_id, "Unavailable", "no live node answered ARCHIVE_STATUS"
            )
        merged = {"nodes": nodes, "origins": origins}
        return Frame(m.ARCHIVE_STATUS_OK, frame.request_id, m.encode_json(merged))

    async def _resolve_run_job(
        self, conn: _Connection, run_id: int, job: Optional[str] = None
    ) -> Tuple[Dict[str, str], set]:
        """Which job(s) record (per-vault) ``run_id``, cluster-wide?

        Run ids collide across vaults — every node numbers its own runs
        from 1 — so before routing a run-keyed frame the router asks the
        live set (small ``RUNS`` queries) who actually records it.
        Returns ``({job: first node recording it}, unreachable nodes)``;
        more than one owner key means the bare run id is ambiguous and
        the caller must refuse to guess, and an unreachable node is
        de-facto down for this request even before the health monitor
        marks it.  ``job`` narrows the sweep to that job's chain.
        """
        owners: Dict[str, str] = {}
        unreachable: set = set()
        payload = m.encode_json({"job": job} if job else {})
        for node in self._live_candidates(conn, None):
            try:
                response = await self._forward(
                    conn, node, Frame(m.RUNS, self._next_rid(), payload)
                )
            except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                unreachable.add(node)
                continue
            if response.msg_type == m.ERROR:
                continue
            for run in m.decode_json(response.payload):
                if int(run.get("run_id", -1)) == run_id:
                    owners.setdefault(str(run.get("job", "")), node)
        return owners, unreachable

    async def _proxy_meta_get(self, conn: _Connection, frame: Frame) -> Frame:
        """Route ``META_GET`` by (job, run id), never by run id alone.

        A job-qualified frame is safe to fail over: nodes validate the
        job against their own catalog, so a colliding run id on the wrong
        vault answers ERROR instead of another job's file list.  A bare
        run id is first resolved to its job via the live set — and
        refused as ambiguous when two vaults both record it.
        """
        try:
            doc = m.decode_json(frame.payload)
            run_id = int(doc.get("run_id", -1))
        except (m.MessageError, TypeError, ValueError):
            return _error_frame(
                frame.request_id, "ProtocolError", "malformed META_GET payload"
            )
        job = str(doc.get("job") or "")
        unreachable: set = set()
        if not job:
            owners, unreachable = await self._resolve_run_job(conn, run_id)
            if len(owners) > 1:
                return _error_frame(
                    frame.request_id, "AmbiguousRun",
                    f"run {run_id} is recorded by jobs {sorted(owners)}; "
                    "qualify the request with a job",
                )
            if owners:
                job = next(iter(owners))
        if job:
            doc["job"] = job
            frame = Frame(m.META_GET, frame.request_id, m.encode_json(doc))
            return await self._proxy_with_failover(
                conn, frame, preferred=self._primary_for_job(job), job=job
            )
        # No live node records the run: the origin is dead (possibly not
        # yet marked down — the resolve sweep's transport failures count),
        # and only the mirrored catalogs on its replicas can describe it.
        synthesized = await self._meta_get_from_catalogs(
            conn, frame, extra_down=unreachable
        )
        if synthesized is not None:
            self._t_failovers.inc()
            return synthesized
        return _error_frame(
            frame.request_id, "Unavailable",
            f"no live node or mirrored catalog records run {run_id}",
        )

    async def _proxy_forget(self, conn: _Connection, frame: Frame) -> Frame:
        """Route ``FORGET`` to exactly one owner — destructive frames
        never fail over.

        Retrying a "no such run" ERROR on the next live node would delete
        an unrelated job's run that happens to share the per-vault id
        (every vault has a run 1).  Instead the run is resolved to its
        owning (job, node); an ERROR from the owner goes back to the
        client verbatim.
        """
        try:
            doc = m.decode_json(frame.payload)
            run_id = int(doc.get("run_id", -1))
        except (m.MessageError, TypeError, ValueError):
            return _error_frame(
                frame.request_id, "ProtocolError", "malformed FORGET payload"
            )
        job = str(doc.get("job") or "")
        owners, _ = await self._resolve_run_job(conn, run_id, job=job or None)
        if not job:
            if len(owners) > 1:
                return _error_frame(
                    frame.request_id, "AmbiguousRun",
                    f"run {run_id} is recorded by jobs {sorted(owners)}; "
                    "qualify the forget with a job",
                )
            if owners:
                job = next(iter(owners))
        node = owners.get(job) if job else None
        if node is None:
            # Nobody live records it (or the payload was never resolvable):
            # let the job's primary — or any live node — answer its own
            # error rather than sweeping the cluster.
            node = self._primary_for_job(job) if job else None
        if node is None:
            candidates = self._live_candidates(conn, None)
            if not candidates:
                return _error_frame(
                    frame.request_id, "Unavailable", "no live nodes in the cluster"
                )
            node = candidates[0]
        if job:
            doc["job"] = job
            frame = Frame(m.FORGET, frame.request_id, m.encode_json(doc))
        return await self._forward(conn, node, frame)

    async def _proxy_with_failover(
        self,
        conn: _Connection,
        frame: Frame,
        preferred: Optional[str] = None,
        job: Optional[str] = None,
    ) -> Frame:
        """Try each live node until one answers without error.

        An ``ERROR`` response ("no such run", "fingerprint not stored")
        means *this node doesn't hold it*, not that nobody does — with a
        replica factor over one, some other node usually does.
        """
        last: Optional[Frame] = None
        candidates = self._live_candidates(conn, preferred)
        if not candidates:
            return _error_frame(
                frame.request_id, "Unavailable", "no live nodes in the cluster"
            )
        unreachable: set = set()
        for i, node in enumerate(candidates):
            try:
                response = await self._forward(conn, node, frame)
            except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                # De-facto down for this request, even if the health
                # monitor has not marked it yet (SIGKILL to first missed
                # probe is a real window).
                unreachable.add(node)
                continue
            if response.msg_type != m.ERROR:
                if i > 0:
                    self._t_failovers.inc()
                conn.pin = node
                return response
            last = response
        # No single node carried the whole answer; the deep fallbacks
        # reassemble one from the surviving copies.
        if frame.msg_type == m.CHUNK_READ:
            split = await self._chunk_read_split(conn, frame)
            if split is not None:
                self._t_failovers.inc()
                return split
        if frame.msg_type == m.META_GET:
            synthesized = await self._meta_get_from_catalogs(
                conn, frame, extra_down=unreachable, job=job
            )
            if synthesized is not None:
                self._t_failovers.inc()
                return synthesized
        return last if last is not None else _error_frame(
            frame.request_id, "Unavailable", "no live node answered"
        )

    async def _chunk_read_split(
        self, conn: _Connection, frame: Frame
    ) -> Optional[Frame]:
        """Reassemble a CHUNK_READ batch no single node serves whole.

        A batch can span containers whose replica sets land on different
        surviving nodes after the origin died; per-fingerprint probes let
        each survivor contribute the chunks it holds.
        """
        try:
            fps, _ = m.decode_fps(frame.payload)
        except m.MessageError:
            return None
        chunks: List[Tuple[bytes, bytes]] = []
        for fp in fps:
            data: Optional[bytes] = None
            for node in self._live_candidates(conn, None):
                try:
                    response = await self._forward(
                        conn, node,
                        Frame(m.CHUNK_READ, self._next_rid(), m.encode_fps([fp])),
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                    continue
                if response.msg_type == m.ERROR:
                    continue
                got, _ = m.decode_chunk_batch(response.payload)
                if got:
                    data = got[0][1]
                    break
            if data is None:
                return None  # a chunk nobody holds: the batch is lost
            chunks.append((fp, data))
        return Frame(
            m.CHUNK_DATA, frame.request_id, m.encode_chunk_batch(chunks)
        )

    async def _meta_get_from_catalogs(
        self,
        conn: _Connection,
        frame: Frame,
        extra_down: Optional[set] = None,
        job: Optional[str] = None,
    ) -> Optional[Frame]:
        """Synthesize META_ENTRIES for a dead origin's run from a mirrored
        catalog on a surviving replica.

        The replicator ships the full run catalog (file metadata + hex
        fingerprint indices) alongside containers, so any node holding the
        dead origin's replicas can describe its runs even though only the
        origin's vault ever recorded them.  Catalog runs are matched on
        (job, run id) when the job is known; without one, a run id that
        two dead origins' catalogs both record under different jobs is
        answered as ambiguous rather than guessed.
        """
        try:
            doc = m.decode_json(frame.payload)
            run_id = int(doc.get("run_id", -1))
        except (m.MessageError, TypeError, ValueError):
            return None
        job = job or str(doc.get("job") or "")
        reachable = set(self.membership.live_names()) - (extra_down or set())
        down = [
            n for n in self.membership.names() if n not in reachable
        ]
        matches: Dict[str, list] = {}  # job -> catalog file list
        for origin in down:
            catalog = None
            for node in self._live_candidates(conn, None):
                if node not in reachable:
                    continue
                try:
                    response = await self._forward(
                        conn, node,
                        Frame(
                            m.CATALOG_FETCH, self._next_rid(),
                            m.encode_json({"origin": origin}),
                        ),
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError, RouteError):
                    continue
                if response.msg_type == m.ERROR:
                    continue
                catalog = m.decode_json(response.payload).get("catalog") or {}
                break
            for run in (catalog or {}).get("runs", []):
                if int(run.get("run_id", -1)) != run_id:
                    continue
                run_job = str(run.get("job", ""))
                if job and run_job != job:
                    continue
                matches.setdefault(run_job, run.get("files", []))
        if len(matches) > 1:
            return _error_frame(
                frame.request_id, "AmbiguousRun",
                f"run {run_id} is mirrored for jobs {sorted(matches)}; "
                "qualify the request with a job",
            )
        if not matches:
            return None
        entries = [
            (
                {
                    "path": f["path"],
                    "size": f["size"],
                    "mode": f["mode"],
                    "mtime": f["mtime"],
                },
                [bytes.fromhex(h) for h in f["fingerprints"]],
            )
            for f in next(iter(matches.values()))
        ]
        return Frame(
            m.META_ENTRIES,
            frame.request_id,
            m.encode_file_entries(entries),
        )


_LOCAL_HANDLERS = {
    m.HELLO: FrontDoorRouter._on_hello,
    m.PING: FrontDoorRouter._on_ping,
    m.ROUTE_LOOKUP: FrontDoorRouter._on_route_lookup,
    m.ROUTE_HINT: FrontDoorRouter._on_route_hint,
    m.NODE_JOIN: FrontDoorRouter._on_node_join,
    m.NODE_LEAVE: FrontDoorRouter._on_node_leave,
    m.CLUSTER_STATUS: FrontDoorRouter._on_cluster_status,
    m.REBALANCE_ACK: FrontDoorRouter._on_rebalance_ack,
}
