"""Cluster membership: the node table behind the front door (DESIGN.md §14.1).

:class:`ClusterMembership` is the single mutable truth the router holds:
which nodes exist (name + address), which are currently reachable, and
an **epoch** counter that advances only when the *set of members*
changes.  The split matters:

* join/leave change where keys live — the :class:`PlacementRing` is
  rebuilt, the epoch bumps, and cached rings on smart clients become
  stale (they find out through ``ROUTE_HINT``);
* mark-down/mark-up are health facts, not placement facts — a node that
  misses K probes stops receiving routed traffic, but its keys do *not*
  move (its replica set keeps serving them), so the epoch stays put and
  nothing rebalances on a transient blip.

The table persists to ``<state>/membership.json`` (atomic tmp+replace)
so a restarted router comes back knowing the cluster it fronted;
probe-state is persisted too, but a restart optimistically resets every
member to ``up`` and lets the health monitor re-discover reality.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.replication.ring import DEFAULT_VNODES, PlacementRing

_STATE_FILE = "membership.json"

STATE_UP = "up"
STATE_DOWN = "down"


class MembershipError(ValueError):
    """An invalid membership mutation (bad name, conflicting address...)."""


@dataclass
class NodeEntry:
    """One member: its address and the health monitor's view of it."""

    name: str
    address: str  # "host:port"
    state: str = STATE_UP
    fails: int = 0  # consecutive failed probes

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "state": self.state,
            "fails": self.fails,
        }


class ClusterMembership:
    """The router's node table: members, health state, ring epoch."""

    def __init__(
        self,
        state_dir: Optional[Path] = None,
        replication_factor: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.replication_factor = replication_factor
        self.vnodes = vnodes
        self.epoch = 0
        self._nodes: Dict[str, NodeEntry] = {}
        self._lock = threading.Lock()  # loop thread + health thread + CLI
        if state_dir is not None:
            Path(state_dir).mkdir(parents=True, exist_ok=True)
            self._state_path = Path(state_dir) / _STATE_FILE
        else:
            self._state_path = None
        self._load()

    # -- persistence --------------------------------------------------------------
    def _load(self) -> None:
        if self._state_path is None or not self._state_path.exists():
            return
        doc = json.loads(self._state_path.read_text())
        self.epoch = int(doc.get("epoch", 0))
        self.replication_factor = int(
            doc.get("replication_factor", self.replication_factor)
        )
        self.vnodes = int(doc.get("vnodes", self.vnodes))
        for entry in doc.get("nodes", []):
            # A restarted router assumes everyone is up until probed; the
            # persisted state only encodes *who belongs*, not who answers.
            self._nodes[entry["name"]] = NodeEntry(
                name=entry["name"], address=entry["address"]
            )

    def _save_locked(self) -> None:
        if self._state_path is None:
            return
        doc = {
            "epoch": self.epoch,
            "replication_factor": self.replication_factor,
            "vnodes": self.vnodes,
            "nodes": [
                self._nodes[name].to_doc() for name in sorted(self._nodes)
            ],
        }
        tmp = self._state_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        tmp.replace(self._state_path)

    # -- membership mutations (epoch-bearing) --------------------------------------
    def join(self, name: str, address: str) -> bool:
        """Add (or re-address) a member; returns True when the epoch moved.

        Idempotent: re-joining with the same name and address is a no-op
        (a restarted ``serve --advertise`` must not churn the ring).  A
        re-join always resets the member to ``up`` — the node just spoke
        to us, which outranks any stale probe history.
        """
        if not name or "=" in name or "/" in name:
            raise MembershipError(f"invalid node name {name!r}")
        if ":" not in address:
            raise MembershipError(f"expected host:port address, got {address!r}")
        with self._lock:
            entry = self._nodes.get(name)
            if entry is not None and entry.address == address:
                entry.state = STATE_UP
                entry.fails = 0
                self._save_locked()
                return False
            self._nodes[name] = NodeEntry(name=name, address=address)
            self.epoch += 1
            self._save_locked()
            return True

    def leave(self, name: str) -> bool:
        """Remove a member; returns True when it existed (epoch moved)."""
        with self._lock:
            if name not in self._nodes:
                return False
            del self._nodes[name]
            self.epoch += 1
            self._save_locked()
            return True

    # -- health mutations (epoch-neutral) ------------------------------------------
    def record_probe(
        self, name: str, ok: bool, mark_down_after: int = 3
    ) -> Optional[str]:
        """Fold one probe result in; returns the transition (``"up"`` /
        ``"down"``) when the node's state flipped, else ``None``.

        One success marks a down node up immediately (asymmetric on
        purpose: a recovering node should take traffic as soon as it
        answers, while marking down waits out ``mark_down_after``
        consecutive failures so one dropped packet doesn't fail a node).
        """
        with self._lock:
            entry = self._nodes.get(name)
            if entry is None:
                return None
            if ok:
                entry.fails = 0
                if entry.state != STATE_UP:
                    entry.state = STATE_UP
                    self._save_locked()
                    return STATE_UP
                return None
            entry.fails += 1
            if entry.state == STATE_UP and entry.fails >= mark_down_after:
                entry.state = STATE_DOWN
                self._save_locked()
                return STATE_DOWN
            return None

    # -- views ---------------------------------------------------------------------
    def ring(self) -> PlacementRing:
        """The placement ring over *all* members (down ones included).

        Placement is a membership fact: a marked-down node still owns its
        keys — reads fail over to its replica set — until an operator
        decides it left for good (``NODE_LEAVE`` / ``repro rebuild``).
        """
        with self._lock:
            names = sorted(self._nodes)
            if not names:
                raise MembershipError("cluster has no members")
            return PlacementRing(
                names,
                replication_factor=self.replication_factor,
                vnodes=self.vnodes,
            )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._nodes)

    def live_names(self) -> List[str]:
        with self._lock:
            return sorted(
                n for n, e in self._nodes.items() if e.state == STATE_UP
            )

    def address(self, name: str) -> str:
        with self._lock:
            entry = self._nodes.get(name)
            if entry is None:
                raise MembershipError(f"unknown node {name!r}")
            return entry.address

    def addresses(self) -> Dict[str, str]:
        with self._lock:
            return {n: e.address for n, e in self._nodes.items()}

    def is_up(self, name: str) -> bool:
        with self._lock:
            entry = self._nodes.get(name)
            return entry is not None and entry.state == STATE_UP

    def describe(self) -> dict:
        """The ``CLUSTER_STATUS`` body: epoch, rf, per-node health."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "replication_factor": self.replication_factor,
                "vnodes": self.vnodes,
                "nodes": [
                    self._nodes[name].to_doc() for name in sorted(self._nodes)
                ],
            }

    def route_doc(self) -> dict:
        """The ``ROUTE_INFO`` body a smart client caches: the ring inputs
        (rebuilt client-side — determinism is the contract) plus the
        address book and health states."""
        with self._lock:
            names = sorted(self._nodes)
            return {
                "epoch": self.epoch,
                "ring": {
                    "nodes": names,
                    "replication_factor": min(
                        self.replication_factor, max(len(names), 1)
                    ),
                    "vnodes": self.vnodes,
                },
                "nodes": {
                    n: {"address": e.address, "state": e.state}
                    for n, e in self._nodes.items()
                },
            }
