"""PING-based health checks for the front door (DESIGN.md §14.2).

A plain thread, not an asyncio task: probes are blocking socket work
with their own (short) timeouts, and keeping them off the router's event
loop means a wedged node can never stall routing.  Each sweep sends one
``PING`` per member with a single-attempt, fast-failing
:class:`~repro.net.client.RetryPolicy` (``connect_timeout`` is the whole
point — a dead host must cost ``probe_timeout``, not a TCP stack's
default patience), folds the result into
:class:`~repro.frontdoor.membership.ClusterMembership`, and moves
``router.node_up`` / ``router.mark_downs`` / ``router.probe_failures``.

Mark-down takes ``mark_down_after`` consecutive failures; mark-up takes
one success (the asymmetry is argued in membership.record_probe).
``probe_once()`` runs a single synchronous sweep — the deterministic
entry point tests and the router's proxy error path use.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.frontdoor.membership import ClusterMembership
from repro.net.client import NetClient, RetryPolicy
from repro.telemetry.registry import MetricsRegistry, get_registry

DEFAULT_PROBE_INTERVAL = 2.0
DEFAULT_PROBE_TIMEOUT = 1.0
DEFAULT_MARK_DOWN_AFTER = 3


class HealthMonitor:
    """Periodic PING sweeps over the membership table."""

    def __init__(
        self,
        membership: ClusterMembership,
        interval: float = DEFAULT_PROBE_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        mark_down_after: int = DEFAULT_MARK_DOWN_AFTER,
        registry: Optional[MetricsRegistry] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.membership = membership
        self.interval = interval
        self.mark_down_after = mark_down_after
        self.on_transition = on_transition
        self._retry = RetryPolicy(
            max_attempts=1, timeout=probe_timeout, connect_timeout=probe_timeout
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._t_probe_failures = registry.counter(
            "router.probe_failures", "health probes that failed, by node"
        )
        self._t_mark_downs = registry.counter(
            "router.mark_downs", "nodes marked down after consecutive probe failures"
        ).labels()
        self._t_node_up = registry.gauge(
            "router.node_up", "1 when the node answers probes, 0 when marked down"
        )

    # -- probing ------------------------------------------------------------------
    def probe_node(self, name: str) -> bool:
        """One synchronous probe of one member; folds the result in."""
        try:
            address = self.membership.address(name)
        except Exception:
            return False  # raced a leave; nothing to record
        host, _, port = address.rpartition(":")
        ok = False
        try:
            with NetClient(
                host or "127.0.0.1", int(port),
                client_name="router-probe", retry=self._retry,
            ) as net:
                ok = net.ping()
        except Exception:
            ok = False
        if not ok:
            self._t_probe_failures.labels(node=name).inc()
        transition = self.membership.record_probe(
            name, ok, mark_down_after=self.mark_down_after
        )
        self._t_node_up.labels(node=name).set(1.0 if ok else 0.0)
        if transition == "down":
            self._t_mark_downs.inc()
        if transition is not None and self.on_transition is not None:
            self.on_transition(name, transition)
        return ok

    def probe_once(self) -> dict:
        """One full sweep; returns ``{name: answered}`` (tests, CLI)."""
        return {name: self.probe_node(name) for name in self.membership.names()}

    def note_failure(self, name: str) -> None:
        """Fold a proxy-observed transport failure in as a failed probe.

        The data path is a probe too: a node that just refused a proxied
        frame should not wait for the sweep timer to start counting.
        """
        self._t_probe_failures.labels(node=name).inc()
        transition = self.membership.record_probe(
            name, False, mark_down_after=self.mark_down_after
        )
        if transition == "down":
            self._t_mark_downs.inc()
            self._t_node_up.labels(node=name).set(0.0)
        if transition is not None and self.on_transition is not None:
            self.on_transition(name, transition)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-route-health", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval + 2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.probe_once()
