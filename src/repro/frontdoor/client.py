"""The smart routed client: cache the ring, talk to nodes directly
(DESIGN.md §14.3).

Redirect mode inverts the proxy: the client pays one ``ROUTE_LOOKUP``
to learn the ring inputs and address book, rebuilds the
:class:`PlacementRing` locally (the ring is deterministic from its
inputs — that is the whole redirect contract), and then opens direct
connections to the owning nodes, so bulk bytes never traverse the
router.  Staleness is handled by epoch: ``ROUTE_HINT`` is a tiny
request that answers "has membership changed since epoch E?", and any
topology-looking failure (the primary refusing connections) is reason
to re-lookup before retrying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net import messages as m
from repro.net.client import NetClient, RemoteBackupClient, RetryPolicy
from repro.replication.ring import PlacementRing
from repro.telemetry.registry import MetricsRegistry


class RouterClient:
    """A thin control-plane client for ``repro route``."""

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        client_name: str = "routed",
    ) -> None:
        self.net = NetClient(
            host, port, client_name=client_name, retry=retry, registry=registry
        )
        self.client_name = client_name
        self.retry = retry
        self.registry = registry
        self.epoch: Optional[int] = None
        self.ring: Optional[PlacementRing] = None
        self.nodes: Dict[str, dict] = {}

    def close(self) -> None:
        self.net.close()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the cached ring ----------------------------------------------------------
    def lookup(self) -> dict:
        """Fetch and cache the ring inputs + address book."""
        doc = self.net.call_json(m.ROUTE_LOOKUP, {})
        self.epoch = int(doc["epoch"])
        self.ring = PlacementRing.from_doc(doc["ring"])
        self.nodes = dict(doc["nodes"])
        return doc

    def ensure_ring(self) -> PlacementRing:
        if self.ring is None:
            self.lookup()
        return self.ring

    def refresh_if_stale(self) -> bool:
        """One cheap ``ROUTE_HINT`` round trip; re-lookup on staleness.
        Returns True when the cached ring had to be replaced."""
        if self.epoch is None:
            self.lookup()
            return True
        hint = self.net.call_json(m.ROUTE_HINT, {"epoch": self.epoch})
        if hint.get("stale"):
            self.lookup()
            return True
        return False

    # -- placement ----------------------------------------------------------------
    def live_order_for_job(self, job: str) -> List[str]:
        """Every live node in ring order for the job key (the head is the
        primary; the tail is the failover order)."""
        ring = self.ensure_ring()
        live = {
            n for n, info in self.nodes.items() if info.get("state") == "up"
        }
        return [
            name
            for name in ring.replicas(f"job:{job}", rf=len(ring.nodes))
            if name in live
        ]

    def address_of(self, node: str) -> Tuple[str, int]:
        info = self.nodes.get(node)
        if info is None:
            raise KeyError(f"unknown node {node!r}")
        host, _, port = str(info["address"]).rpartition(":")
        return host or "127.0.0.1", int(port)

    # -- direct node clients ------------------------------------------------------
    def client_for_job(self, job: str, **kwargs) -> RemoteBackupClient:
        """A direct :class:`RemoteBackupClient` to the job's primary."""
        order = self.live_order_for_job(job)
        if not order:
            raise ConnectionError(f"no live node to own job {job!r}")
        host, port = self.address_of(order[0])
        kwargs.setdefault("client_name", self.client_name)
        kwargs.setdefault("retry", self.retry)
        kwargs.setdefault("registry", self.registry)
        return RemoteBackupClient(host, port, **kwargs)

    def client_for_run(
        self, run_id: int, job: Optional[str] = None, **kwargs
    ) -> RemoteBackupClient:
        """A direct client to the live node that records ``run_id``.

        Run ids are per-vault — every node numbers its own runs from 1 —
        so the locator matches on (job, run id), asking each candidate
        node (small ``RUNS`` requests) rather than guessing from the
        ring.  With ``job`` the search walks the job's ring order (owner
        first); without one every live node is asked, and a run id
        recorded under two different jobs raises instead of connecting
        to whichever vault sorts first.  When the owner is dead the
        router's proxy path (mirrored catalogs) is the fallback.
        """
        self.ensure_ring()
        kwargs.setdefault("client_name", self.client_name)
        kwargs.setdefault("retry", self.retry)
        kwargs.setdefault("registry", self.registry)
        live = {
            n for n, info in self.nodes.items() if info.get("state") == "up"
        }
        order = (
            self.live_order_for_job(job)
            if job else [n for n in sorted(self.nodes) if n in live]
        )
        last: Optional[Exception] = None
        owners: Dict[str, str] = {}  # job -> first node recording the run
        for node in order:
            host, port = self.address_of(node)
            try:
                client = RemoteBackupClient(host, port, **kwargs)
            except Exception as exc:
                last = exc
                continue
            try:
                runs = client.runs(job=job)
            except Exception as exc:
                last = exc
                client.close()
                continue
            hit = any(r.run_id == run_id for r in runs)
            if hit and job:
                return client  # job-qualified: the first ring match wins
            if hit:
                for r in runs:
                    if r.run_id == run_id:
                        owners.setdefault(r.job, node)
            client.close()
        if len(owners) > 1:
            raise KeyError(
                f"run {run_id} is recorded by jobs {sorted(owners)}; "
                "qualify the lookup with a job"
            )
        if owners:
            host, port = self.address_of(next(iter(owners.values())))
            return RemoteBackupClient(host, port, **kwargs)
        scope = f" for job {job!r}" if job else ""
        raise KeyError(
            f"no live node records run {run_id}{scope}"
            + (f" (last error: {last})" if last else "")
        )

    def locate_archive_point(
        self,
        run_id: int,
        job: Optional[str] = None,
        origin: Optional[str] = None,
        **kwargs,
    ) -> Tuple[RemoteBackupClient, str, str]:
        """A direct client to the live node whose archive retains restore
        point ``run_id``, plus the (origin, job) naming its chain.

        The sweep mirrors :meth:`client_for_run` but asks each node's
        ``ARCHIVE_STATUS`` instead of its catalog, so it still resolves
        after the origin vault (and its catalog) is destroyed — the whole
        point of a point-in-time archive restore.  A run id retained by
        two different chains raises instead of picking one.
        """
        self.ensure_ring()
        kwargs.setdefault("client_name", self.client_name)
        kwargs.setdefault("retry", self.retry)
        kwargs.setdefault("registry", self.registry)
        live = [
            n for n in sorted(self.nodes)
            if self.nodes[n].get("state") == "up"
        ]
        last: Optional[Exception] = None
        hits: Dict[Tuple[str, str], str] = {}  # (origin, job) -> node
        for node in live:
            host, port = self.address_of(node)
            try:
                client = RemoteBackupClient(host, port, **kwargs)
            except Exception as exc:
                last = exc
                continue
            try:
                status = client.archive_status()
            except Exception as exc:
                last = exc
                client.close()
                continue
            client.close()
            for o, jobs in (status.get("origins") or {}).items():
                if origin and o != origin:
                    continue
                for j, chain in jobs.items():
                    if job and j != job:
                        continue
                    if run_id in chain.get("points", []):
                        hits.setdefault((o, j), node)
        if len(hits) > 1:
            names = sorted(f"{o}/{j}" for o, j in hits)
            raise KeyError(
                f"run {run_id} is retained by archived chains {names}; "
                "qualify the lookup with a job"
            )
        if hits:
            (o, j), node = next(iter(hits.items()))
            host, port = self.address_of(node)
            return RemoteBackupClient(host, port, **kwargs), o, j
        scope = f" for job {job!r}" if job else ""
        raise KeyError(
            f"no archived chain retains run {run_id}{scope}"
            + (f" (last error: {last})" if last else "")
        )

    # -- cluster admin ------------------------------------------------------------
    def cluster_status(self) -> dict:
        return self.net.call_json(m.CLUSTER_STATUS, {})

    def rebalance_plan(self) -> dict:
        return self.net.call_json(m.REBALANCE_PLAN, {})

    def rebalance_ack(self, step_id: str) -> None:
        self.net.call_json(m.REBALANCE_ACK, {"id": step_id})
