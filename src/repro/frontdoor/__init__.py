"""repro.frontdoor — the cluster front door (DESIGN.md §14).

DEBAR's scalability story (paper Sections 3 and 6) is a cluster of
backup servers behind a director; until now every client had to be
pointed at one ``repro serve`` daemon by hand.  This package turns N
standalone daemons into one addressable cluster:

- :mod:`repro.frontdoor.membership` — the node table: who belongs
  (join/leave advance the ring **epoch**), who currently answers
  (mark-down/mark-up are epoch-neutral health facts), persisted across
  router restarts.
- :mod:`repro.frontdoor.health` — PING sweeps with fast-failing
  connects; K consecutive failures mark a node down, one success marks
  it back up.
- :mod:`repro.frontdoor.router` — ``repro route``: an asyncio daemon on
  the same ``DBAR`` framing that *redirects* smart clients
  (``ROUTE_LOOKUP``/``ROUTE_HINT``) or *proxies* frames for dumb ones,
  pinning backup sessions to the ring's owner and failing reads over
  across the live replica set (down to per-fingerprint reassembly and
  mirrored-catalog synthesis when an origin is dead).
- :mod:`repro.frontdoor.rebalance` — the ring-diff move plan after a
  join/leave, executed over the existing ``CONTAINER_FETCH``/
  ``CONTAINER_PUSH`` verbs, persisted and acknowledged step by step so
  a crashed mover resumes idempotently.
- :mod:`repro.frontdoor.client` — :class:`RouterClient`, the smart
  client: cache the ring, talk to nodes directly.

Everything the router does is measured under ``router.*`` (DESIGN.md
§8.2): per-type request/proxy counters and latency histograms,
``router.node_up`` health gauges, mark-down and failover counters, the
ring epoch, and rebalance step states.
"""

from repro.frontdoor.client import RouterClient
from repro.frontdoor.health import HealthMonitor
from repro.frontdoor.membership import ClusterMembership, MembershipError
from repro.frontdoor.rebalance import (
    RebalancePlanner,
    build_plan,
    collect_inventories,
    execute_plan,
)
from repro.frontdoor.router import FrontDoorRouter, RouteError

__all__ = [
    "ClusterMembership",
    "FrontDoorRouter",
    "HealthMonitor",
    "MembershipError",
    "RebalancePlanner",
    "RouteError",
    "RouterClient",
    "build_plan",
    "collect_inventories",
    "execute_plan",
]
