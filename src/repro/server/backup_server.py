"""A DEBAR backup server: TPDS engine + File Store + Chunk Store (Section 3.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.disk_index import DiskIndex
from repro.core.tpds import TwoPhaseDeduplicator
from repro.server.chunk_store import ChunkStore
from repro.server.file_store import FileStore
from repro.simdisk import ClockLane, PaperRig, paper_rig
from repro.storage.blockstore import SparseMemoryBlockStore
from repro.storage.container import CONTAINER_SIZE
from repro.storage.repository import ChunkRepository


@dataclass
class BackupServerConfig:
    """Sizing knobs for one backup server.

    Defaults are scaled-down analogues of the paper's configuration (1 GB
    preliminary filter, 1 GB index cache, 8 MB containers, 128 MB LPC).
    """

    index_n_bits: int = 16
    index_bucket_bytes: int = 8 * 1024
    filter_capacity: int = 1 << 16
    cache_capacity: int = 1 << 20
    container_bytes: int = CONTAINER_SIZE
    lpc_containers: int = 16
    siu_every: int = 1
    materialize: bool = False
    #: Back the index with a page-sparse store (large scaled geometries).
    sparse_index: bool = False


class BackupServer:
    """One backup server of a DEBAR deployment.

    In a single-server system it owns the whole disk index; in a cluster of
    ``2^w`` servers it owns index part ``server_id`` (fingerprints whose
    first ``w`` bits equal its number).
    """

    def __init__(
        self,
        server_id: int,
        repository: ChunkRepository,
        config: Optional[BackupServerConfig] = None,
        index: Optional[DiskIndex] = None,
        rig: Optional[PaperRig] = None,
        w_bits: int = 0,
    ) -> None:
        self.server_id = server_id
        self.config = config if config is not None else BackupServerConfig()
        self.w_bits = w_bits
        if index is None:
            store = None
            if self.config.sparse_index:
                store = SparseMemoryBlockStore(
                    (1 << self.config.index_n_bits) * self.config.index_bucket_bytes
                )
            index = DiskIndex(
                self.config.index_n_bits,
                bucket_bytes=self.config.index_bucket_bytes,
                store=store,
                prefix_bits=w_bits,
                prefix_value=server_id if w_bits else 0,
                seed=server_id,
            )
        self.clock = ClockLane(f"server-{server_id}")
        self.rig = rig if rig is not None else paper_rig()
        self.tpds = TwoPhaseDeduplicator(
            index,
            repository,
            filter_capacity=self.config.filter_capacity,
            cache_capacity=self.config.cache_capacity,
            container_bytes=self.config.container_bytes,
            materialize=self.config.materialize,
            siu_every=self.config.siu_every,
            rig=self.rig,
            clock=self.clock,
            affinity=server_id,
        )
        self.file_store = FileStore(self.tpds)
        self.chunk_store = ChunkStore(self.tpds, lpc_containers=self.config.lpc_containers)

    # -- convenience passthroughs ----------------------------------------------
    @property
    def index(self) -> DiskIndex:
        return self.tpds.index

    @property
    def meter(self):
        return self.tpds.meter

    @property
    def undetermined_count(self) -> int:
        return self.tpds.undetermined_count

    @property
    def chunk_log_bytes(self) -> int:
        return self.tpds.chunk_log.size_bytes

    def owns(self, fp: bytes) -> bool:
        """True iff this server's index part is responsible for ``fp``."""
        return self.index.owns(fp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BackupServer({self.server_id}, index={self.index!r})"
