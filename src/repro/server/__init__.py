"""Backup servers: File Store (dedup-1), Chunk Store (dedup-2 + retrieval)."""

from repro.server.file_store import FileStore, BackupSession
from repro.server.chunk_store import ChunkStore
from repro.server.backup_server import BackupServer, BackupServerConfig

__all__ = [
    "FileStore",
    "BackupSession",
    "ChunkStore",
    "BackupServer",
    "BackupServerConfig",
]
