"""The Chunk Store module: dedup-2 execution and chunk retrieval (Section 3.3).

Dedup-2 (SIL -> chunk storing -> SIU) is delegated to the TPDS engine.  The
retrieval path implements the paper's LPC flow: look in the in-memory cache
first; on a miss, one random disk-index lookup locates the container, the
container is read and its *whole* fingerprint group cached, and the chunk
is served — so sequential restores of SISL-laid-out streams hit the cache
almost always (99.3 % in the paper's measurement).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.fingerprint import Fingerprint
from repro.core.tpds import Dedup2Stats, TwoPhaseDeduplicator
from repro.storage.container import default_payload
from repro.storage.lpc import LocalityPreservedCache


class ChunkStore:
    """Dedup-2 driver and LPC-backed chunk reader for one backup server."""

    def __init__(
        self,
        tpds: TwoPhaseDeduplicator,
        lpc_containers: int = 16,
        payload: Callable[[Fingerprint, int], bytes] = default_payload,
    ) -> None:
        self._tpds = tpds
        self.lpc = LocalityPreservedCache(lpc_containers)
        self._payload = payload
        self.random_lookups = 0
        self.container_fetches = 0

    # -- dedup-2 ------------------------------------------------------------------
    def run_dedup2(self, force_siu: Optional[bool] = None) -> Dedup2Stats:
        """Execute SIL, chunk storing and (policy-driven) SIU."""
        return self._tpds.dedup2(force_siu=force_siu)

    # -- retrieval ------------------------------------------------------------------
    def read_chunk(self, fp: Fingerprint) -> bytes:
        """Read one chunk by fingerprint through the LPC (Section 3.3)."""
        tpds = self._tpds
        cid = self.lpc.lookup(fp)
        if cid is None:
            cid, probes = tpds.index.lookup_with_probes(fp)
            if cid is None:
                # Not yet registered? chunks pending SIU are still findable
                # through the checking file (stored-but-unregistered).
                cid = tpds.checking.get(fp)
                if cid is None:
                    raise KeyError(f"fingerprint {fp.hex()[:12]} not stored")
            self.random_lookups += 1
            tpds.meter.charge(
                "restore.index_random", tpds.rig.index_disk.random_read_time(probes)
            )
            container = tpds.container_manager.fetch(cid)
            self.container_fetches += 1
            tpds.meter.charge(
                "restore.container_read",
                tpds.rig.repository_disk.seq_read_time(container.capacity),
            )
            self.lpc.insert_container(cid, container.fingerprints)
        else:
            container = tpds.repository.fetch(cid)
        return container.get(fp, self._payload)

    @property
    def lpc_hit_rate(self) -> float:
        """Fraction of chunk reads served without disk-index I/O."""
        return self.lpc.hit_rate
