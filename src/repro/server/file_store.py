"""The File Store module: the backup server's dedup-1 face (Section 3.3).

A :class:`BackupSession` receives one job run's data stream from a backup
client: per file it records metadata, builds the file index (the
fingerprint sequence referencing the file's chunks), and pushes the chunk
stream through the TPDS preliminary filter into the chunk log.  Closing the
session hands the file index entries to the director.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.chunking.cdc import Chunk
from repro.core.fingerprint import Fingerprint
from repro.core.tpds import Dedup1Stats, StreamChunk, TwoPhaseDeduplicator
from repro.director.metadata import FileIndexEntry, FileMetadata


class BackupSession:
    """One job run's dedup-1 session against a File Store."""

    def __init__(
        self,
        tpds: TwoPhaseDeduplicator,
        filtering_fps: Optional[Iterable[Fingerprint]] = None,
    ) -> None:
        self._tpds = tpds
        self._filtering_fps = list(filtering_fps) if filtering_fps is not None else None
        self._entries: List[FileIndexEntry] = []
        self._buffer: List[Tuple[FileMetadata, List[StreamChunk]]] = []
        self._closed = False
        self.stats: Optional[Dedup1Stats] = None

    def add_file(self, metadata: FileMetadata, chunks: Iterable[Chunk]) -> FileIndexEntry:
        """Receive one file: metadata backup, then its chunk stream."""
        if self._closed:
            raise RuntimeError("session already closed")
        stream: List[StreamChunk] = []
        fps: List[Fingerprint] = []
        for chunk in chunks:
            stream.append((chunk.fingerprint, chunk.size, chunk.data))
            fps.append(chunk.fingerprint)
        entry = FileIndexEntry(metadata, fps)
        self._entries.append(entry)
        self._buffer.append((metadata, stream))
        return entry

    def add_fingerprint_stream(
        self,
        stream: Iterable[StreamChunk],
        path: str = "<stream>",
        metadata: Optional[FileMetadata] = None,
    ) -> FileIndexEntry:
        """Receive a raw fingerprint stream (workload-model and remote backups).

        Stream elements are ``(fp, size)`` or ``(fp, size, data)``; remote
        sessions pass ``data=None`` for chunks the preliminary filter will
        reject, which is how dedup-1 avoids moving duplicate payloads over
        the wire.  ``metadata`` overrides the synthesized file metadata
        (remote clients send the real attributes ahead of content).
        """
        if self._closed:
            raise RuntimeError("session already closed")
        elements = list(stream)
        fps = [e[0] for e in elements]
        if metadata is None:
            metadata = FileMetadata(path, sum(e[1] for e in elements))
        entry = FileIndexEntry(metadata, fps)
        self._entries.append(entry)
        self._buffer.append((entry.metadata, elements))
        return entry

    def close(self) -> Tuple[Dedup1Stats, List[FileIndexEntry]]:
        """Run the buffered stream through dedup-1; return stats + indices."""
        if self._closed:
            raise RuntimeError("session already closed")
        self._closed = True

        def whole_stream():
            for _, elements in self._buffer:
                yield from elements

        self.stats, _ = self._tpds.dedup1_backup(whole_stream(), self._filtering_fps)
        return self.stats, list(self._entries)


class FileStore:
    """Session factory plus the restore read path's file-level entry point."""

    def __init__(self, tpds: TwoPhaseDeduplicator) -> None:
        self._tpds = tpds

    def begin_session(
        self, filtering_fps: Optional[Iterable[Fingerprint]] = None
    ) -> BackupSession:
        """Open a dedup-1 session, preloading the preliminary filter with
        the previous run's fingerprints when the director supplies them."""
        return BackupSession(self._tpds, filtering_fps)
