"""Failover reads: fall through the replica set until a chunk resolves.

:class:`FailoverChunkReader` presents the plain ``read_chunk`` interface
restore and scrub already speak, backed by an ordered list of *sources* —
typically the primary (a local :class:`ChunkStore` or a
:class:`~repro.net.client.RemoteChunkReader`) followed by one
:class:`ReplicaReader` per surviving peer.  A miss (``KeyError``) or a
transport failure (timeout, dead peer) on one source falls through to
the next; only when every source has failed does the read raise, so a
restore stays byte-identical as long as *any* replica of each chunk
survives.  Every fall-through increments ``repl.failovers`` labelled
with the source that failed and the one that answered.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.fingerprint import Fingerprint
from repro.net.client import NetClient, RemoteChunkReader, RemoteError
from repro.net.framing import ProtocolError
from repro.telemetry.registry import MetricsRegistry, get_registry


class ReplicaReader:
    """``read_chunk`` against one peer daemon (its replica store included).

    A thin veneer over :class:`RemoteChunkReader` that owns its client,
    carries a display name for repair attribution, and narrows transport
    failures to ``KeyError`` so callers can treat "peer is down" and
    "peer doesn't have it" uniformly as *this source cannot help*.
    """

    def __init__(self, host: str, port: int, name: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.name = name if name is not None else f"{host}:{port}"
        self._net: Optional[NetClient] = None
        self._reader: Optional[RemoteChunkReader] = None

    def _ensure(self) -> RemoteChunkReader:
        if self._reader is None:
            self._net = NetClient(
                self.host, self.port, client_name=f"failover:{self.name}"
            )
            self._reader = RemoteChunkReader(self._net)
        return self._reader

    def read_chunk(self, fp: Fingerprint) -> bytes:
        try:
            return self._ensure().read_chunk(fp)
        except (RemoteError, ProtocolError, OSError) as exc:
            self.close()
            raise KeyError(
                f"replica {self.name} cannot serve {fp.hex()[:12]}: {exc}"
            ) from exc

    def plan(self, fps: Sequence[Fingerprint]) -> None:
        try:
            self._ensure().plan(fps)
        except (ProtocolError, OSError):
            self.close()

    def close(self) -> None:
        if self._net is not None:
            self._net.close()
        self._net = None
        self._reader = None


class FailoverChunkReader:
    """Try each named source in order; first hit wins."""

    def __init__(
        self,
        sources: Sequence[Tuple[str, object]],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not sources:
            raise ValueError("failover reader needs at least one source")
        self.sources: List[Tuple[str, object]] = list(sources)
        registry = registry if registry is not None else get_registry()
        self._t_failovers = registry.counter(
            "repl.failovers", "chunk reads that fell through to a later replica"
        )
        #: name of the source that served the most recent read (repair
        #: attribution: the scrubber names its healer from this).
        self.last_source: Optional[str] = None

    def plan(self, fps: Sequence[Fingerprint]) -> None:
        for _, source in self.sources:
            plan = getattr(source, "plan", None)
            if plan is not None:
                plan(fps)

    def read_chunk(self, fp: Fingerprint) -> bytes:
        last_exc: Optional[Exception] = None
        for position, (name, source) in enumerate(self.sources):
            try:
                data = source.read_chunk(fp)
            except (KeyError, ProtocolError, OSError) as exc:
                last_exc = exc
                continue
            self.last_source = name
            if position > 0:
                primary = self.sources[0][0]
                self._t_failovers.labels(missed=primary, served=name).inc()
            return data
        raise KeyError(
            f"fingerprint {fp.hex()[:12]} unavailable on all "
            f"{len(self.sources)} sources: {last_exc}"
        ) from last_exc

    def close(self) -> None:
        for _, source in self.sources:
            close = getattr(source, "close", None)
            if close is not None:
                close()
