"""The asynchronous replicator: sealed containers → replica peers.

One :class:`Replicator` rides beside a :class:`~repro.system.vault.DebarVault`
(the ``repro serve --replicate-to`` wiring).  After every committed run —
i.e. strictly *after* dedup-2, so the inline backup path never waits on a
peer — it diffs the repository against its acked state and enqueues the
new sealed containers for shipment.  Shipping is fully asynchronous:

* one worker thread and one :class:`~repro.net.client.NetClient` per peer,
  draining a per-peer FIFO of container IDs;
* a shared **in-flight window** (semaphore) bounds how many pushes are in
  the air at once, and a bounded queue provides **backpressure** — an
  ``enqueue`` past ``max_pending`` blocks the caller rather than growing
  without bound;
* container pushes are idempotent end to end: the wire layer retries under
  the server's response cache, and the replica store treats a re-push of a
  held container as a no-op ack;
* the **catalog** (run metadata) is mirrored after a peer's container
  backlog drains, so a mirrored catalog never references chunks that have
  not yet arrived at that peer;
* the *index delta* of a container travels implicitly: images are
  self-described (Section 3.4), so the replica side can always rebuild
  the index entries by scanning metadata sections — nothing else to ship.

Acked container IDs persist per peer in ``<vault>/replication.json``, so a
restarted daemon resumes where it left off (a lost state file merely
causes harmless re-pushes).  Telemetry: ``repl.queue_depth``, ``repl.lag``,
``repl.containers_shipped``, ``repl.bytes_shipped``, ``repl.catalog_pushes``,
``repl.push_errors`` (DESIGN.md §11.2).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.net import messages as m
from repro.net.client import NetClient, RemoteError, RetryPolicy
from repro.net.framing import ProtocolError
from repro.replication.ring import PlacementRing
from repro.telemetry.registry import MetricsRegistry, get_registry

#: State file name inside the vault root.
STATE_FILE = "replication.json"

#: Default bound on queued (not yet in-flight) shipment tasks.
MAX_PENDING = 4096

#: Default bound on concurrent in-flight pushes across all peers.
WINDOW = 4

#: Seconds between retries while a peer stays unreachable (capped backoff).
_BACKOFF_BASE = 0.2
_BACKOFF_MAX = 5.0


class _PeerChannel:
    """One peer's shipment lane: FIFO of container IDs + catalog flag."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.queue: Deque[int] = deque()
        self.queued: Set[int] = set()
        self.catalog_dirty = False
        self.in_flight = 0
        self.errors = 0
        self.thread: Optional[threading.Thread] = None


class Replicator:
    """Ships a vault's sealed containers to its ring-assigned peers."""

    def __init__(
        self,
        vault,
        node_name: str,
        peers: Dict[str, Tuple[str, int]],
        replication_factor: int = 2,
        registry: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        window: int = WINDOW,
        max_pending: int = MAX_PENDING,
    ) -> None:
        if node_name in peers:
            raise ValueError(f"node {node_name!r} cannot be its own peer")
        self.vault = vault
        self.node_name = node_name
        self.ring = PlacementRing(
            [node_name, *peers], replication_factor=replication_factor
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_pending = max_pending
        self._window = threading.Semaphore(max(1, window))
        self._cond = threading.Condition()
        self._paused = False
        self._stopping = False
        self._channels: Dict[str, _PeerChannel] = {
            name: _PeerChannel(name, host, port)
            for name, (host, port) in peers.items()
        }
        self._state_path = Path(vault.root) / STATE_FILE
        self._acked: Dict[str, Set[int]] = {name: set() for name in peers}
        self._load_state()
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._t_depth = registry.gauge(
            "repl.queue_depth", "replication tasks queued, not yet in flight"
        ).labels()
        self._t_lag = registry.gauge(
            "repl.lag", "container shipments owed to peers (queued + in flight)"
        ).labels()
        self._t_shipped = registry.counter(
            "repl.containers_shipped", "containers acked by a replica peer"
        )
        self._t_bytes = registry.counter(
            "repl.bytes_shipped", "container image bytes acked by a replica peer"
        )
        self._t_catalogs = registry.counter(
            "repl.catalog_pushes", "catalog mirrors acked by a replica peer"
        )
        self._t_errors = registry.counter(
            "repl.push_errors", "failed push attempts (retried with backoff)"
        )
        for channel in self._channels.values():
            channel.thread = threading.Thread(
                target=self._worker,
                args=(channel,),
                name=f"repl-{channel.name}",
                daemon=True,
            )
            channel.thread.start()

    # -- persistent state --------------------------------------------------------
    def _load_state(self) -> None:
        if not self._state_path.exists():
            return
        try:
            doc = json.loads(self._state_path.read_text())
        except (ValueError, OSError):
            return  # harmless: everything re-pushes idempotently
        for name, cids in doc.get("acked", {}).items():
            if name in self._acked:
                self._acked[name].update(int(c) for c in cids)

    def _save_state(self) -> None:
        doc = {
            "node": self.node_name,
            "replication_factor": self.ring.replication_factor,
            "peers": {
                name: f"{c.host}:{c.port}" for name, c in self._channels.items()
            },
            "acked": {name: sorted(cids) for name, cids in self._acked.items()},
        }
        tmp = self._state_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1))
        tmp.replace(self._state_path)

    # -- enqueueing ---------------------------------------------------------------
    def _pending_total(self) -> int:
        return sum(len(c.queue) for c in self._channels.values())

    def _in_flight_total(self) -> int:
        return sum(c.in_flight for c in self._channels.values())

    def _publish_gauges(self) -> None:
        depth = self._pending_total()
        self._t_depth.set(depth)
        self._t_lag.set(depth + self._in_flight_total())

    def sync(self) -> int:
        """Diff the repository against acked state; enqueue what's owed.

        Returns the number of container shipments enqueued.  Blocks only
        when the queue is at ``max_pending`` (backpressure), never on the
        network.
        """
        enqueued = 0
        for cid in self.vault.repository.container_ids():
            for peer in self.ring.peers_for_container(self.node_name, cid):
                channel = self._channels[peer]
                with self._cond:
                    if cid in self._acked[peer] or cid in channel.queued:
                        continue
                    while (
                        self._pending_total() >= self.max_pending
                        and not self._stopping
                    ):
                        self._cond.wait(0.05)
                    if self._stopping:
                        return enqueued
                    channel.queue.append(cid)
                    channel.queued.add(cid)
                    enqueued += 1
                    self._publish_gauges()
                    self._cond.notify_all()
        return enqueued

    def notify_run(self, run=None) -> None:
        """Hook for :meth:`DebarVault.backup_stream`: a run just committed
        (dedup-2 complete, containers sealed, catalog written)."""
        with self._cond:
            for channel in self._channels.values():
                channel.catalog_dirty = True
            self._cond.notify_all()
        self.sync()

    # -- flow control -------------------------------------------------------------
    def pause(self) -> None:
        """Stall the queue (tests and benchmarks): nothing ships until
        :meth:`resume`; enqueueing and lag accounting continue."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def lag(self) -> int:
        with self._cond:
            return self._pending_total() + self._in_flight_total()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Block until every queued shipment is acked (or timeout)."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._cond:
            while True:
                if (
                    self._pending_total() == 0
                    and self._in_flight_total() == 0
                    and not any(
                        c.catalog_dirty for c in self._channels.values()
                    )
                ):
                    return True
                if self._stopping:
                    return False
                remaining = (
                    None if deadline is None else deadline - _time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(0.05 if remaining is None else min(0.05, remaining))

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> bool:
        """Stop the workers; with ``drain`` first wait for the queue."""
        drained = self.drain(timeout) if drain else False
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for channel in self._channels.values():
            if channel.thread is not None:
                channel.thread.join(timeout=5.0)
        return drained

    # -- status -------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-able outbound state (the ``repro repl-status`` body)."""
        with self._cond:
            return {
                "node": self.node_name,
                "replication_factor": self.ring.replication_factor,
                "peers": {
                    name: {
                        "address": f"{c.host}:{c.port}",
                        "queued": len(c.queue),
                        "in_flight": c.in_flight,
                        "acked": len(self._acked[name]),
                        "errors": c.errors,
                        "catalog_dirty": c.catalog_dirty,
                    }
                    for name, c in self._channels.items()
                },
                "lag": self._pending_total() + self._in_flight_total(),
            }

    # -- the worker ---------------------------------------------------------------
    def _next_task(self, channel: _PeerChannel):
        """Blocks until this peer owes something (or we're stopping).

        Returns ``("container", cid)``, ``("catalog", None)``, or ``None``
        to exit.  Catalog pushes wait for the container backlog so a
        mirrored catalog never leads its chunks.
        """
        with self._cond:
            while True:
                if self._stopping:
                    return None
                if not self._paused:
                    if channel.queue:
                        cid = channel.queue.popleft()
                        channel.queued.discard(cid)
                        channel.in_flight += 1
                        self._publish_gauges()
                        return ("container", cid)
                    if channel.catalog_dirty and channel.in_flight == 0:
                        channel.catalog_dirty = False
                        channel.in_flight += 1
                        return ("catalog", None)
                self._cond.wait(0.1)

    def _task_done(self, channel: _PeerChannel) -> None:
        with self._cond:
            channel.in_flight -= 1
            self._publish_gauges()
            self._cond.notify_all()

    def _requeue(self, channel: _PeerChannel, kind: str, cid: Optional[int]) -> None:
        with self._cond:
            if kind == "container" and cid is not None and cid not in channel.queued:
                channel.queue.append(cid)
                channel.queued.add(cid)
            elif kind == "catalog":
                channel.catalog_dirty = True
            channel.in_flight -= 1
            channel.errors += 1
            self._publish_gauges()
            self._cond.notify_all()

    def _worker(self, channel: _PeerChannel) -> None:
        client = NetClient(
            channel.host,
            channel.port,
            client_name=f"repl:{self.node_name}",
            retry=self.retry,
            registry=self.registry,
        )
        backoff = _BACKOFF_BASE
        try:
            while True:
                task = self._next_task(channel)
                if task is None:
                    return
                kind, cid = task
                self._window.acquire()
                try:
                    if kind == "container":
                        self._push_container(client, channel, cid)
                    else:
                        self._push_catalog(client, channel)
                    backoff = _BACKOFF_BASE
                except RemoteError as exc:
                    # The peer executed and refused (corrupt image, bad
                    # envelope): retrying identical bytes cannot succeed.
                    self._t_errors.labels(peer=channel.name).inc()
                    with self._cond:
                        channel.errors += 1
                        channel.in_flight -= 1
                        self._publish_gauges()
                        self._cond.notify_all()
                    _ = exc
                    continue
                except (ProtocolError, OSError):
                    # Transport failure after the client's own retries:
                    # the peer is down.  Requeue and back off.
                    self._t_errors.labels(peer=channel.name).inc()
                    self._requeue(channel, kind, cid)
                    self._sleep_backoff(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX)
                    continue
                finally:
                    self._window.release()
                self._task_done(channel)
        finally:
            client.close()

    def _sleep_backoff(self, seconds: float) -> None:
        with self._cond:
            if not self._stopping:
                self._cond.wait(seconds)

    def _push_container(
        self, client: NetClient, channel: _PeerChannel, cid: int
    ) -> None:
        repo = self.vault.repository
        if cid not in repo:
            # Sealed then garbage-collected before shipping: nothing owed.
            with self._cond:
                self._acked[channel.name].add(cid)
                self._save_state()
            return
        # Tier-agnostic: a container the lifecycle manager already moved
        # cold still ships its byte-identical image to the replica.
        image = repo.read_image(cid)
        envelope = {
            "origin": self.node_name,
            "container_id": cid,
            "bytes": len(image),
        }
        client.call(m.CONTAINER_PUSH, m.encode_container_image(envelope, image))
        self._t_shipped.labels(peer=channel.name).inc()
        self._t_bytes.labels(peer=channel.name).inc(len(image))
        with self._cond:
            self._acked[channel.name].add(cid)
            self._save_state()

    def _push_catalog(self, client: NetClient, channel: _PeerChannel) -> None:
        catalog_path = Path(self.vault.root) / "catalog.json"
        try:
            catalog = json.loads(self.vault.fs.read_file(catalog_path))
        except (ValueError, OSError):
            return  # no catalog yet; the next run marks us dirty again
        client.call_json(
            m.CATALOG_PUSH, {"origin": self.node_name, "catalog": catalog}
        )
        self._t_catalogs.labels(peer=channel.name).inc()


def peers_from_state(vault_root) -> Dict[str, Tuple[str, int]]:
    """The peer map a vault last replicated to (``replication.json``), for
    consumers that want replicas without re-specifying them — e.g.
    ``repro scrub --repair`` healing from any replica automatically."""
    path = Path(vault_root) / STATE_FILE
    if not path.exists():
        return {}
    try:
        doc = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    peers: Dict[str, Tuple[str, int]] = {}
    for name, address in doc.get("peers", {}).items():
        host, sep, port = str(address).rpartition(":")
        if sep and port.isdigit():
            peers[name] = (host or "127.0.0.1", int(port))
    return peers
