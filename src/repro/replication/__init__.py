"""repro.replication — replica placement, async container replication,
failover reads, and node rebuild (DESIGN.md §11).

The subsystem that turns the single-copy store into a fault-tolerant
cluster: a deterministic :class:`~repro.replication.ring.PlacementRing`
assigns each sealed container a replica set, the asynchronous
:class:`~repro.replication.replicator.Replicator` ships byte-identical
container images (and the run catalog) to those peers after dedup-2,
peers keep them in a verified :class:`~repro.replication.store.ReplicaStore`,
reads fall through the replica set via
:class:`~repro.replication.failover.FailoverChunkReader`, and
:func:`~repro.replication.rebuild.rebuild_node` reconstructs a lost node
from the survivors.
"""

from repro.replication.failover import FailoverChunkReader, ReplicaReader
from repro.replication.rebuild import RebuildError, RebuildReport, rebuild_node
from repro.replication.replicator import Replicator, peers_from_state
from repro.replication.ring import PlacementRing
from repro.replication.store import ReplicaStore, ReplicaStoreError

__all__ = [
    "FailoverChunkReader",
    "PlacementRing",
    "RebuildError",
    "RebuildReport",
    "ReplicaReader",
    "ReplicaStore",
    "ReplicaStoreError",
    "Replicator",
    "peers_from_state",
    "rebuild_node",
]
