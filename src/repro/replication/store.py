"""The replica store: a node's holding area for *other* nodes' containers.

A ``repro serve`` daemon that accepts ``CONTAINER_PUSH`` keeps the pushed
images beside — never inside — its own repository::

    vault/
      containers/              this node's own sealed containers
      replicas/
        <origin>/
          000000000003.ctr     origin's container 3, byte-identical image
          catalog.json         origin's mirrored run catalog

Images stay in the exact on-disk format the origin wrote (superblock,
framed records, payload CRCs), so a rebuild pull returns bytes the lost
node could have written itself, and the local scrubber machinery could
sweep them with no special casing.  Every accepted push is re-verified
here — the image must deserialize and every payload must pass its CRC —
so a replica can never launder a corrupt container into the cluster.

The store also answers ``read_chunk`` for failover reads: a lazy
fingerprint → (origin, container) map built from the images' metadata
sections lets the daemon serve chunks it only holds as a replica.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.fingerprint import Fingerprint
from repro.durability.errors import CorruptionError
from repro.durability.fsshim import LocalFs
from repro.storage.container import CONTAINER_SIZE, Container

_SUFFIX = ".ctr"
_CATALOG = "catalog.json"


class ReplicaStoreError(ValueError):
    """A push that must be refused (corrupt image, bad envelope)."""


def _safe_origin(origin: str) -> str:
    if not origin or any(c in origin for c in "/\\\0") or origin in (".", ".."):
        raise ReplicaStoreError(f"invalid origin node name {origin!r}")
    return origin


class ReplicaStore:
    """Pushed replica containers and catalogs, one subdirectory per origin."""

    def __init__(
        self,
        root: Union[str, Path],
        container_bytes: int = CONTAINER_SIZE,
        fs: Optional[LocalFs] = None,
    ) -> None:
        self.root = Path(root)
        self.container_bytes = container_bytes
        self.fs = fs if fs is not None else LocalFs()
        self._lock = threading.Lock()
        #: fingerprint -> (origin, container_id); rebuilt lazily.
        self._fp_map: Optional[Dict[Fingerprint, Tuple[str, int]]] = None

    # -- layout -----------------------------------------------------------------
    def _origin_dir(self, origin: str) -> Path:
        return self.root / _safe_origin(origin)

    def _path(self, origin: str, container_id: int) -> Path:
        return self._origin_dir(origin) / f"{container_id:012x}{_SUFFIX}"

    def origins(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def container_ids(self, origin: str) -> List[int]:
        folder = self._origin_dir(origin)
        if not folder.is_dir():
            return []
        return sorted(int(p.stem, 16) for p in folder.glob(f"*{_SUFFIX}"))

    def has(self, origin: str, container_id: int) -> bool:
        return self.fs.exists(self._path(origin, container_id))

    def bytes_held(self, origin: str) -> int:
        folder = self._origin_dir(origin)
        if not folder.is_dir():
            return 0
        return sum(p.stat().st_size for p in folder.glob(f"*{_SUFFIX}"))

    # -- ingest -----------------------------------------------------------------
    def put(self, origin: str, container_id: int, image: bytes) -> bool:
        """Accept one pushed container image; returns False on an idempotent
        duplicate (same origin/id already held — the bytes are trusted to
        match because pushes are content-verified and containers immutable).
        """
        path = self._path(origin, container_id)  # validates the origin name
        container = Container.deserialize(
            container_id, image, capacity=self.container_bytes
        )
        faults = container.verify_payloads()
        if faults:
            raise ReplicaStoreError(
                f"pushed container {container_id} from {origin!r} failed "
                f"payload verification ({faults[0].reason})"
            )
        with self._lock:
            if self.fs.exists(path):
                return False
            path.parent.mkdir(parents=True, exist_ok=True)
            self.fs.write_file(path, image)
            self._fp_map = None  # new chunks became servable
        return True

    def put_catalog(self, origin: str, catalog: dict) -> None:
        folder = self._origin_dir(origin)
        folder.mkdir(parents=True, exist_ok=True)
        self.fs.write_file(
            folder / _CATALOG, json.dumps(catalog, indent=1).encode()
        )

    # -- retrieval ---------------------------------------------------------------
    def fetch_image(self, origin: str, container_id: int) -> bytes:
        path = self._path(origin, container_id)
        if not self.fs.exists(path):
            raise KeyError(
                f"no replica of container {container_id} from {origin!r}"
            )
        return self.fs.read_file(path)

    def catalog(self, origin: str) -> dict:
        path = self._origin_dir(origin) / _CATALOG
        if not self.fs.exists(path):
            raise KeyError(f"no mirrored catalog for {origin!r}")
        return json.loads(self.fs.read_file(path))

    def has_catalog(self, origin: str) -> bool:
        return self.fs.exists(self._origin_dir(origin) / _CATALOG)

    def _ensure_fp_map(self) -> Dict[Fingerprint, Tuple[str, int]]:
        with self._lock:
            if self._fp_map is None:
                fp_map: Dict[Fingerprint, Tuple[str, int]] = {}
                for origin in self.origins():
                    for cid in self.container_ids(origin):
                        try:
                            container = Container.deserialize(
                                cid,
                                self.fs.read_file(self._path(origin, cid)),
                                capacity=self.container_bytes,
                            )
                        except CorruptionError:
                            continue  # rotted replica: never served
                        for fp in container.fingerprints:
                            fp_map.setdefault(fp, (origin, cid))
                self._fp_map = fp_map
            return self._fp_map

    def read_chunk(self, fp: Fingerprint) -> bytes:
        """Serve one chunk out of any held replica (failover reads)."""
        location = self._ensure_fp_map().get(fp)
        if location is None:
            raise KeyError(f"fingerprint {fp.hex()[:12]} not replicated here")
        origin, cid = location
        container = Container.deserialize(
            cid, self.fetch_image(origin, cid), capacity=self.container_bytes
        )
        return container.get(fp)

    # -- inventory ---------------------------------------------------------------
    def status(self) -> Dict[str, dict]:
        """Per-origin inventory, the body of a ``REPL_STATUS`` response."""
        out: Dict[str, dict] = {}
        for origin in self.origins():
            cids = self.container_ids(origin)
            entry = {
                "containers": len(cids),
                "container_ids": cids,
                "bytes": self.bytes_held(origin),
                "catalog_runs": None,
            }
            if self.has_catalog(origin):
                try:
                    entry["catalog_runs"] = len(self.catalog(origin).get("runs", []))
                except (ValueError, OSError):
                    entry["catalog_runs"] = None
            out[origin] = entry
        return out
