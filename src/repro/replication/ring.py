"""The placement ring: deterministic replica sets for containers and
index-prefix partitions (DESIGN.md §11.1).

A classic consistent-hash ring with virtual nodes: every node name is
hashed onto ``vnodes`` points of a SHA-1 ring, and a key's replica set is
the first ``replication_factor`` *distinct* nodes met walking clockwise
from the key's own hash.  Determinism is the load-bearing property — any
process (the replicator, a scrubber hunting a repair source, a rebuild
after node loss) computes the same replica set from nothing but the node
list, so there is no placement database to replicate or lose.

Two key namespaces share the ring:

* ``ctr:<origin>:<container_id>`` — one sealed container of one node;
* ``idx:<w>:<prefix>`` — one fingerprint-prefix partition of the index
  (the first ``w`` bits, matching the paper's Section 6 performance
  scaling), so the index-bucket range a node owns has the same
  well-defined replica set as its containers.

Adding a node moves only ~1/n of the keys (the consistent-hashing
argument), so a rebuilt or replacement node re-homes a bounded share of
replicas rather than reshuffling the cluster.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

#: Virtual nodes per physical node; 64 keeps the per-node share of a
#: small ring within a few percent of 1/n.
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class PlacementRing:
    """Deterministic node placement for replica sets of size ``rf``."""

    def __init__(
        self,
        nodes: Sequence[str],
        replication_factor: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        names = list(dict.fromkeys(nodes))  # de-dup, keep order for repr
        if not names:
            raise ValueError("placement ring needs at least one node")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.nodes = names
        self.replication_factor = min(replication_factor, len(names))
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = sorted(
            (_point(f"{name}#{v}"), name)
            for name in names
            for v in range(vnodes)
        )
        self._hashes = [h for h, _ in self._points]

    def __len__(self) -> int:
        return len(self.nodes)

    def replicas(self, key: str, rf: Optional[int] = None) -> List[str]:
        """The first ``rf`` distinct nodes clockwise from ``key``'s hash."""
        rf = self.replication_factor if rf is None else min(rf, len(self.nodes))
        start = bisect.bisect_right(self._hashes, _point(key))
        out: List[str] = []
        for i in range(len(self._points)):
            _, name = self._points[(start + i) % len(self._points)]
            if name not in out:
                out.append(name)
                if len(out) == rf:
                    break
        return out

    # -- the two key namespaces ------------------------------------------------
    def replicas_for_container(self, origin: str, container_id: int) -> List[str]:
        """The full replica set of one sealed container (origin included).

        The origin already holds the primary copy, so it heads the list;
        the ring fills the remaining ``rf - 1`` slots with distinct peers.
        """
        peers = [
            name
            for name in self.replicas(
                f"ctr:{origin}:{container_id}", rf=len(self.nodes)
            )
            if name != origin
        ]
        return [origin] + peers[: self.replication_factor - 1]

    def peers_for_container(self, origin: str, container_id: int) -> List[str]:
        """The replica set minus the origin: where to *ship* the container."""
        return self.replicas_for_container(origin, container_id)[1:]

    def replicas_for_prefix(self, prefix: int, w: int) -> List[str]:
        """Replica set of one ``2^w``-way index partition (first ``w`` bits)."""
        if w < 0 or (w and prefix >= (1 << w)):
            raise ValueError(f"prefix {prefix} does not fit {w} bits")
        return self.replicas(f"idx:{w}:{prefix}")

    # -- serialization ---------------------------------------------------------
    def to_doc(self) -> Dict[str, object]:
        """A JSON-safe description another process rebuilds the ring from.

        Only the inputs travel — the ring itself is recomputed, which is
        the determinism guarantee made explicit: two processes holding the
        same doc place every key identically.
        """
        return {
            "nodes": list(self.nodes),
            "replication_factor": self.replication_factor,
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "PlacementRing":
        return cls(
            list(doc["nodes"]),
            replication_factor=int(doc.get("replication_factor", 2)),
            vnodes=int(doc.get("vnodes", DEFAULT_VNODES)),
        )

    def share(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node would own first — balance probe."""
        out = {name: 0 for name in self.nodes}
        for key in keys:
            out[self.replicas(key, rf=1)[0]] += 1
        return out
