"""Node rebuild: reconstruct a lost node from its surviving replicas.

``repro rebuild --node K`` points this module at the surviving peers.
The protocol (DESIGN.md §11.4):

1. ``REPL_STATUS`` every peer — who holds which of K's containers, and
   who holds K's mirrored catalog;
2. ``CATALOG_FETCH`` the catalog (any holder — the mirror is an exact
   copy, and it carries the vault geometry the new vault must reopen
   with);
3. ``CONTAINER_FETCH`` every container id the status union named, first
   holder wins, next holder on failure;
4. verify each pulled image **fingerprint by fingerprint** — the image
   must deserialize, every payload CRC must hold, and every record's
   payload must re-hash to its fingerprint — before the byte-identical
   image lands in the new vault's ``containers/``;
5. reopen the vault and :meth:`~repro.system.vault.DebarVault.recover_index`
   (the paper's Section 4.1 metadata-section recovery), then audit.

Because replica images are byte-identical to what the lost node wrote,
the rebuilt vault is indistinguishable from one that never died — modulo
containers sealed after the last replication drain, which no replica
ever saw and which the report lists as unrecoverable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.fingerprint import fingerprint as sha1
from repro.durability.errors import CorruptionError
from repro.net import messages as m
from repro.net.client import NetClient, RemoteError, RetryPolicy
from repro.net.framing import ProtocolError
from repro.storage.container import Container

PathLike = Union[str, Path]


class RebuildError(Exception):
    """The rebuild cannot produce a complete, verified vault."""


@dataclass
class RebuildReport:
    """What a node rebuild recovered, and from where."""

    node: str
    containers_recovered: int = 0
    containers_missing: List[int] = field(default_factory=list)
    chunks_verified: int = 0
    bytes_recovered: int = 0
    index_entries: int = 0
    catalog_runs: int = 0
    catalog_source: Optional[str] = None
    #: container id -> peer that supplied the verified image.
    sources: Dict[int, str] = field(default_factory=dict)
    audit_ok: Optional[bool] = None
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "node": self.node,
            "containers_recovered": self.containers_recovered,
            "containers_missing": self.containers_missing,
            "chunks_verified": self.chunks_verified,
            "bytes_recovered": self.bytes_recovered,
            "index_entries": self.index_entries,
            "catalog_runs": self.catalog_runs,
            "catalog_source": self.catalog_source,
            "sources": {str(cid): peer for cid, peer in self.sources.items()},
            "audit_ok": self.audit_ok,
            "notes": self.notes,
        }


def verify_image(node: str, container_id: int, image: bytes, capacity: int) -> int:
    """Fingerprint-by-fingerprint verification of one pulled image.

    Returns the number of verified chunks; raises
    :class:`~repro.durability.errors.CorruptionError` on the first record
    whose payload fails its CRC or does not re-hash to its fingerprint.
    """
    container = Container.deserialize(container_id, image, capacity=capacity)
    faults = container.verify_payloads()
    if faults:
        raise CorruptionError(
            f"replica image of container {container_id} ({node}) failed "
            f"payload verification: {faults[0].reason}",
            artifact="container", container_id=container_id,
        )
    for record in container.records:
        if sha1(container.get(record.fingerprint)) != record.fingerprint:
            raise CorruptionError(
                f"container {container_id} ({node}): payload of "
                f"{record.fingerprint.hex()[:12]} does not re-hash to its "
                f"fingerprint",
                artifact="container",
                container_id=container_id,
                fingerprint=record.fingerprint,
            )
    return len(container.records)


def rebuild_node(
    node: str,
    vault_root: PathLike,
    peers: Dict[str, Tuple[str, int]],
    retry: Optional[RetryPolicy] = None,
    audit: bool = True,
) -> RebuildReport:
    """Reconstruct ``node``'s vault at ``vault_root`` from ``peers``.

    ``vault_root`` must not already contain a vault (no ``catalog.json``) —
    rebuilding over live data would be destructive.  Raises
    :class:`RebuildError` when no peer holds the node's catalog or when a
    named container cannot be pulled and verified from any holder.
    """
    if not peers:
        raise RebuildError("rebuild needs at least one surviving peer")
    root = Path(vault_root)
    if (root / "catalog.json").exists():
        raise RebuildError(
            f"{root} already holds a vault; rebuild refuses to overwrite it"
        )
    report = RebuildReport(node=node)
    clients: Dict[str, NetClient] = {}
    try:
        for name, (host, port) in peers.items():
            clients[name] = NetClient(
                host, port, client_name=f"rebuild:{node}", retry=retry
            )
        # 1. Inventory: who holds what of the lost node's.
        holders: Dict[int, List[str]] = {}
        catalog_holders: List[str] = []
        for name, client in clients.items():
            try:
                status = client.call_json(m.REPL_STATUS, {})
            except (ProtocolError, OSError) as exc:
                report.notes.append(f"peer {name} unreachable for status: {exc}")
                continue
            held = status.get("replicas", {}).get(node)
            if not held:
                continue
            for cid in held.get("container_ids", []):
                holders.setdefault(int(cid), []).append(name)
            if held.get("catalog_runs") is not None:
                catalog_holders.append(name)
        if not catalog_holders:
            raise RebuildError(
                f"no surviving peer holds a mirrored catalog for {node!r}"
            )
        # 2. The catalog: geometry + run metadata, any holder.
        catalog: Optional[dict] = None
        for name in catalog_holders:
            try:
                doc = clients[name].call_json(m.CATALOG_FETCH, {"origin": node})
                catalog = doc["catalog"]
                report.catalog_source = name
                break
            except (RemoteError, ProtocolError, OSError, KeyError) as exc:
                report.notes.append(f"catalog fetch from {name} failed: {exc}")
        if catalog is None:
            raise RebuildError(f"could not fetch {node!r}'s catalog from any peer")
        capacity = int(catalog.get("container_bytes", 0)) or None
        root.mkdir(parents=True, exist_ok=True)
        containers_dir = root / "containers"
        containers_dir.mkdir(exist_ok=True)
        # 3 + 4. Pull and verify every container the inventory named.
        for cid in sorted(holders):
            image: Optional[bytes] = None
            for name in holders[cid]:
                try:
                    payload = clients[name].call(
                        m.CONTAINER_FETCH,
                        m.encode_json({"origin": node, "container_id": cid}),
                    )
                    _, candidate = m.decode_container_image(payload)
                    report.chunks_verified += verify_image(
                        node, cid, candidate, capacity or len(candidate)
                    )
                    image = candidate
                    report.sources[cid] = name
                    break
                except (
                    RemoteError, ProtocolError, OSError, CorruptionError,
                ) as exc:
                    report.notes.append(
                        f"container {cid} from {name} rejected: {exc}"
                    )
            if image is None:
                report.containers_missing.append(cid)
                continue
            (containers_dir / f"{cid:012x}.ctr").write_bytes(image)
            report.containers_recovered += 1
            report.bytes_recovered += len(image)
        if report.containers_missing:
            raise RebuildError(
                f"containers {report.containers_missing} of {node!r} could "
                f"not be pulled from any surviving peer"
            )
        # 5. Catalog down, containers down: reopen and recover the index.
        report.catalog_runs = len(catalog.get("runs", []))
        (root / "catalog.json").write_text(json.dumps(catalog, indent=1))
        from repro.system.vault import DebarVault

        with DebarVault(root) as vault:
            report.index_entries = vault.recover_index()
            if audit:
                audit_report = vault.audit(deep=True)
                report.audit_ok = audit_report.ok
                if not audit_report.ok:
                    report.notes.extend(
                        str(f) for f in audit_report.errors[:10]
                    )
        return report
    finally:
        for client in clients.values():
            client.close()
