"""Loopback all-to-all fingerprint exchange for cluster PSIL/PSIU.

:class:`~repro.system.cluster.DebarCluster` normally exchanges PSIL
inputs and PSIU routing records by Python list passing, with exchange
volumes *computed* and charged to the simulated network model.  With
``wire_exchange=True`` the cluster routes those same exchanges through a
:class:`LoopbackExchange`: every cross-server transfer is serialized
(:func:`repro.net.messages.encode_exchange` /
``encode_cid_records``), framed, pushed through a real loopback TCP
socket, acknowledged, decoded and delivered — so the exchange volumes of
Figure 13 are *measured on a wire* (``net.bytes_sent{role="cluster"}``)
rather than derived, and any serialization drift between the two paths
shows up as a test failure.

The exchange is deliberately synchronous and deterministic: sends are
acknowledged in order, so a completed ``all_to_all`` call means every
peer's inbox holds exactly what was addressed to it (the barrier
semantics the cluster's phases assume).  Self-deliveries stay local, as
in the simulated accounting, which only charges cross-server traffic.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprint import Fingerprint
from repro.net import messages as m
from repro.net.framing import Frame, FrameError, read_frame
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Payload subtype markers (first payload byte): fingerprints vs records.
_KIND_FPS = 0
_KIND_RECORDS = 1


class LoopbackExchange:
    """A loopback acceptor plus per-sender connections for all-to-all
    fingerprint exchange between the servers of one cluster."""

    def __init__(
        self,
        n_servers: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.n_servers = n_servers
        registry = registry if registry is not None else get_registry()
        self._t_sent = registry.counter(
            "net.bytes_sent", "protocol bytes sent, by role"
        ).labels(role="cluster")
        self._t_received = registry.counter(
            "net.bytes_received", "protocol bytes received, by role"
        ).labels(role="cluster")
        self._t_frames = registry.counter(
            "net.exchange_frames", "EXCHANGE frames carried over loopback"
        ).labels()
        self._lock = threading.Lock()
        # inboxes[owner] = list of (sender, kind, decoded parts for owner)
        self._inboxes: List[List[Tuple[int, int, list]]] = [[] for _ in range(n_servers)]
        self._server = _ExchangeAcceptor(self)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-net-exchange", daemon=True
        )
        self._thread.start()
        self._conn: Optional[socket.socket] = None
        self._rid = 0

    # -- lifecycle ----------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "LoopbackExchange":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._conn is None:
            self._conn = socket.create_connection(
                ("127.0.0.1", self.port), timeout=30
            )
        return self._conn

    def _send(self, kind: int, sender: int, owner: int, payload: bytes) -> None:
        self._rid += 1
        blob = Frame(
            m.EXCHANGE,
            self._rid,
            bytes([kind]) + m._U32.pack(owner) + payload,
        ).encode()
        conn = self._connection()
        conn.sendall(blob)
        self._t_sent.inc(len(blob))
        self._t_frames.inc()
        ack = read_frame(conn.recv)
        if ack.msg_type != m.EXCHANGE_OK or ack.request_id != self._rid:
            raise FrameError("exchange ack out of order")

    def deliver(self, kind: int, owner: int, sender: int, decoded: list) -> None:
        """Called by the acceptor thread when a frame lands."""
        with self._lock:
            self._inboxes[owner].append((sender, kind, decoded))

    # -- all-to-all rounds --------------------------------------------------------
    def exchange_fingerprints(
        self, outgoing: Sequence[Dict[int, List[Fingerprint]]]
    ) -> List[Dict[int, List[Fingerprint]]]:
        """One all-to-all: ``outgoing[j][k]`` goes from server j to server k.

        Returns ``inbound`` with ``inbound[k][j]`` = the fingerprints
        server k received from server j (self-deliveries included,
        carried locally).
        """
        inbound: List[Dict[int, List[Fingerprint]]] = [
            {} for _ in range(self.n_servers)
        ]
        for j, parts in enumerate(outgoing):
            for owner, fps in parts.items():
                if not fps:
                    continue
                if owner == j:
                    inbound[owner][j] = list(fps)
                    continue
                self._send(_KIND_FPS, j, owner, m.encode_exchange(j, {owner: fps}))
        self._drain(_KIND_FPS, inbound)
        return inbound

    def exchange_records(
        self, outgoing: Sequence[Dict[int, List[Tuple[Fingerprint, int]]]]
    ) -> List[Dict[int, List[Tuple[Fingerprint, int]]]]:
        """All-to-all for (fingerprint, container id) routing records."""
        inbound: List[Dict[int, List[Tuple[Fingerprint, int]]]] = [
            {} for _ in range(self.n_servers)
        ]
        for j, parts in enumerate(outgoing):
            for owner, records in parts.items():
                if not records:
                    continue
                if owner == j:
                    inbound[owner][j] = list(records)
                    continue
                self._send(
                    _KIND_RECORDS,
                    j,
                    owner,
                    m._U32.pack(j) + m.encode_cid_records(records),
                )
        self._drain(_KIND_RECORDS, inbound)
        return inbound

    def _drain(self, kind: int, inbound: List[Dict[int, list]]) -> None:
        """Move everything the acceptor delivered into ``inbound``.

        Sends are individually acknowledged, so by the time the last
        ``_send`` returned, every frame of this round has been delivered.
        """
        with self._lock:
            for owner, box in enumerate(self._inboxes):
                keep = []
                for sender, got_kind, decoded in box:
                    if got_kind != kind:
                        keep.append((sender, got_kind, decoded))
                        continue
                    inbound[owner].setdefault(sender, []).extend(decoded)
                box[:] = keep


class _ExchangeAcceptor(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, exchange: LoopbackExchange) -> None:
        self.exchange = exchange
        super().__init__(("127.0.0.1", 0), _ExchangeHandler)


class _ExchangeHandler(socketserver.BaseRequestHandler):
    server: _ExchangeAcceptor

    def handle(self) -> None:
        sock: socket.socket = self.request
        exchange = self.server.exchange

        def counted_recv(n: int) -> bytes:
            block = sock.recv(n)
            exchange._t_received.inc(len(block))
            return block

        while True:
            try:
                frame = read_frame(counted_recv)
            except (FrameError, OSError):
                return
            payload = frame.payload
            kind = payload[0]
            owner, offset = m._take_u32(payload, 1)
            if kind == _KIND_FPS:
                sender, parts, _ = m.decode_exchange(payload, offset)
                decoded = parts.get(owner, [])
            else:
                sender, offset = m._take_u32(payload, offset)
                decoded, _ = m.decode_cid_records(payload, offset)
            exchange.deliver(kind, owner, sender, decoded)
            try:
                sock.sendall(Frame(m.EXCHANGE_OK, frame.request_id).encode())
            except OSError:
                return
