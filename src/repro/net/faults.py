"""Frame-level fault injection (the network face of :mod:`repro.audit.faults`).

Where the audit harness kills the dedup-2 pipeline at step boundaries,
this shim damages the *wire*: it installs as a
:class:`~repro.net.client.NetClient` ``fault_hook`` and drops, truncates
or duplicates outgoing frames at chosen occurrences.  The client's retry
layer — timeouts, reconnect, idempotent request ids — must recover from
every one of them without double-executing a mutation; the loopback
integration tests prove it (``tests/test_net_remote.py``).

Actions:

``drop``
    The frame never reaches the wire.  The client times out waiting for
    a response and retries with the same request id.
``truncate``
    Only the first half of the frame is sent.  The server's frame reader
    fails mid-frame and drops the connection; the client reconnects and
    retries.
``duplicate``
    The frame is sent twice back to back.  The server executes once and
    answers the second copy from its idempotency cache; the client
    discards the stale extra response by request id.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

DROP = "drop"
TRUNCATE = "truncate"
DUPLICATE = "duplicate"

#: Every frame-level fault action, in escalation order.
FRAME_FAULTS: Tuple[str, ...] = (DROP, TRUNCATE, DUPLICATE)


class FrameFaultPlan:
    """Apply one fault action to the ``occurrence``-th outgoing frame.

    Install as ``client.net.fault_hook`` (or through :func:`inject_frames`).
    Every outgoing frame is counted in :attr:`sent`; the matching one is
    damaged and :attr:`fired` set.  Handshake frames are exempt — faults
    target requests, not connection setup, so a reconnect can always
    complete and the retry path terminates.
    """

    def __init__(self, action: str, occurrence: int = 1) -> None:
        if action not in FRAME_FAULTS:
            raise ValueError(f"unknown frame fault {action!r}; one of {FRAME_FAULTS}")
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self.action = action
        self.occurrence = occurrence
        self.sent = 0
        self.fired = False

    def __call__(self, direction: str, blob: bytes, client) -> Optional[bytes]:
        if direction != "send":
            return blob
        self.sent += 1
        if self.fired or self.sent != self.occurrence:
            return blob
        self.fired = True
        if self.action == DROP:
            return None
        if self.action == DUPLICATE:
            return blob + blob
        # TRUNCATE: push half the frame, then cut the connection so
        # neither side waits a full timeout on the broken stream.
        half = blob[: max(1, len(blob) // 2)]
        try:
            client._send_raw(half)
        except OSError:
            pass
        client._drop_connection()
        return None


class FaultCounters:
    """Shared accounting across a sequence of fault plans (tests)."""

    def __init__(self) -> None:
        self.by_action: Dict[str, int] = {a: 0 for a in FRAME_FAULTS}

    def record(self, plan: FrameFaultPlan) -> None:
        if plan.fired:
            self.by_action[plan.action] += 1


@contextmanager
def inject_frames(net_client, action: str, occurrence: int = 1) -> Iterator[FrameFaultPlan]:
    """Arm one frame fault on a :class:`~repro.net.client.NetClient` for a
    ``with`` block, restoring the previous hook on exit::

        with inject_frames(client.net, DROP, occurrence=3) as plan:
            client.backup("job", [data_dir])
        assert plan.fired
    """
    plan = FrameFaultPlan(action, occurrence)
    previous = net_client.fault_hook
    net_client.fault_hook = plan
    try:
        yield plan
    finally:
        net_client.fault_hook = previous
