"""The remote backup client: the vault API over the wire (DESIGN.md §9).

:class:`NetClient` is the RPC layer — one TCP connection, a handshake
(with the tenant token when the daemon is tenanted), ``call()`` with
per-request timeouts, bounded retry with exponential backoff and
deterministic jitter, and idempotent request ids (a retried request
re-sends the *same* id; the server's response cache makes the retry safe
even when the original executed).  ``call_many()`` pipelines a batch of
requests down the socket and collects the responses by id in whatever
order the server's multiplexed core finishes them — the client half of
connection multiplexing (DESIGN.md §12).  A server-side admission shed
(``ERROR {"error": "Busy"}``) is retryable like a transport fault;
every other remote error raises :class:`RemoteError` immediately.

:class:`RemoteBackupClient` mirrors the parts of
:class:`~repro.system.vault.DebarVault` the CLI uses — ``backup``,
``restore``, ``runs``, ``stats``, ``gc``, ``verify``, ``forget``,
``dedup2`` — so ``repro backup --connect host:port ...`` behaves like
``repro backup --vault ...`` with the pipeline split across the wire at
exactly the paper's Section 3 client/server boundary: anchoring,
chunking and fingerprinting run here; filtering, the chunk log, dedup-2
and the LPC run on the server.

:class:`RemoteChunkReader` adapts ``CHUNK_READ`` to the
``ChunkStore.read_chunk`` interface (with plan-driven batched reads) so
:meth:`~repro.client.backup_client.BackupEngine.restore_run` works
unchanged against a remote server.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.chunking.cdc import ContentDefinedChunker
from repro.client.backup_client import BackupEngine
from repro.core.fingerprint import Fingerprint
from repro.director.metadata import FileIndexEntry, FileMetadata
from repro.net import messages as m
from repro.net.framing import Frame, FrameError, ProtocolError, read_frame
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.util.ranges import Span, leading_run

PathLike = Union[str, Path]

#: Fingerprints per FILTER_QUERY batch and chunks per CHUNK_APPEND batch.
QUERY_BATCH = 4096
APPEND_BATCH_BYTES = 4 * 1024 * 1024
#: Chunks fetched per CHUNK_READ during a planned restore.
READ_BATCH = 64


class RemoteError(ProtocolError):
    """The server reported an application error (not a transport failure)."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


class RemoteUnavailable(ProtocolError):
    """The retry budget ran out without a successful round trip."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter."""

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    timeout: float = 10.0
    #: TCP connect budget; ``None`` falls back to ``timeout``.  A down
    #: node whose SYNs go unanswered should fail in the connect budget,
    #: not hold a whole request timeout hostage per attempt.
    connect_timeout: Optional[float] = None

    @property
    def effective_connect_timeout(self) -> float:
        return self.timeout if self.connect_timeout is None else self.connect_timeout

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based): ``base * 2^(n-1)``
        capped at ``max_delay``, times a jitter factor in ``[1-j, 1+j]``."""
        backoff = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        return backoff * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class NetClient:
    """One logical connection to a ``repro serve`` daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        client_name: str = "client",
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        seed: Optional[int] = None,
        token: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_name = client_name
        self.token = token
        self.retry = retry if retry is not None else RetryPolicy()
        # Request ids must be unique across reconnects of this client and
        # across clients sharing a server (they key the server's
        # idempotency cache): a random 32-bit nonce prefixes a local
        # counter.  The nonce comes from the OS unless a seed is forced;
        # two clients sharing a nonce would read each other's cached
        # responses.
        nonce = (
            random.SystemRandom().getrandbits(32)
            if seed is None
            else random.Random(seed).getrandbits(32)
        )
        self._rng = random.Random(nonce)
        self._rid_base = nonce << 32
        self._rid_next = 0
        self._sock: Optional[socket.socket] = None
        #: Fault-injection hook on outgoing frames (repro.net.faults).
        self.fault_hook = None
        self._sleep = None  # test seam; defaults to time.sleep
        registry = registry if registry is not None else get_registry()
        self._t_bytes_out = registry.counter(
            "net.bytes_sent", "protocol bytes sent, by role"
        ).labels(role="client")
        self._t_bytes_in = registry.counter(
            "net.bytes_received", "protocol bytes received, by role"
        ).labels(role="client")
        self._t_requests = registry.counter(
            "net.requests", "protocol requests handled, by message type"
        )
        self._t_retries = registry.counter(
            "net.retries", "request retries after timeouts/transport faults"
        ).labels()
        self._t_latency = registry.histogram(
            "net.rpc_latency", "round-trip seconds per request, by type"
        )
        self._t_reconnects = registry.counter(
            "net.reconnects", "connections (re)established by the client"
        ).labels()

    # -- connection ---------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.retry.effective_connect_timeout
        )
        sock.settimeout(self.retry.timeout)
        self._sock = sock
        self._t_reconnects.inc()
        doc = {"client": self.client_name}
        if self.token is not None:
            doc["token"] = self.token
        hello = Frame(m.HELLO, self._next_rid(), m.encode_json(doc))
        self._send_raw(hello.encode())
        response = self._recv_frame()
        if response.msg_type == m.ERROR:
            err = m.decode_json(response.payload)
            self.close()
            raise RemoteError(err.get("error", "Error"), err.get("message", ""))
        if response.msg_type != m.HELLO_OK:
            raise ProtocolError(
                f"handshake failed: got {m.msg_name(response.msg_type)}"
            )

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _drop_connection(self) -> None:
        self.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire I/O -----------------------------------------------------------------
    def _next_rid(self) -> int:
        self._rid_next += 1
        return self._rid_base | (self._rid_next & 0xFFFFFFFF)

    def _send_raw(self, blob: bytes) -> None:
        if self._sock is None:
            raise OSError("connection closed")
        self._sock.sendall(blob)
        self._t_bytes_out.inc(len(blob))

    def _send_frame(self, frame: Frame) -> None:
        blob = frame.encode()
        if self.fault_hook is not None:
            blob = self.fault_hook("send", blob, self)
            if blob is None:
                return  # frame dropped on the floor
        self._send_raw(blob)

    def _recv_frame(self) -> Frame:
        if self._sock is None:
            raise OSError("connection closed")
        sock = self._sock

        def counted_recv(n: int) -> bytes:
            block = sock.recv(n)
            self._t_bytes_in.inc(len(block))
            return block

        return read_frame(counted_recv)

    def _recv_matching(self, request_id: int) -> Frame:
        """Read until the response for ``request_id`` arrives.

        Stale frames (responses to an earlier attempt that the server
        answered after we had given up, or duplicates a fault injected)
        are discarded by id.
        """
        while True:
            frame = self._recv_frame()
            if frame.request_id == request_id:
                return frame

    # -- the RPC ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        self._t_retries.inc()
        sleep = self._sleep if self._sleep is not None else time.sleep
        sleep(self.retry.delay(attempt - 1, self._rng))

    def call(self, msg_type: int, payload: bytes = b"") -> bytes:
        """One request/response round trip with retries.

        Transport failures (timeout, connection loss, truncated or
        malformed frames) reconnect and re-send the same request id, up to
        ``retry.max_attempts``; a ``Busy`` admission shed backs off and
        retries the same id; every other application error raises
        :class:`RemoteError` immediately and is never retried.  Each
        attempt is timed individually, so ``net.rpc_latency`` measures
        round trips, not backoff sleeps.
        """
        rid = self._next_rid()
        frame = Frame(msg_type, rid, payload)
        expected = m.RESPONSE_OF.get(msg_type)
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                self._backoff(attempt)
            t0 = wall_now()
            try:
                self._ensure_connected()
                self._send_frame(frame)
                response = self._recv_matching(rid)
            except (socket.timeout, TimeoutError, FrameError, OSError) as exc:
                last_error = exc
                self._drop_connection()
                continue
            self._t_requests.labels(type=m.msg_name(msg_type)).inc()
            self._t_latency.labels(type=m.msg_name(msg_type)).observe(
                wall_now() - t0
            )
            if response.msg_type == m.ERROR:
                doc = m.decode_json(response.payload)
                if doc.get("error") == "Busy":
                    # Admission shed: retryable with backoff, same id.
                    last_error = RemoteError("Busy", doc.get("message", ""))
                    continue
                raise RemoteError(doc.get("error", "Error"), doc.get("message", ""))
            if expected is not None and response.msg_type != expected:
                raise ProtocolError(
                    f"expected {m.msg_name(expected)} for {m.msg_name(msg_type)}, "
                    f"got {m.msg_name(response.msg_type)}"
                )
            return response.payload
        raise RemoteUnavailable(
            f"{m.msg_name(msg_type)} failed after {self.retry.max_attempts} "
            f"attempts: {last_error}"
        )

    def call_many(
        self, requests: Sequence[Tuple[int, bytes]]
    ) -> List[bytes]:
        """Pipeline a batch of requests on one socket (multiplexed calls).

        All frames are written back to back, then responses are collected
        by request id in whatever order the server finishes them.  A
        transport fault re-sends only the still-unanswered ids (safe:
        idempotent request ids); a ``Busy`` shed re-queues that id for the
        next backoff round.  Responses are returned in request order.
        """
        if not requests:
            return []
        rids = [self._next_rid() for _ in requests]
        frames = {
            rid: Frame(msg_type, rid, payload)
            for rid, (msg_type, payload) in zip(rids, requests)
        }
        expected = {
            rid: m.RESPONSE_OF.get(msg_type)
            for rid, (msg_type, _) in zip(rids, requests)
        }
        results: Dict[int, bytes] = {}
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                self._backoff(attempt)
            outstanding = [rid for rid in rids if rid not in results]
            if not outstanding:
                break
            t0 = wall_now()
            try:
                self._ensure_connected()
                for rid in outstanding:
                    self._send_frame(frames[rid])
                pending = set(outstanding)
                while pending:
                    response = self._recv_frame()
                    rid = response.request_id
                    if rid not in pending:
                        continue  # stale or duplicated response: discard
                    msg_type = frames[rid].msg_type
                    if response.msg_type == m.ERROR:
                        doc = m.decode_json(response.payload)
                        if doc.get("error") == "Busy":
                            # Shed: leave it out of results; next attempt
                            # re-sends it after backoff.
                            last_error = RemoteError("Busy", doc.get("message", ""))
                            pending.discard(rid)
                            continue
                        raise RemoteError(
                            doc.get("error", "Error"), doc.get("message", "")
                        )
                    if (
                        expected[rid] is not None
                        and response.msg_type != expected[rid]
                    ):
                        raise ProtocolError(
                            f"expected {m.msg_name(expected[rid])} for "
                            f"{m.msg_name(msg_type)}, got "
                            f"{m.msg_name(response.msg_type)}"
                        )
                    results[rid] = response.payload
                    pending.discard(rid)
                    self._t_requests.labels(type=m.msg_name(msg_type)).inc()
                    self._t_latency.labels(type=m.msg_name(msg_type)).observe(
                        wall_now() - t0
                    )
            except (socket.timeout, TimeoutError, FrameError, OSError) as exc:
                last_error = exc
                self._drop_connection()
                continue
        missing = [rid for rid in rids if rid not in results]
        if missing:
            raise RemoteUnavailable(
                f"{len(missing)} of {len(rids)} pipelined requests failed "
                f"after {self.retry.max_attempts} attempts: {last_error}"
            )
        return [results[rid] for rid in rids]

    def call_json(self, msg_type: int, doc: Optional[dict] = None) -> dict:
        return m.decode_json(self.call(msg_type, m.encode_json(doc or {})))

    def ping(self) -> bool:
        return self.call(m.PING, b"ping") == b"ping"


@dataclass
class RemoteRun:
    """A run summary as reported by the server."""

    run_id: int
    job: str
    timestamp: float
    files: int
    logical_bytes: int
    transferred_bytes: int
    #: Per-run chunk count (None when talking to a pre-archive server).
    chunks: Optional[int] = None


class RemoteChunkReader:
    """``ChunkStore.read_chunk`` over the wire, with planned batch reads.

    ``plan()`` primes the reader with the fingerprint sequence a restore
    is about to follow; each cache miss then fetches the next
    ``READ_BATCH`` planned fingerprints in one ``CHUNK_READ``, so a
    sequential restore pays one RPC per batch instead of one per chunk
    (the wire analogue of the LPC's locality argument).
    """

    def __init__(
        self, net: NetClient, batch: int = READ_BATCH, name: Optional[str] = None
    ) -> None:
        self._net = net
        self._batch = batch
        #: Display name for repair attribution (scrub reports name the
        #: peer that healed each record).
        self.name = name if name is not None else f"{net.host}:{net.port}"
        self._plan: List[Fingerprint] = []
        self._plan_pos = 0
        self._cache: Dict[Fingerprint, bytes] = {}

    def plan(self, fps: Sequence[Fingerprint]) -> None:
        self._plan = list(fps)
        self._plan_pos = 0

    def _fetch(self, fps: Sequence[Fingerprint]) -> None:
        chunks, _ = m.decode_chunk_batch(self._net.call(m.CHUNK_READ, m.encode_fps(fps)))
        for fp, data in chunks:
            self._cache[fp] = data

    def read_chunk(self, fp: Fingerprint) -> bytes:
        data = self._cache.pop(fp, None)
        if data is not None:
            return data
        # Scan ahead for this fingerprint *without* committing the scan:
        # an off-plan read (scrub repair probes, a replayed fingerprint)
        # must not burn the rest of the plan, or every subsequent planned
        # read would degrade to one RPC per chunk.
        pos = self._plan_pos
        while pos < len(self._plan) and self._plan[pos] != fp:
            pos += 1
        if pos < len(self._plan):
            # The batch window is the leading adjacent run of the plan from
            # this position — the same coalescing geometry the cold-tier
            # read planner uses over byte ranges (repro.util.ranges).
            spans = [
                Span(i, 1, self._plan[i])
                for i in range(pos, min(pos + self._batch, len(self._plan)))
            ]
            window: List[Fingerprint] = []
            seen = set()
            for span in leading_run(spans, max_items=self._batch):
                if span.item not in seen:
                    window.append(span.item)
                    seen.add(span.item)
            self._plan_pos = pos + 1
            self._fetch(window)
            data = self._cache.pop(fp, None)
            if data is not None:
                return data
        # Off-plan (or server-side miss): a single direct read; the plan
        # position is untouched so planned reads keep batching.
        self._fetch([fp])
        try:
            return self._cache.pop(fp)
        except KeyError:
            raise KeyError(f"fingerprint {fp.hex()[:12]} not stored") from None


class RemoteBackupClient:
    """The in-process vault API, spoken to a ``repro serve`` daemon."""

    #: Pipelined CHUNK_APPEND frames kept in flight per window (bounds
    #: client-side buffering at APPEND_WINDOW * APPEND_BATCH_BYTES).
    APPEND_WINDOW = 4

    def __init__(
        self,
        host: str,
        port: int,
        client_name: str = "remote",
        chunker: Optional[ContentDefinedChunker] = None,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        token: Optional[str] = None,
    ) -> None:
        registry = registry if registry is not None else get_registry()
        self.net = NetClient(
            host, port, client_name=client_name, retry=retry, registry=registry,
            token=token,
        )
        self.engine = BackupEngine(client_name, chunker=chunker, registry=registry)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        self.net.close()

    def __enter__(self) -> "RemoteBackupClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backup -------------------------------------------------------------------
    def backup(
        self,
        job: str,
        dataset: Sequence[PathLike],
        timestamp: Optional[float] = None,
    ) -> RemoteRun:
        """One remote backup run: metadata backup, anchoring and
        fingerprinting locally; filtering and content backup server-side.

        Per file: the full fingerprint sequence crosses the wire as a
        batched ``FILTER_QUERY``; only chunks the server's preliminary
        filter admits are transferred (``CHUNK_APPEND``); the file index
        follows (``META_PUT``).  ``SESSION_COMMIT`` runs dedup-1 +
        dedup-2 server-side and records the run.
        """
        begun = self.net.call_json(m.SESSION_BEGIN, {"job": job})
        session = int(begun["session"])
        try:
            for metadata, chunks in self.engine.iter_dataset(
                [Path(p) for p in dataset]
            ):
                self._send_file(session, metadata, chunks)
            doc = {"session": session}
            if timestamp is not None:
                doc["timestamp"] = timestamp
            summary = self.net.call_json(m.SESSION_COMMIT, doc)
        except Exception:
            # The session (and its buffered payload bytes) would otherwise
            # sit server-side until the idle-TTL sweep finds it.
            self.abort_session(session)
            raise
        return RemoteRun(
            run_id=int(summary["run_id"]),
            job=summary["job"],
            timestamp=float(summary["timestamp"]),
            files=int(summary["files"]),
            logical_bytes=int(summary["logical_bytes"]),
            transferred_bytes=int(summary["transferred_bytes"]),
        )

    def abort_session(self, session: int) -> None:
        """Discard a server-side session (best effort; idempotent)."""
        try:
            self.net.call(m.SESSION_ABORT, m.encode_json({"session": session}))
        except ProtocolError:
            pass  # the TTL sweep will reclaim it eventually

    def _send_file(self, session: int, metadata: FileMetadata, chunks) -> None:
        session_prefix = m._U32.pack(session)
        chunks = list(chunks)
        sized = [(c.fingerprint, c.size) for c in chunks]
        # All filter batches for the file go down the pipe together; the
        # multiplexed server answers them as they decode.
        batches = [
            sized[start : start + QUERY_BATCH]
            for start in range(0, len(sized), QUERY_BATCH)
        ]
        filter_results = self.net.call_many([
            (m.FILTER_QUERY, session_prefix + m.encode_sized_fps(batch))
            for batch in batches
        ])
        wanted: List[bool] = []
        for batch, result in zip(batches, filter_results):
            decisions, _ = m.decode_bitmap(result)
            if len(decisions) != len(batch):
                raise ProtocolError(
                    f"filter result covers {len(decisions)} of {len(batch)} queries"
                )
            wanted.extend(decisions)
        pending: List[Tuple[Fingerprint, bytes]] = []
        pending_bytes = 0
        window: List[Tuple[int, bytes]] = []
        for chunk, admit in zip(chunks, wanted):
            if not admit:
                continue
            pending.append((chunk.fingerprint, chunk.data))
            pending_bytes += chunk.size
            if pending_bytes >= APPEND_BATCH_BYTES:
                window.append(
                    (m.CHUNK_APPEND, session_prefix + m.encode_chunk_batch(pending))
                )
                pending, pending_bytes = [], 0
                if len(window) >= self.APPEND_WINDOW:
                    self.net.call_many(window)
                    window = []
        if pending:
            window.append(
                (m.CHUNK_APPEND, session_prefix + m.encode_chunk_batch(pending))
            )
        if window:
            self.net.call_many(window)
        meta_blob = m.encode_json({
            "path": metadata.path,
            "size": metadata.size,
            "mode": metadata.mode,
            "mtime": metadata.mtime,
        })
        self.net.call(
            m.META_PUT,
            session_prefix + m._U32.pack(len(meta_blob)) + meta_blob
            + m.encode_sized_fps(sized),
        )

    # -- restore ------------------------------------------------------------------
    def run_entries(
        self, run_id: int, job: Optional[str] = None
    ) -> List[FileIndexEntry]:
        """The run's file indices (``META_GET``).

        Run ids are per-vault; pass ``job`` when talking to a router or a
        node that may hold several vaults' ids so the lookup is pinned to
        one job's chain.
        """
        doc = {"run_id": run_id}
        if job:
            doc["job"] = job
        payload = self.net.call(m.META_GET, m.encode_json(doc))
        entries, _ = m.decode_file_entries(payload)
        return [
            FileIndexEntry(
                FileMetadata(
                    path=str(meta.get("path", "<remote>")),
                    size=int(meta.get("size", 0)),
                    mode=int(meta.get("mode", 0o644)),
                    mtime=float(meta.get("mtime", 0.0)),
                ),
                fps,
            )
            for meta, fps in entries
        ]

    def restore(
        self,
        run_id: int,
        dest: PathLike,
        strip_prefix: PathLike = "/",
        job: Optional[str] = None,
    ) -> List[Path]:
        """Restore one run into ``dest`` through batched chunk reads."""
        entries = self.run_entries(run_id, job=job)
        reader = RemoteChunkReader(self.net)
        reader.plan([fp for e in entries for fp in e.fingerprints])
        return self.engine.restore_run(entries, reader, dest, strip_prefix)

    # -- maintenance and queries --------------------------------------------------
    def runs(self, job: Optional[str] = None) -> List[RemoteRun]:
        out = self.net.call_json(m.RUNS, {"job": job})
        return [RemoteRun(**{**r, "run_id": int(r["run_id"])}) for r in out]

    def stats(self) -> dict:
        return self.net.call_json(m.STATS)

    def dedup2(self, force_siu: Optional[bool] = None) -> dict:
        return self.net.call_json(m.DEDUP2, {"force_siu": force_siu})

    def gc(self, rewrite_threshold: float = 0.5) -> dict:
        return self.net.call_json(m.GC, {"rewrite_threshold": rewrite_threshold})

    def verify(self, deep: bool = False) -> dict:
        return self.net.call_json(m.VERIFY, {"deep": deep})

    def forget(self, run_id: int, job: Optional[str] = None) -> dict:
        doc = {"run_id": run_id}
        if job:
            doc["job"] = job
        return self.net.call_json(m.FORGET, doc)

    # -- archive (DESIGN.md §15) ---------------------------------------------------
    def archive_status(self) -> dict:
        """The server's delta-chain inventory (``ARCHIVE_STATUS``)."""
        return self.net.call_json(m.ARCHIVE_STATUS, {})

    def fetch_delta(self, origin: str, job: str, base: int, run: int) -> bytes:
        """One raw chain segment (``DELTA_FETCH``); self-describing bytes."""
        return self.net.call(
            m.DELTA_FETCH,
            m.encode_json(
                {"origin": origin, "job": job, "base": base, "run": run}
            ),
        )

    def archive_merge(
        self,
        retention: Optional[str] = None,
        origin: Optional[str] = None,
        job: Optional[str] = None,
    ) -> dict:
        """Trigger retention/compaction at the archive (``ARCHIVE_MERGE``)."""
        doc: dict = {}
        if retention:
            doc["retention"] = retention
        if origin:
            doc["origin"] = origin
        if job:
            doc["job"] = job
        return self.net.call_json(m.ARCHIVE_MERGE, doc)

    def restore_as_of(
        self,
        as_of: int,
        dest: PathLike,
        strip_prefix: PathLike = "/",
        job: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> List[Path]:
        """Point-in-time restore from this server's archived chains —
        the primary vault need not exist (repro.archive.restore)."""
        from repro.archive.restore import restore_remote

        return restore_remote(
            self.net, as_of, dest, strip_prefix, job=job, origin=origin
        )
