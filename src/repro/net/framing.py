"""The frame layer: length-prefixed, versioned binary frames (DESIGN.md §9.1).

Every protocol exchange is a sequence of *frames*.  A frame is a fixed
18-byte header followed by a payload::

    offset  size  field
    0       4     magic       b"DBAR"
    4       1     version     protocol version (currently 1)
    5       1     msg_type    message type code (repro.net.messages)
    6       8     request_id  client-chosen id echoed by the response
    14      4     length      payload byte count (big-endian, <= MAX_PAYLOAD)
    18      len   payload     message-specific encoding

The header is deliberately self-describing and hostile to desync: a reader
that lands mid-stream fails on the magic immediately instead of
interpreting chunk payload as a length.  ``request_id`` is the idempotency
key — a retried request re-sends the same id, and the server answers a
request it has already executed from its response cache instead of
re-executing it (DESIGN.md §9.3).

All multi-byte integers are big-endian (network order).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

PROTOCOL_MAGIC = b"DBAR"
PROTOCOL_VERSION = 1

#: Header: magic, version, msg_type, request_id, payload length.
_HEADER = struct.Struct(">4sBBQI")
FRAME_HEADER_SIZE = _HEADER.size

#: Hard ceiling on one frame's payload.  Large transfers (container-sized
#: chunk batches) stay well under this; anything bigger is a corrupt or
#: hostile length field and must not drive an allocation.
MAX_PAYLOAD = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Base class for every wire-protocol failure."""


class FrameError(ProtocolError):
    """The byte stream does not parse as a frame."""


class BadFrame(FrameError):
    """Structurally invalid header: wrong magic, version or length."""


class TruncatedFrame(FrameError):
    """The stream ended mid-frame (connection cut or truncating fault)."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type code, request id, payload bytes."""

    msg_type: int
    request_id: int
    payload: bytes = b""

    def encode(self) -> bytes:
        if not 0 <= self.msg_type <= 0xFF:
            raise BadFrame(f"msg_type {self.msg_type} out of range")
        if not 0 <= self.request_id <= 0xFFFFFFFFFFFFFFFF:
            raise BadFrame(f"request_id {self.request_id} out of range")
        if len(self.payload) > MAX_PAYLOAD:
            raise BadFrame(
                f"payload of {len(self.payload)} bytes exceeds MAX_PAYLOAD"
            )
        return _HEADER.pack(
            PROTOCOL_MAGIC,
            PROTOCOL_VERSION,
            self.msg_type,
            self.request_id,
            len(self.payload),
        ) + self.payload

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_SIZE + len(self.payload)


def decode_header(header: bytes) -> "tuple[int, int, int]":
    """Parse one header blob; returns (msg_type, request_id, length)."""
    if len(header) != FRAME_HEADER_SIZE:
        raise TruncatedFrame(
            f"header is {len(header)} bytes, need {FRAME_HEADER_SIZE}"
        )
    magic, version, msg_type, request_id, length = _HEADER.unpack(header)
    if magic != PROTOCOL_MAGIC:
        raise BadFrame(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise BadFrame(f"unsupported protocol version {version}")
    if length > MAX_PAYLOAD:
        raise BadFrame(f"declared payload of {length} bytes exceeds MAX_PAYLOAD")
    return msg_type, request_id, length


def decode_frame(blob: bytes) -> Frame:
    """Decode one complete frame from a byte string (tests, fuzzing)."""
    msg_type, request_id, length = decode_header(blob[:FRAME_HEADER_SIZE])
    payload = blob[FRAME_HEADER_SIZE:]
    if len(payload) < length:
        raise TruncatedFrame(
            f"payload is {len(payload)} bytes, header declared {length}"
        )
    if len(payload) > length:
        raise BadFrame(
            f"{len(payload) - length} trailing bytes after declared payload"
        )
    return Frame(msg_type, request_id, payload)


def read_exactly(recv: Callable[[int], bytes], n: int) -> bytes:
    """Read exactly ``n`` bytes from a ``recv``-style callable.

    ``recv`` follows socket semantics: returns at most the requested count,
    empty bytes on a closed stream.  Raises :class:`TruncatedFrame` when
    the stream ends early.
    """
    parts = []
    remaining = n
    while remaining:
        block = recv(remaining)
        if not block:
            raise TruncatedFrame(
                f"stream closed with {remaining} of {n} bytes outstanding"
            )
        parts.append(block)
        remaining -= len(block)
    return b"".join(parts)


def read_frame(recv: Callable[[int], bytes]) -> Frame:
    """Read one frame from a ``recv``-style callable (socket.recv, file.read)."""
    header = read_exactly(recv, FRAME_HEADER_SIZE)
    msg_type, request_id, length = decode_header(header)
    payload = read_exactly(recv, length) if length else b""
    return Frame(msg_type, request_id, payload)
