"""The typed message catalogue riding on the frame layer (DESIGN.md §9.2).

Two payload encodings, chosen per message by what dominates it:

- *Control* messages (session begin/commit, dedup-2 trigger, stats, gc,
  verify...) carry UTF-8 JSON — small, self-describing, easy to extend.
- *Bulk* messages (fingerprint batches, chunk batches, file indices) carry
  a compact binary layout built from the helpers below, because a backup
  moves millions of 20-byte fingerprints and hex-in-JSON would double the
  exchange volume the protocol exists to measure.

Binary building blocks (all integers big-endian):

``fingerprint list``
    ``u32 count`` then ``count`` raw 20-byte fingerprints.
``sized fingerprint list``
    ``u32 count`` then ``count`` records of ``fp(20) + u32 chunk_size``.
``chunk batch``
    ``u32 count`` then ``count`` records of ``fp(20) + u32 len + payload``.
``file entry``
    ``u32 json_len + metadata JSON + fingerprint list`` — the metadata
    (path/size/mode/mtime) is JSON, the fingerprint sequence binary.
``decision bitmap``
    ``u32 count`` then ``ceil(count/8)`` bytes, bit ``i`` (LSB-first within
    each byte) set when chunk ``i`` passed the preliminary filter and its
    payload must be transferred.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Sequence, Tuple

from repro.core.fingerprint import FINGERPRINT_SIZE, Fingerprint
from repro.net.framing import MAX_PAYLOAD, ProtocolError

# -- message type codes ------------------------------------------------------------
# Handshake and plumbing.
HELLO = 0x01
HELLO_OK = 0x02
PING = 0x04
PONG = 0x05
ERROR = 0x7F

# Backup session flow (dedup-1 over the wire).
SESSION_BEGIN = 0x10
SESSION_OK = 0x11
FILTER_QUERY = 0x12
FILTER_RESULT = 0x13
CHUNK_APPEND = 0x14
APPEND_OK = 0x15
META_PUT = 0x16
META_OK = 0x17
SESSION_COMMIT = 0x18
RUN_OK = 0x19
SESSION_ABORT = 0x1A
ABORT_OK = 0x1B

# Maintenance and queries.
DEDUP2 = 0x20
DEDUP2_OK = 0x21
CHUNK_READ = 0x22
CHUNK_DATA = 0x23
META_GET = 0x24
META_ENTRIES = 0x25
RUNS = 0x26
RUNS_OK = 0x27
STATS = 0x28
STATS_OK = 0x29
GC = 0x2A
GC_OK = 0x2B
VERIFY = 0x2C
VERIFY_OK = 0x2D
FORGET = 0x2E
FORGET_OK = 0x2F

# Cluster fingerprint exchange (PSIL/PSIU over loopback sockets).
EXCHANGE = 0x30
EXCHANGE_OK = 0x31

# Replication (DESIGN.md §11): container shipping, replica inventory,
# rebuild pulls, and catalog mirroring.
CONTAINER_PUSH = 0x40
CONTAINER_PUSH_OK = 0x41
REPL_STATUS = 0x42
REPL_STATUS_OK = 0x43
CONTAINER_FETCH = 0x44
CONTAINER_IMAGE = 0x45
CATALOG_PUSH = 0x46
CATALOG_OK = 0x47
CATALOG_FETCH = 0x48
CATALOG_DATA = 0x49

# Front door (DESIGN.md §14): cluster membership, routing lookups, and
# the rebalancing protocol.  All JSON payloads — routing traffic is
# control-plane small; the bulk path stays on the messages above.
ROUTE_LOOKUP = 0x50
ROUTE_INFO = 0x51
ROUTE_HINT = 0x52
ROUTE_HINT_OK = 0x53
NODE_JOIN = 0x54
NODE_JOIN_OK = 0x55
NODE_LEAVE = 0x56
NODE_LEAVE_OK = 0x57
CLUSTER_STATUS = 0x58
CLUSTER_STATUS_OK = 0x59
REBALANCE_PLAN = 0x5A
REBALANCE_PLAN_OK = 0x5B
REBALANCE_ACK = 0x5C
REBALANCE_ACK_OK = 0x5D

# Archive (DESIGN.md §15): per-run delta shipping, chain fetches for
# point-in-time restore, archive inventory, and manual merge/retention.
# DELTA_PUSH carries an envelope + packed delta (the container-image
# layout); the rest are JSON control messages, except DELTA_DATA whose
# body is a raw, self-describing delta blob.
DELTA_PUSH = 0x60
DELTA_PUSH_OK = 0x61
DELTA_FETCH = 0x62
DELTA_DATA = 0x63
ARCHIVE_STATUS = 0x64
ARCHIVE_STATUS_OK = 0x65
ARCHIVE_MERGE = 0x66
ARCHIVE_MERGE_OK = 0x67

#: Request type -> its success response type (the dispatch contract).
RESPONSE_OF: Dict[int, int] = {
    HELLO: HELLO_OK,
    PING: PONG,
    SESSION_BEGIN: SESSION_OK,
    FILTER_QUERY: FILTER_RESULT,
    CHUNK_APPEND: APPEND_OK,
    META_PUT: META_OK,
    SESSION_COMMIT: RUN_OK,
    SESSION_ABORT: ABORT_OK,
    DEDUP2: DEDUP2_OK,
    CHUNK_READ: CHUNK_DATA,
    META_GET: META_ENTRIES,
    RUNS: RUNS_OK,
    STATS: STATS_OK,
    GC: GC_OK,
    VERIFY: VERIFY_OK,
    FORGET: FORGET_OK,
    EXCHANGE: EXCHANGE_OK,
    CONTAINER_PUSH: CONTAINER_PUSH_OK,
    REPL_STATUS: REPL_STATUS_OK,
    CONTAINER_FETCH: CONTAINER_IMAGE,
    CATALOG_PUSH: CATALOG_OK,
    CATALOG_FETCH: CATALOG_DATA,
    ROUTE_LOOKUP: ROUTE_INFO,
    ROUTE_HINT: ROUTE_HINT_OK,
    NODE_JOIN: NODE_JOIN_OK,
    NODE_LEAVE: NODE_LEAVE_OK,
    CLUSTER_STATUS: CLUSTER_STATUS_OK,
    REBALANCE_PLAN: REBALANCE_PLAN_OK,
    REBALANCE_ACK: REBALANCE_ACK_OK,
    DELTA_PUSH: DELTA_PUSH_OK,
    DELTA_FETCH: DELTA_DATA,
    ARCHIVE_STATUS: ARCHIVE_STATUS_OK,
    ARCHIVE_MERGE: ARCHIVE_MERGE_OK,
}

#: Message code -> stable name (telemetry labels, error text).
MSG_NAMES: Dict[int, str] = {
    HELLO: "hello",
    HELLO_OK: "hello_ok",
    PING: "ping",
    PONG: "pong",
    ERROR: "error",
    SESSION_BEGIN: "session_begin",
    SESSION_OK: "session_ok",
    FILTER_QUERY: "filter_query",
    FILTER_RESULT: "filter_result",
    CHUNK_APPEND: "chunk_append",
    APPEND_OK: "append_ok",
    META_PUT: "meta_put",
    META_OK: "meta_ok",
    SESSION_COMMIT: "session_commit",
    RUN_OK: "run_ok",
    SESSION_ABORT: "session_abort",
    ABORT_OK: "abort_ok",
    DEDUP2: "dedup2",
    DEDUP2_OK: "dedup2_ok",
    CHUNK_READ: "chunk_read",
    CHUNK_DATA: "chunk_data",
    META_GET: "meta_get",
    META_ENTRIES: "meta_entries",
    RUNS: "runs",
    RUNS_OK: "runs_ok",
    STATS: "stats",
    STATS_OK: "stats_ok",
    GC: "gc",
    GC_OK: "gc_ok",
    VERIFY: "verify",
    VERIFY_OK: "verify_ok",
    FORGET: "forget",
    FORGET_OK: "forget_ok",
    EXCHANGE: "exchange",
    EXCHANGE_OK: "exchange_ok",
    CONTAINER_PUSH: "container_push",
    CONTAINER_PUSH_OK: "container_push_ok",
    REPL_STATUS: "repl_status",
    REPL_STATUS_OK: "repl_status_ok",
    CONTAINER_FETCH: "container_fetch",
    CONTAINER_IMAGE: "container_image",
    CATALOG_PUSH: "catalog_push",
    CATALOG_OK: "catalog_ok",
    CATALOG_FETCH: "catalog_fetch",
    CATALOG_DATA: "catalog_data",
    ROUTE_LOOKUP: "route_lookup",
    ROUTE_INFO: "route_info",
    ROUTE_HINT: "route_hint",
    ROUTE_HINT_OK: "route_hint_ok",
    NODE_JOIN: "node_join",
    NODE_JOIN_OK: "node_join_ok",
    NODE_LEAVE: "node_leave",
    NODE_LEAVE_OK: "node_leave_ok",
    CLUSTER_STATUS: "cluster_status",
    CLUSTER_STATUS_OK: "cluster_status_ok",
    REBALANCE_PLAN: "rebalance_plan",
    REBALANCE_PLAN_OK: "rebalance_plan_ok",
    REBALANCE_ACK: "rebalance_ack",
    REBALANCE_ACK_OK: "rebalance_ack_ok",
    DELTA_PUSH: "delta_push",
    DELTA_PUSH_OK: "delta_push_ok",
    DELTA_FETCH: "delta_fetch",
    DELTA_DATA: "delta_data",
    ARCHIVE_STATUS: "archive_status",
    ARCHIVE_STATUS_OK: "archive_status_ok",
    ARCHIVE_MERGE: "archive_merge",
    ARCHIVE_MERGE_OK: "archive_merge_ok",
}


def msg_name(code: int) -> str:
    return MSG_NAMES.get(code, f"0x{code:02x}")


class MessageError(ProtocolError):
    """A frame payload does not decode as its message type demands."""


_U32 = struct.Struct(">I")


# -- JSON payloads ---------------------------------------------------------------
def encode_json(obj: object) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MessageError(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, (dict, list)):
        raise MessageError(f"JSON payload must be an object or array, got {type(obj).__name__}")
    return obj


# -- binary primitives -------------------------------------------------------------
def _take(payload: bytes, offset: int, n: int) -> Tuple[bytes, int]:
    end = offset + n
    if end > len(payload):
        raise MessageError(
            f"payload truncated: need {n} bytes at offset {offset}, "
            f"have {len(payload) - offset}"
        )
    return payload[offset:end], end


def _take_u32(payload: bytes, offset: int) -> Tuple[int, int]:
    blob, offset = _take(payload, offset, 4)
    return _U32.unpack(blob)[0], offset


def encode_fps(fps: Sequence[Fingerprint]) -> bytes:
    parts = [_U32.pack(len(fps))]
    for fp in fps:
        if len(fp) != FINGERPRINT_SIZE:
            raise MessageError(f"fingerprint of {len(fp)} bytes, need {FINGERPRINT_SIZE}")
        parts.append(bytes(fp))
    return b"".join(parts)


def decode_fps(payload: bytes, offset: int = 0) -> Tuple[List[Fingerprint], int]:
    count, offset = _take_u32(payload, offset)
    if count * FINGERPRINT_SIZE > len(payload) - offset:
        raise MessageError(f"fingerprint list declares {count} entries beyond payload end")
    fps: List[Fingerprint] = []
    for _ in range(count):
        fp, offset = _take(payload, offset, FINGERPRINT_SIZE)
        fps.append(fp)
    return fps, offset


def encode_sized_fps(entries: Sequence[Tuple[Fingerprint, int]]) -> bytes:
    parts = [_U32.pack(len(entries))]
    for fp, size in entries:
        if len(fp) != FINGERPRINT_SIZE:
            raise MessageError(f"fingerprint of {len(fp)} bytes, need {FINGERPRINT_SIZE}")
        parts.append(bytes(fp) + _U32.pack(size))
    return b"".join(parts)


def decode_sized_fps(payload: bytes, offset: int = 0) -> Tuple[List[Tuple[Fingerprint, int]], int]:
    count, offset = _take_u32(payload, offset)
    record = FINGERPRINT_SIZE + 4
    if count * record > len(payload) - offset:
        raise MessageError(f"sized fingerprint list declares {count} entries beyond payload end")
    entries: List[Tuple[Fingerprint, int]] = []
    for _ in range(count):
        fp, offset = _take(payload, offset, FINGERPRINT_SIZE)
        size, offset = _take_u32(payload, offset)
        entries.append((fp, size))
    return entries, offset


def encode_chunk_batch(chunks: Sequence[Tuple[Fingerprint, bytes]]) -> bytes:
    parts = [_U32.pack(len(chunks))]
    total = 4
    for fp, data in chunks:
        if len(fp) != FINGERPRINT_SIZE:
            raise MessageError(f"fingerprint of {len(fp)} bytes, need {FINGERPRINT_SIZE}")
        parts.append(bytes(fp) + _U32.pack(len(data)))
        parts.append(bytes(data))
        total += FINGERPRINT_SIZE + 4 + len(data)
        if total > MAX_PAYLOAD:
            raise MessageError("chunk batch exceeds MAX_PAYLOAD; split it")
    return b"".join(parts)


def decode_chunk_batch(payload: bytes, offset: int = 0) -> Tuple[List[Tuple[Fingerprint, bytes]], int]:
    count, offset = _take_u32(payload, offset)
    chunks: List[Tuple[Fingerprint, bytes]] = []
    for _ in range(count):
        fp, offset = _take(payload, offset, FINGERPRINT_SIZE)
        length, offset = _take_u32(payload, offset)
        data, offset = _take(payload, offset, length)
        chunks.append((fp, data))
    return chunks, offset


def encode_bitmap(decisions: Sequence[bool]) -> bytes:
    out = bytearray(_U32.pack(len(decisions)))
    out.extend(b"\x00" * ((len(decisions) + 7) // 8))
    for i, wanted in enumerate(decisions):
        if wanted:
            out[4 + i // 8] |= 1 << (i % 8)
    return bytes(out)


def decode_bitmap(payload: bytes, offset: int = 0) -> Tuple[List[bool], int]:
    count, offset = _take_u32(payload, offset)
    blob, offset = _take(payload, offset, (count + 7) // 8)
    return [bool(blob[i // 8] >> (i % 8) & 1) for i in range(count)], offset


# -- composite payloads ----------------------------------------------------------
def encode_file_entry(meta: dict, fps: Sequence[Fingerprint]) -> bytes:
    meta_blob = encode_json(meta)
    return _U32.pack(len(meta_blob)) + meta_blob + encode_fps(fps)


def decode_file_entry(payload: bytes, offset: int = 0) -> Tuple[dict, List[Fingerprint], int]:
    meta_len, offset = _take_u32(payload, offset)
    meta_blob, offset = _take(payload, offset, meta_len)
    meta = decode_json(meta_blob)
    if not isinstance(meta, dict):
        raise MessageError("file entry metadata must be a JSON object")
    fps, offset = decode_fps(payload, offset)
    return meta, fps, offset


def encode_file_entries(entries: Sequence[Tuple[dict, Sequence[Fingerprint]]]) -> bytes:
    parts = [_U32.pack(len(entries))]
    for meta, fps in entries:
        parts.append(encode_file_entry(meta, fps))
    return b"".join(parts)


def decode_file_entries(payload: bytes, offset: int = 0) -> Tuple[List[Tuple[dict, List[Fingerprint]]], int]:
    count, offset = _take_u32(payload, offset)
    out: List[Tuple[dict, List[Fingerprint]]] = []
    for _ in range(count):
        meta, fps, offset = decode_file_entry(payload, offset)
        out.append((meta, fps))
    return out, offset


# -- exchange payloads (cluster PSIL/PSIU) ---------------------------------------
_U64 = struct.Struct(">Q")


def encode_cid_records(records: Sequence[Tuple[Fingerprint, int]]) -> bytes:
    """(fingerprint, container id) result records (PSIU routing)."""
    parts = [_U32.pack(len(records))]
    for fp, cid in records:
        if len(fp) != FINGERPRINT_SIZE:
            raise MessageError(f"fingerprint of {len(fp)} bytes, need {FINGERPRINT_SIZE}")
        parts.append(bytes(fp) + _U64.pack(cid))
    return b"".join(parts)


def decode_cid_records(payload: bytes, offset: int = 0) -> Tuple[List[Tuple[Fingerprint, int]], int]:
    count, offset = _take_u32(payload, offset)
    record = FINGERPRINT_SIZE + 8
    if count * record > len(payload) - offset:
        raise MessageError(f"cid record list declares {count} entries beyond payload end")
    out: List[Tuple[Fingerprint, int]] = []
    for _ in range(count):
        fp, offset = _take(payload, offset, FINGERPRINT_SIZE)
        blob, offset = _take(payload, offset, 8)
        out.append((fp, _U64.unpack(blob)[0]))
    return out, offset


def encode_exchange(sender: int, parts: Dict[int, Sequence[Fingerprint]]) -> bytes:
    """One server's outgoing routing table: owner -> fingerprints."""
    out = [_U32.pack(sender), _U32.pack(len(parts))]
    for owner in sorted(parts):
        out.append(_U32.pack(owner))
        out.append(encode_fps(parts[owner]))
    return b"".join(out)


def decode_exchange(payload: bytes, offset: int = 0) -> Tuple[int, Dict[int, List[Fingerprint]], int]:
    sender, offset = _take_u32(payload, offset)
    n_parts, offset = _take_u32(payload, offset)
    parts: Dict[int, List[Fingerprint]] = {}
    for _ in range(n_parts):
        owner, offset = _take_u32(payload, offset)
        fps, offset = decode_fps(payload, offset)
        parts[owner] = fps
    return sender, parts, offset


# -- replication payloads (DESIGN.md §11) ----------------------------------------
def encode_container_image(doc: dict, image: bytes) -> bytes:
    """A container image with its JSON envelope (origin, container ID...).

    Used by ``CONTAINER_PUSH`` requests and ``CONTAINER_IMAGE`` responses:
    ``u32 json_len + envelope JSON + raw container image``.  The envelope
    stays JSON (small, extensible); the image rides as opaque bytes — it
    is already framed and checksummed by the durability layer, so the
    receiver re-verifies it independently of the transport.
    """
    doc_blob = encode_json(doc)
    if _U32.size + len(doc_blob) + len(image) > MAX_PAYLOAD:
        raise MessageError("container image exceeds MAX_PAYLOAD")
    return _U32.pack(len(doc_blob)) + doc_blob + image


def decode_container_image(payload: bytes, offset: int = 0) -> Tuple[dict, bytes]:
    doc_len, offset = _take_u32(payload, offset)
    doc_blob, offset = _take(payload, offset, doc_len)
    doc = decode_json(doc_blob)
    if not isinstance(doc, dict):
        raise MessageError("container envelope must be a JSON object")
    return doc, payload[offset:]
