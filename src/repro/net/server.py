"""``repro serve`` — the vault behind the wire protocol (DESIGN.md §9, §12).

Two serving cores share one request brain:

- :class:`VaultProtocolServer` (the default) is a **single-process
  asyncio event loop**.  Each connection is a lightweight *frame pump*
  coroutine; every decoded frame becomes an independent in-flight request,
  so one socket can carry many request ids concurrently (connection
  multiplexing).  The blocking vault pipeline still runs on a small
  worker-thread executor behind the one vault lock — ``repro.system`` is
  untouched — but the loop keeps accepting, parsing and answering frames
  for hundreds of other streams while it grinds.
- :class:`ThreadedVaultProtocolServer` is the previous
  thread-per-connection core, kept as the measured baseline
  (``benchmarks/bench_serve_concurrency.py``) and for the
  async-vs-threaded equivalence sweep in the tests.

Both inherit :class:`VaultServerCore`: the handler table, the session
store, the idempotency cache, graceful drain, telemetry, and the
admission-control policy (DESIGN.md §12.2):

- **max in-flight requests** — past the cap a frame is answered with an
  immediate ``ERROR {"error": "Busy"}`` shed (never executed, never
  cached); clients treat ``Busy`` as retryable with backoff.
- **max buffered session bytes** — chunk payloads parked in open
  sessions are bounded vault-wide; an append that would exceed the bound
  is shed ``Busy`` (a commit in flight will release memory).
- **per-tenant authentication + quota/QoS** — when tenants are
  configured, ``HELLO`` must present the tenant's token; sessions are
  owned by the authenticated tenant, each tenant's buffered bytes are
  capped by its quota (hard ``QuotaError``), and each tenant's in-flight
  requests by a fair share of the global cap.

**Sessions.**  A backup session (``SESSION_BEGIN`` .. ``SESSION_COMMIT``)
lives in the *server*, keyed by session id, not in the connection — a
client that lost its connection mid-backup reconnects and continues the
same session.  Abandoned sessions no longer leak: an idle-TTL sweep
expires them (``net.sessions_expired``) and ``SESSION_ABORT`` discards
one explicitly, releasing the buffered payload bytes either way.

**Idempotency.**  Every mutating request type is answered through a
response cache keyed by request id: a retried frame (duplicate on the
wire, or a client resend after a drop/timeout) returns the cached
response instead of executing twice (DESIGN.md §9.3).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.preliminary_filter import FilterDecision, PreliminaryFilter
from repro.director.metadata import FileMetadata
from repro.net import messages as m
from repro.durability.errors import MediaError
from repro.net.framing import (
    FRAME_HEADER_SIZE,
    Frame,
    FrameError,
    ProtocolError,
    decode_header,
    read_frame,
)
from repro.archive.store import ArchiveStore
from repro.replication.store import ReplicaStore
from repro.system.vault import DebarVault, VaultError
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Request types whose responses are cached by request id (the mutators).
IDEMPOTENT_CACHED = frozenset({
    m.SESSION_BEGIN,
    m.FILTER_QUERY,
    m.CHUNK_APPEND,
    m.META_PUT,
    m.SESSION_COMMIT,
    m.SESSION_ABORT,
    m.DEDUP2,
    m.GC,
    m.FORGET,
    m.CONTAINER_PUSH,
    m.CATALOG_PUSH,
    m.DELTA_PUSH,
    m.ARCHIVE_MERGE,
})

#: Response-cache capacity (entries); old responses fall off the end.
#: Sized for hundreds of concurrent streams — an entry is one response
#: frame (bitmaps, acks), not chunk payload.
RESPONSE_CACHE_SIZE = 32768

#: Admission-control defaults (overridable per daemon / ``repro serve``).
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_BUFFERED_BYTES = 256 * 1024 * 1024
DEFAULT_SESSION_TTL = 900.0


class BusyError(Exception):
    """Admission control shed this request; the client should retry."""


class QuotaError(VaultError):
    """A tenant exceeded its configured buffered-bytes quota."""


class AuthError(Exception):
    """Missing or wrong tenant credentials on a tenanted daemon."""


class TenantConfig:
    """One tenant: its shared-secret token and buffered-bytes quota."""

    def __init__(self, name: str, token: str, quota_bytes: Optional[int] = None):
        self.name = name
        self.token = token
        self.quota_bytes = quota_bytes

    @classmethod
    def parse(cls, spec: str) -> "TenantConfig":
        """``NAME=TOKEN[:QUOTA_BYTES]`` (the ``repro serve --tenant`` form)."""
        name, sep, rest = spec.partition("=")
        if not sep or not name or not rest:
            raise ValueError(f"expected NAME=TOKEN[:QUOTA_BYTES], got {spec!r}")
        token, sep, quota = rest.partition(":")
        if not token:
            raise ValueError(f"tenant {name!r} has an empty token")
        return cls(name, token, int(quota) if sep and quota else None)


class _RemoteSession:
    """Server-side state of one remote backup session."""

    def __init__(
        self,
        session_id: int,
        job: str,
        vault: DebarVault,
        tenant: Optional[str] = None,
    ) -> None:
        self.session_id = session_id
        self.job = job
        self.tenant = tenant
        self.filtering = vault.filtering_for(job)
        self.filter = PreliminaryFilter(vault.tpds.filter_capacity)
        if self.filtering:
            self.filter.preload(self.filtering)
        #: Payloads received for admitted chunks (fp -> bytes).  Keyed by
        #: fingerprint, so a replayed CHUNK_APPEND cannot duplicate data.
        self.payloads: Dict[bytes, bytes] = {}
        #: Bytes currently parked in :attr:`payloads` (admission control).
        self.buffered_bytes = 0
        #: Completed files in arrival order: (metadata, [(fp, size)...]).
        self.files: List[Tuple[FileMetadata, List[Tuple[bytes, int]]]] = []
        self.committed_run: Optional[dict] = None
        #: Idle clock for the TTL sweep (monotonic seconds).
        self.last_used = time.monotonic()

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def query(self, entries: List[Tuple[bytes, int]]) -> List[bool]:
        """Answer one batched preliminary-filter query in stream order."""
        return [self.filter.check(fp) is FilterDecision.NEW for fp, _ in entries]

    def stream_files(self):
        """The buffered backup stream, payloads attached where transferred."""
        for metadata, sized in self.files:
            yield metadata, [
                (fp, size, self.payloads.get(fp)) for fp, size in sized
            ]


class VaultServerCore:
    """Everything both serving cores share: sessions, cache, handlers,
    admission policy, drain accounting and telemetry."""

    def _init_core(
        self,
        vault: DebarVault,
        registry: Optional[MetricsRegistry],
        node_name: str,
        max_inflight: int,
        max_buffered_bytes: int,
        session_ttl: float,
        tenants: Optional[List[TenantConfig]],
    ) -> None:
        self.vault = vault
        self.vault_lock = threading.Lock()
        self.node_name = node_name
        self.max_inflight = max_inflight
        self.max_buffered_bytes = max_buffered_bytes
        self.session_ttl = session_ttl
        self.tenants: Dict[str, TenantConfig] = {
            t.name: t for t in (tenants or [])
        }
        #: Per-tenant fair share of the in-flight cap (QoS): one tenant
        #: hammering the daemon cannot starve the others.
        self.tenant_max_inflight = (
            max(1, max_inflight // max(1, len(self.tenants)))
            if self.tenants
            else max_inflight
        )
        #: Containers pushed by peer nodes (vault/replicas/<origin>/...).
        self.replica_store = ReplicaStore(
            Path(vault.root) / "replicas",
            container_bytes=vault.container_bytes,
            fs=vault.fs,
        )
        #: Outbound replicator, attached by the CLI when --replicate-to is
        #: given; None on a standalone daemon.
        self.replicator = None
        self._sessions: Dict[int, _RemoteSession] = {}
        self._next_session = 1
        #: Vault-wide buffered session payload bytes (under vault_lock).
        self._buffered_bytes = 0
        #: Per-tenant buffered session payload bytes (under vault_lock).
        self._tenant_buffered: Dict[str, int] = {}
        self._response_cache: "OrderedDict[int, Frame]" = OrderedDict()
        self._cache_lock = threading.Lock()
        #: The authenticated tenant of the thread currently dispatching
        #: (handler threads set it before calling into _HANDLERS).
        self._local = threading.local()
        # Graceful-drain state: in-flight request count + drain flag.
        self._active_cond = threading.Condition()
        self._active_requests = 0
        self._draining = False
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        #: Delta chains pushed by origin vaults (vault/archive/<origin>/...).
        #: Created unconditionally, like the replica store — a node serves
        #: what it holds; the --archive role only adds retention.
        self.archive_store = ArchiveStore(
            Path(vault.root) / "archive", registry=registry
        )
        #: Outbound delta shipper, attached by the CLI when --archive-to
        #: is given; None on a standalone daemon.
        self.archive_shipper = None
        #: Retention-evaluating director (repro.director) for the archive
        #: role, attached by the CLI when --archive --retention is given.
        self.archive_director = None
        self._t_bytes_in = registry.counter(
            "net.bytes_received", "protocol bytes received, by role"
        ).labels(role="server")
        self._t_bytes_out = registry.counter(
            "net.bytes_sent", "protocol bytes sent, by role"
        ).labels(role="server")
        self._t_requests = registry.counter(
            "net.requests", "protocol requests handled, by message type"
        )
        self._t_replays = registry.counter(
            "net.request_replays", "requests answered from the idempotency cache"
        ).labels()
        self._t_latency = registry.histogram(
            "net.rpc_latency", "server-side request handling seconds, by type"
        )
        self._t_connections = registry.counter(
            "net.connections", "connections accepted by the daemon"
        ).labels()
        self._t_sessions_expired = registry.counter(
            "net.sessions_expired",
            "abandoned sessions reclaimed by the idle-TTL sweep",
        ).labels()
        self._t_sessions_aborted = registry.counter(
            "net.sessions_aborted", "sessions discarded by SESSION_ABORT"
        ).labels()
        self._t_busy = registry.counter(
            "net.busy_rejections", "requests shed with ERROR/Busy by admission"
        ).labels()
        self._t_auth_failures = registry.counter(
            "net.auth_failures", "connections refused for bad tenant credentials"
        ).labels()
        self._t_inflight = registry.gauge(
            "net.inflight_requests", "requests currently executing"
        ).labels()
        self._t_buffered = registry.gauge(
            "net.session_buffered_bytes",
            "chunk payload bytes parked in open sessions",
        ).labels()
        self._t_replica_served = registry.counter(
            "repl.chunks_served_from_replicas",
            "chunk reads answered from the replica store (failover serving)",
        ).labels()
        self._t_pushes = registry.counter(
            "repl.containers_received", "container images accepted by push"
        )

    # -- graceful shutdown --------------------------------------------------------
    def begin_request(self) -> bool:
        """Register one in-flight request; False once draining started."""
        with self._active_cond:
            if self._draining:
                return False
            self._active_requests += 1
            self._t_inflight.set(self._active_requests)
            return True

    def end_request(self) -> None:
        with self._active_cond:
            self._active_requests -= 1
            self._t_inflight.set(self._active_requests)
            self._active_cond.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def _stop_accepting(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _finalize_shutdown(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def shutdown_gracefully(self, timeout: Optional[float] = 30.0) -> bool:
        """Refuse new work, finish in-flight requests, drain the
        replication queue, then close.  Returns True on a clean drain,
        False when the timeout forced the exit (sockets still close).

        The drain flag is raised **before** waiting (a busy persistent
        connection must not keep admitting frames while we wait for the
        in-flight count to reach zero — that drain would only ever end by
        timeout), and the replicator is drained **after** the in-flight
        wait (an in-flight commit may seal containers that still owe
        shipment).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._active_cond:
            self._draining = True
        self._stop_accepting()
        drained = True
        with self._active_cond:
            while self._active_requests > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    drained = False
                    break
                self._active_cond.wait(
                    0.1 if remaining is None else min(0.1, remaining)
                )
        if self.replicator is not None:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            drained = self.replicator.close(drain=True, timeout=remaining) and drained
        if self.archive_shipper is not None:
            # Same contract as the replicator: an in-flight commit may have
            # recorded runs that still owe their deltas to the archive.
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            drained = (
                self.archive_shipper.close(drain=True, timeout=remaining)
                and drained
            )
        self._finalize_shutdown()
        return drained

    # -- idempotency cache --------------------------------------------------------
    def cached_response(self, request_id: int) -> Optional[Frame]:
        with self._cache_lock:
            return self._response_cache.get(request_id)

    def cache_response(self, request_id: int, frame: Frame) -> None:
        with self._cache_lock:
            self._response_cache[request_id] = frame
            while len(self._response_cache) > RESPONSE_CACHE_SIZE:
                self._response_cache.popitem(last=False)

    # -- authentication -----------------------------------------------------------
    def authenticate(self, hello_doc: dict) -> Optional[str]:
        """Validate a HELLO against the tenant table.

        Returns the authenticated tenant name (None when the daemon is
        untenanted); raises :class:`AuthError` on a miss.
        """
        if not self.tenants:
            return None
        name = str(hello_doc.get("client", ""))
        tenant = self.tenants.get(name)
        if tenant is None or str(hello_doc.get("token", "")) != tenant.token:
            self._t_auth_failures.inc()
            raise AuthError(f"unknown tenant or bad token for {name!r}")
        return name

    # -- session lifecycle --------------------------------------------------------
    def _discard_session(self, session: _RemoteSession) -> int:
        """Drop one session's buffered payloads (caller holds vault_lock)."""
        freed = session.buffered_bytes
        self._buffered_bytes -= freed
        if session.tenant is not None:
            self._tenant_buffered[session.tenant] = (
                self._tenant_buffered.get(session.tenant, 0) - freed
            )
        self._t_buffered.set(self._buffered_bytes)
        self._sessions.pop(session.session_id, None)
        return freed

    def expire_idle_sessions(self, now: Optional[float] = None) -> int:
        """Reclaim sessions idle past the TTL; returns how many died.

        Called periodically by the async core's sweeper task; callable
        directly (with a forced ``now``) from tests and the threaded core.
        """
        if self.session_ttl is None or self.session_ttl <= 0:
            return 0
        now = time.monotonic() if now is None else now
        expired = 0
        with self.vault_lock:
            for session in list(self._sessions.values()):
                if now - session.last_used > self.session_ttl:
                    self._discard_session(session)
                    expired += 1
        if expired:
            self._t_sessions_expired.inc(expired)
        return expired

    def open_sessions(self) -> int:
        with self.vault_lock:
            return len(self._sessions)

    # -- dispatch -----------------------------------------------------------------
    def handle_request_frame(
        self, frame: Frame, tenant: Optional[str] = None
    ) -> Frame:
        """Execute one request frame; returns the response frame.

        ``tenant`` is the connection's authenticated tenant; it is parked
        in a thread-local so the (fixed-signature, monkeypatchable)
        handlers can read it.
        """
        handler = _HANDLERS.get(frame.msg_type)
        if handler is None:
            raise ProtocolError(f"unknown message type {m.msg_name(frame.msg_type)}")
        if frame.msg_type in IDEMPOTENT_CACHED:
            cached = self.cached_response(frame.request_id)
            if cached is not None:
                self._t_replays.inc()
                return cached
        self._local.tenant = tenant
        t0 = wall_now()
        try:
            msg_type, payload = handler(self, frame.payload)
        except BusyError as exc:
            # Admission shed: immediate, retryable, never cached.
            self._t_busy.inc()
            return Frame(m.ERROR, frame.request_id, m.encode_json({
                "error": "Busy",
                "message": str(exc),
            }))
        except (VaultError, MediaError, KeyError, ValueError, OSError) as exc:
            # Application-level failure: report it, keep the connection.
            return Frame(m.ERROR, frame.request_id, m.encode_json({
                "error": type(exc).__name__,
                "message": str(exc),
            }))
        finally:
            self._t_latency.labels(type=m.msg_name(frame.msg_type)).observe(
                wall_now() - t0
            )
        response = Frame(msg_type, frame.request_id, payload)
        if frame.msg_type in IDEMPOTENT_CACHED:
            self.cache_response(frame.request_id, response)
        return response

    # -- handlers -----------------------------------------------------------------
    def _on_hello(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        return m.HELLO_OK, m.encode_json({
            "server": "repro",
            "vault": str(self.vault.root),
            "client": doc.get("client", ""),
        })

    def _on_ping(self, payload: bytes) -> Tuple[int, bytes]:
        return m.PONG, payload

    def _on_session_begin(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        job = doc.get("job", "")
        if not job:
            raise VaultError("job name required")
        tenant = getattr(self._local, "tenant", None)
        with self.vault_lock:
            session_id = self._next_session
            self._next_session += 1
            session = _RemoteSession(session_id, job, self.vault, tenant=tenant)
            self._sessions[session_id] = session
        return m.SESSION_OK, m.encode_json({
            "session": session_id,
            "filtering_fingerprints": len(session.filtering or ()),
        })

    def _session(self, session_id: int) -> _RemoteSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise VaultError(f"no open session {session_id}")
        session.touch()
        return session

    def _on_filter_query(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        entries, _ = m.decode_sized_fps(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            decisions = session.query(entries)
        return m.FILTER_RESULT, m.encode_bitmap(decisions)

    def _on_chunk_append(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        chunks, _ = m.decode_chunk_batch(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            new_bytes = sum(
                len(data) for fp, data in chunks if fp not in session.payloads
            )
            if (
                new_bytes
                and self._buffered_bytes + new_bytes > self.max_buffered_bytes
            ):
                raise BusyError(
                    f"session buffers full ({self._buffered_bytes} of "
                    f"{self.max_buffered_bytes} bytes in use)"
                )
            if session.tenant is not None:
                quota = self.tenants[session.tenant].quota_bytes
                used = self._tenant_buffered.get(session.tenant, 0)
                if quota is not None and used + new_bytes > quota:
                    raise QuotaError(
                        f"tenant {session.tenant!r} over quota "
                        f"({used + new_bytes} > {quota} buffered bytes)"
                    )
            appended = 0
            for fp, data in chunks:
                if fp not in session.payloads:
                    appended += 1
                    session.buffered_bytes += len(data)
                session.payloads[fp] = data
            self._buffered_bytes += new_bytes
            if session.tenant is not None:
                self._tenant_buffered[session.tenant] = (
                    self._tenant_buffered.get(session.tenant, 0) + new_bytes
                )
            self._t_buffered.set(self._buffered_bytes)
        return m.APPEND_OK, m.encode_json({"appended": appended, "received": len(chunks)})

    def _on_meta_put(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        meta_len, offset = m._take_u32(payload, offset)
        meta_blob, offset = m._take(payload, offset, meta_len)
        meta = m.decode_json(meta_blob)
        sized, _ = m.decode_sized_fps(payload, offset)
        metadata = FileMetadata(
            path=str(meta.get("path", "<remote>")),
            size=int(meta.get("size", sum(s for _, s in sized))),
            mode=int(meta.get("mode", 0o644)),
            mtime=float(meta.get("mtime", 0.0)),
        )
        with self.vault_lock:
            session = self._session(session_id)
            session.files.append((metadata, sized))
            files = len(session.files)
        return m.META_OK, m.encode_json({"files": files})

    def _on_session_commit(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        session_id = int(doc.get("session", 0))
        with self.vault_lock:
            session = self._session(session_id)
            if session.committed_run is None:
                run = self.vault.backup_stream(
                    session.job,
                    session.stream_files(),
                    timestamp=doc.get("timestamp"),
                    # Replay the decisions the client acted on, even if
                    # another run of the job committed since session begin.
                    filtering=session.filtering if session.filtering is not None else [],
                )
                session.committed_run = {
                    "run_id": run.run_id,
                    "job": run.job,
                    "timestamp": run.timestamp,
                    "files": len(run.files),
                    "logical_bytes": run.logical_bytes,
                    "transferred_bytes": run.transferred_bytes,
                }
            summary = session.committed_run
            self._discard_session(session)
        return m.RUN_OK, m.encode_json(summary)

    def _on_session_abort(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        session_id = int(doc.get("session", 0))
        with self.vault_lock:
            session = self._sessions.get(session_id)
            freed = self._discard_session(session) if session is not None else 0
        if session is not None:
            self._t_sessions_aborted.inc()
        # Idempotent: aborting an already-gone session is a success.
        return m.ABORT_OK, m.encode_json({
            "session": session_id,
            "discarded": session is not None,
            "discarded_bytes": freed,
        })

    def _on_dedup2(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        force = doc.get("force_siu")
        with self.vault_lock:
            stats = self.vault.chunk_store.run_dedup2(force_siu=force)
        return m.DEDUP2_OK, m.encode_json({
            "new_chunks_stored": stats.new_chunks_stored,
            "new_bytes_stored": stats.new_bytes_stored,
            "duplicate_chunks": stats.duplicate_chunks,
            "containers_written": stats.containers_written,
            "siu_performed": stats.siu_performed,
        })

    def _on_chunk_read(self, payload: bytes) -> Tuple[int, bytes]:
        fps, _ = m.decode_fps(payload)
        chunks: List[Tuple[bytes, bytes]] = []
        with self.vault_lock:
            for fp in fps:
                try:
                    chunks.append((fp, self.vault.chunk_store.read_chunk(fp)))
                except KeyError:
                    # Not in the local store: serve it out of the replica
                    # store if some peer replicated it here (failover reads
                    # keep working after the chunk's origin node died).
                    chunks.append((fp, self.replica_store.read_chunk(fp)))
                    self._t_replica_served.inc()
        return m.CHUNK_DATA, m.encode_chunk_batch(chunks)

    def _run_payload(self, run) -> List[Tuple[dict, List[bytes]]]:
        return [
            (
                {
                    "path": e.metadata.path,
                    "size": e.metadata.size,
                    "mode": e.metadata.mode,
                    "mtime": e.metadata.mtime,
                },
                list(e.fingerprints),
            )
            for e in run.files
        ]

    def _on_meta_get(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        run_id = int(doc["run_id"])
        # Run ids are per-vault: two nodes can both hold a run 3.  A
        # cluster caller therefore qualifies the lookup with the job name,
        # and a mismatched run answers "not here" instead of handing out
        # another job's data.
        job = doc.get("job") or None
        with self.vault_lock:
            for run in self.vault.runs(job=job):
                if run.run_id == run_id:
                    return m.META_ENTRIES, m.encode_file_entries(self._run_payload(run))
        scope = f"job {job!r}" if job else "this vault"
        raise VaultError(f"no run {run_id} for {scope}")

    def _on_runs(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            runs = self.vault.runs(job=doc.get("job"))
            out = [
                {
                    "run_id": r.run_id,
                    "job": r.job,
                    "timestamp": r.timestamp,
                    "files": len(r.files),
                    "logical_bytes": r.logical_bytes,
                    "transferred_bytes": r.transferred_bytes,
                    # Chunk count, so retention policies and operators can
                    # reason about run size without opening catalogs.
                    "chunks": sum(len(e.fingerprints) for e in r.files),
                }
                for r in runs
            ]
        return m.RUNS_OK, m.encode_json(out)

    def _on_stats(self, payload: bytes) -> Tuple[int, bytes]:
        with self.vault_lock:
            stats = self.vault.stats()
        stats = {
            k: (None if v == float("inf") else v) for k, v in stats.items()
        }
        return m.STATS_OK, m.encode_json(stats)

    def _on_gc(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        threshold = float(doc.get("rewrite_threshold", 0.5))
        with self.vault_lock:
            report = self.vault.gc(rewrite_threshold=threshold)
        return m.GC_OK, m.encode_json(vars(report))

    def _on_verify(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            try:
                report = self.vault.verify(deep=bool(doc.get("deep", False)))
            except (VaultError, MediaError) as exc:
                # Corruption is a *finding*, not a transport failure: report
                # it in-band so the client can exit EXIT_CORRUPTION.  Deep
                # verify surfaces media rot as MediaError/CorruptionError,
                # which must not cross the wire as a generic ERROR frame.
                return m.VERIFY_OK, m.encode_json({"ok": False, "finding": str(exc)})
        return m.VERIFY_OK, m.encode_json({"ok": True, **report})

    def _on_forget(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        # Same per-vault-run-id guard as META_GET — forgetting is
        # destructive, so a job-qualified forget must never land on an
        # unrelated job's run that shares the id.
        with self.vault_lock:
            self.vault.forget(int(doc["run_id"]), job=doc.get("job") or None)
        return m.FORGET_OK, m.encode_json({"forgotten": int(doc["run_id"])})

    # -- replication (DESIGN.md §11) ----------------------------------------------
    def _on_container_push(self, payload: bytes) -> Tuple[int, bytes]:
        envelope, image = m.decode_container_image(payload)
        origin = str(envelope.get("origin", ""))
        container_id = int(envelope.get("container_id", -1))
        if container_id < 0:
            raise ValueError("container push lacks a container_id")
        if origin == self.node_name:
            raise ValueError(
                f"refusing a replica of this node's own container ({origin!r})"
            )
        stored = self.replica_store.put(origin, container_id, image)
        if stored:
            self._t_pushes.labels(origin=origin).inc()
        return m.CONTAINER_PUSH_OK, m.encode_json({
            "origin": origin,
            "container_id": container_id,
            "stored": stored,
        })

    def _on_catalog_push(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        catalog = doc.get("catalog")
        if not isinstance(catalog, dict):
            raise ValueError("catalog push lacks a catalog object")
        self.replica_store.put_catalog(origin, catalog)
        return m.CATALOG_OK, m.encode_json({
            "origin": origin,
            "runs": len(catalog.get("runs", [])),
        })

    def _on_repl_status(self, payload: bytes) -> Tuple[int, bytes]:
        with self.vault_lock:
            own = sorted(self.vault.repository.container_ids())
        status = {
            "node": self.node_name,
            # The node's own sealed containers: the rebalancer's inventory
            # of what this origin must keep replicated as the ring moves.
            "containers": own,
            "replicas": self.replica_store.status(),
            "outbound": (
                self.replicator.status() if self.replicator is not None else None
            ),
        }
        return m.REPL_STATUS_OK, m.encode_json(status)

    def _on_container_fetch(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        container_id = int(doc.get("container_id", -1))
        if origin == self.node_name:
            # Our own container: serve the primary copy (re-replication and
            # peer-driven repair pull from the origin like any replica).
            with self.vault_lock:
                # read_image serves either tier, so peers can rebuild from
                # a node whose containers have been migrated cold.
                image = self.vault.repository.read_image(container_id)
        else:
            image = self.replica_store.fetch_image(origin, container_id)
        return m.CONTAINER_IMAGE, m.encode_container_image(
            {"origin": origin, "container_id": container_id, "bytes": len(image)},
            image,
        )

    def _on_catalog_fetch(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        if origin == self.node_name:
            with self.vault_lock:
                catalog = self.vault._catalog
        else:
            catalog = self.replica_store.catalog(origin)
        return m.CATALOG_DATA, m.encode_json({"origin": origin, "catalog": catalog})

    # -- archive (DESIGN.md §15) ----------------------------------------------------
    def _on_delta_push(self, payload: bytes) -> Tuple[int, bytes]:
        envelope, blob = m.decode_container_image(payload)
        origin = str(envelope.get("origin", ""))
        job = str(envelope.get("job", ""))
        if origin == self.node_name:
            raise ValueError(
                f"refusing an archived delta of this node's own runs ({origin!r})"
            )
        # ingest fully CRC-verifies the blob and enforces the chain's FIFO
        # contract; a re-push of an applied run is an idempotent no-op.
        stored, tip = self.archive_store.ingest(origin, job, blob)
        expired: List[int] = []
        if stored and self.archive_director is not None:
            # Out-of-line retention, at the archive: expired points merge
            # forward before dropping, off the origin's inline path.
            expired = self.archive_director.expire_archive(
                self.archive_store, origin, job
            )
        return m.DELTA_PUSH_OK, m.encode_json({
            "origin": origin,
            "job": job,
            "run_id": int(envelope.get("run_id", 0)),
            "stored": stored,
            "tip": tip,
            "expired": expired,
        })

    def _on_delta_fetch(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        blob = self.archive_store.read_blob(
            str(doc["origin"]), str(doc["job"]),
            int(doc["base"]), int(doc["run"]),
        )
        return m.DELTA_DATA, blob

    def _on_archive_status(self, payload: bytes) -> Tuple[int, bytes]:
        retention = None
        if self.archive_director is not None and self.archive_director.retention:
            retention = self.archive_director.retention.spec()
        status = {
            "node": self.node_name,
            **self.archive_store.status(),
            "outbound": (
                self.archive_shipper.status()
                if self.archive_shipper is not None
                else None
            ),
            "retention": retention,
        }
        return m.ARCHIVE_STATUS_OK, m.encode_json(status)

    def _on_archive_merge(self, payload: bytes) -> Tuple[int, bytes]:
        from repro.archive.retention import RetentionPolicy

        doc = m.decode_json(payload)
        policy = None
        if doc.get("retention"):
            policy = RetentionPolicy.parse(str(doc["retention"]))
        elif self.archive_director is not None:
            policy = self.archive_director.retention
        if policy is None:
            raise ValueError(
                "no retention policy: pass one or serve with --retention"
            )
        origins = (
            [str(doc["origin"])] if doc.get("origin")
            else self.archive_store.origins()
        )
        expired: Dict[str, Dict[str, List[int]]] = {}
        for origin in origins:
            jobs = (
                [str(doc["job"])] if doc.get("job")
                else self.archive_store.jobs(origin)
            )
            for job in jobs:
                gone = self.archive_store.apply_retention(origin, job, policy)
                if gone:
                    expired.setdefault(origin, {})[job] = gone
        return m.ARCHIVE_MERGE_OK, m.encode_json(
            {"retention": policy.spec(), "expired": expired}
        )

    def _on_exchange(self, payload: bytes) -> Tuple[int, bytes]:
        # The daemon is single-vault; EXCHANGE belongs to the cluster
        # loopback transport (repro.net.exchange), which runs its own
        # acceptor.  Answer with an empty ack so probes don't hang.
        sender, parts, _ = m.decode_exchange(payload)
        return m.EXCHANGE_OK, m.encode_json({"sender": sender, "parts": len(parts)})


_HANDLERS: Dict[int, Callable[[VaultServerCore, bytes], Tuple[int, bytes]]] = {
    m.HELLO: VaultServerCore._on_hello,
    m.PING: VaultServerCore._on_ping,
    m.SESSION_BEGIN: VaultServerCore._on_session_begin,
    m.FILTER_QUERY: VaultServerCore._on_filter_query,
    m.CHUNK_APPEND: VaultServerCore._on_chunk_append,
    m.META_PUT: VaultServerCore._on_meta_put,
    m.SESSION_COMMIT: VaultServerCore._on_session_commit,
    m.SESSION_ABORT: VaultServerCore._on_session_abort,
    m.DEDUP2: VaultServerCore._on_dedup2,
    m.CHUNK_READ: VaultServerCore._on_chunk_read,
    m.META_GET: VaultServerCore._on_meta_get,
    m.RUNS: VaultServerCore._on_runs,
    m.STATS: VaultServerCore._on_stats,
    m.GC: VaultServerCore._on_gc,
    m.VERIFY: VaultServerCore._on_verify,
    m.FORGET: VaultServerCore._on_forget,
    m.EXCHANGE: VaultServerCore._on_exchange,
    m.CONTAINER_PUSH: VaultServerCore._on_container_push,
    m.CATALOG_PUSH: VaultServerCore._on_catalog_push,
    m.REPL_STATUS: VaultServerCore._on_repl_status,
    m.CONTAINER_FETCH: VaultServerCore._on_container_fetch,
    m.CATALOG_FETCH: VaultServerCore._on_catalog_fetch,
    m.DELTA_PUSH: VaultServerCore._on_delta_push,
    m.DELTA_FETCH: VaultServerCore._on_delta_fetch,
    m.ARCHIVE_STATUS: VaultServerCore._on_archive_status,
    m.ARCHIVE_MERGE: VaultServerCore._on_archive_merge,
}


def _error_frame(request_id: int, error: str, message: str) -> Frame:
    return Frame(m.ERROR, request_id, m.encode_json({
        "error": error,
        "message": message,
    }))


class VaultProtocolServer(VaultServerCore):
    """The async serving core: one event loop, many multiplexed streams.

    The loop thread owns frame parsing, admission, response writes and all
    in-flight bookkeeping; vault work runs on a bounded worker-thread
    executor behind :attr:`vault_lock`.  The public surface matches the
    old ``ThreadingTCPServer``: ``serve_forever()`` (blocking; run it in a
    thread), ``shutdown()``, ``server_close()``, ``server_address`` — plus
    ``shutdown_gracefully()`` for the drain path.
    """

    def __init__(
        self,
        vault: DebarVault,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        node_name: str = "node",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_buffered_bytes: int = DEFAULT_MAX_BUFFERED_BYTES,
        session_ttl: float = DEFAULT_SESSION_TTL,
        tenants: Optional[List[TenantConfig]] = None,
        executor_workers: int = 8,
    ) -> None:
        self._init_core(
            vault, registry, node_name, max_inflight, max_buffered_bytes,
            session_ttl, tenants,
        )
        # Bind synchronously so server_address is valid on return and a
        # bind failure raises OSError from the constructor (exit code 4).
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            sock.listen(256)
        except OSError:
            sock.close()
            raise
        self._listen_sock = sock
        self.server_address = sock.getsockname()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve-worker"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.base_events.Server] = None
        self._stop_requested = False
        self._stopped = threading.Event()
        self._conn_tasks: set = set()
        self._request_tasks: set = set()
        # Loop-thread-only admission counters (no lock needed).
        self._inflight_total = 0
        self._tenant_inflight: Dict[Optional[str], int] = {}

    # -- addressing ---------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------------------
    def serve_forever(self, poll_interval: Optional[float] = None) -> None:
        """Run the event loop until :meth:`shutdown` (blocking call)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._stopped.clear()
        try:
            loop.run_until_complete(self._main())
        finally:
            self._loop = None
            with contextlib.suppress(Exception):
                loop.close()
            self._stopped.set()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            self._stop_event.set()
        server = await asyncio.start_server(
            self._handle_conn, sock=self._listen_sock
        )
        self._aio_server = server
        sweeper = asyncio.ensure_future(self._session_sweeper())
        try:
            await self._stop_event.wait()
        finally:
            self._aio_server = None
            sweeper.cancel()
            server.close()
            pending = [
                t
                for t in (self._conn_tasks | self._request_tasks)
                if not t.done()
            ]
            for task in pending:
                task.cancel()
            await asyncio.gather(sweeper, *pending, return_exceptions=True)
            with contextlib.suppress(Exception):
                await server.wait_closed()
            # Abandon wedged vault work rather than hanging the exit; a
            # clean drain reaches here with nothing running.
            self._executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Stop the event loop (threadsafe); waits for serve_forever to
        return, mirroring ``socketserver.BaseServer.shutdown``."""
        self._stop_requested = True
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._request_stop)
            self._stopped.wait(timeout=10.0)

    def _request_stop(self) -> None:
        if hasattr(self, "_stop_event"):
            self._stop_event.set()

    def server_close(self) -> None:
        with contextlib.suppress(OSError):
            if self._listen_sock.fileno() != -1:
                self._listen_sock.close()

    # -- graceful-drain hooks -----------------------------------------------------
    def _stop_accepting(self) -> None:
        loop = self._loop
        if loop is None:
            return

        def _close_listener() -> None:
            if self._aio_server is not None:
                self._aio_server.close()

        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(_close_listener)

    def _finalize_shutdown(self) -> None:
        self.shutdown()
        self.server_close()

    # -- the event loop core ------------------------------------------------------
    async def _session_sweeper(self) -> None:
        if self.session_ttl is None or self.session_ttl <= 0:
            return
        interval = max(0.05, min(self.session_ttl / 4.0, 5.0))
        while True:
            await asyncio.sleep(interval)
            # The sweep takes the vault lock; keep it off the loop thread.
            await self._in_executor(self.expire_idle_sessions)

    def _in_executor(self, fn: Callable, *args) -> "asyncio.Future":
        """Run ``fn`` on the worker executor, completing an asyncio future.

        Unlike ``loop.run_in_executor`` this tolerates the loop closing
        underneath a wedged job (forced shutdown): the completion callback
        is simply dropped instead of raising in the worker thread.
        """
        loop = self._loop
        aio_future = loop.create_future()
        cf = self._executor.submit(fn, *args)

        def _complete() -> None:
            if aio_future.cancelled():
                return
            exc = cf.exception()
            if exc is not None:
                aio_future.set_exception(exc)
            else:
                aio_future.set_result(cf.result())

        def _relay(_cf) -> None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(_complete)

        cf.add_done_callback(_relay)
        return aio_future

    async def _write_frame(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, response: Frame
    ) -> bool:
        blob = response.encode()
        try:
            async with wlock:
                writer.write(blob)
                await writer.drain()
        except (ConnectionError, OSError):
            return False
        self._t_bytes_out.inc(len(blob))
        return True

    async def _read_frame(self, reader: asyncio.StreamReader) -> Optional[Frame]:
        try:
            header = await reader.readexactly(FRAME_HEADER_SIZE)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        self._t_bytes_in.inc(len(header))
        try:
            msg_type, request_id, length = decode_header(header)
        except FrameError:
            return None  # desynchronized stream: drop the connection
        payload = b""
        if length:
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return None
            self._t_bytes_in.inc(length)
        return Frame(msg_type, request_id, payload)

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._t_connections.inc()
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        wlock = asyncio.Lock()
        tenant: Optional[str] = None
        authed = not self.tenants
        pending: set = set()
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                if self._draining:
                    break  # refuse post-drain frames; the client retries elsewhere
                if frame.msg_type == m.HELLO and self.tenants:
                    try:
                        tenant = self.authenticate(m.decode_json(frame.payload))
                        authed = True
                    except (AuthError, m.MessageError) as exc:
                        await self._write_frame(
                            writer, wlock,
                            _error_frame(frame.request_id, "AuthError", str(exc)),
                        )
                        break
                elif not authed:
                    self._t_auth_failures.inc()
                    await self._write_frame(
                        writer, wlock,
                        _error_frame(
                            frame.request_id, "AuthError",
                            "authenticate first (HELLO with client + token)",
                        ),
                    )
                    break
                # Admission: global in-flight cap, then the tenant's share.
                # HELLO is exempt — shedding the handshake would refuse the
                # connection outright (clients can't tell Busy from an auth
                # failure mid-connect), and it costs one cheap echo.
                if frame.msg_type != m.HELLO and (
                    self._inflight_total >= self.max_inflight
                    or self._tenant_inflight.get(tenant, 0)
                    >= self.tenant_max_inflight
                ):
                    self._t_busy.inc()
                    await self._write_frame(
                        writer, wlock,
                        _error_frame(
                            frame.request_id, "Busy",
                            f"{self._inflight_total} requests in flight "
                            f"(cap {self.max_inflight})",
                        ),
                    )
                    continue
                if not self.begin_request():
                    break
                self._inflight_total += 1
                self._tenant_inflight[tenant] = (
                    self._tenant_inflight.get(tenant, 0) + 1
                )
                job = asyncio.ensure_future(
                    self._process(frame, tenant, writer, wlock)
                )
                pending.add(job)
                self._request_tasks.add(job)
                job.add_done_callback(pending.discard)
                job.add_done_callback(self._request_tasks.discard)
        except asyncio.CancelledError:
            pass  # forced stop: fall through to cleanup
        finally:
            if pending:
                # In-flight responses still flush after the pump stops
                # (graceful drain finishes started work).
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
            self._conn_tasks.discard(task)

    async def _process(
        self,
        frame: Frame,
        tenant: Optional[str],
        writer: asyncio.StreamWriter,
        wlock: asyncio.Lock,
    ) -> None:
        try:
            drop_connection = False
            try:
                response = await self._in_executor(
                    self.handle_request_frame, frame, tenant
                )
            except ProtocolError as exc:
                response = _error_frame(
                    frame.request_id, "ProtocolError", str(exc)
                )
                drop_connection = True
            except asyncio.CancelledError:
                return  # forced stop abandoned this request
            self._t_requests.labels(type=m.msg_name(frame.msg_type)).inc()
            await self._write_frame(writer, wlock, response)
            if drop_connection:
                with contextlib.suppress(Exception):
                    writer.close()
        finally:
            self._inflight_total -= 1
            count = self._tenant_inflight.get(tenant, 1) - 1
            if count <= 0:
                self._tenant_inflight.pop(tenant, None)
            else:
                self._tenant_inflight[tenant] = count
            self.end_request()


class ThreadedVaultProtocolServer(VaultServerCore, socketserver.ThreadingTCPServer):
    """The legacy thread-per-connection core (benchmark baseline).

    Kept so the async rewrite has a measured comparison point and an
    equivalence sweep; new deployments use :class:`VaultProtocolServer`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        vault: DebarVault,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        node_name: str = "node",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_buffered_bytes: int = DEFAULT_MAX_BUFFERED_BYTES,
        session_ttl: float = DEFAULT_SESSION_TTL,
        tenants: Optional[List[TenantConfig]] = None,
    ) -> None:
        self._init_core(
            vault, registry, node_name, max_inflight, max_buffered_bytes,
            session_ttl, tenants,
        )
        socketserver.ThreadingTCPServer.__init__(
            self, (host, port), _ThreadedConnectionHandler
        )

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _stop_accepting(self) -> None:
        self.shutdown()  # stop the accept loop; live connections continue

    def _finalize_shutdown(self) -> None:
        self.server_close()


class _ThreadedConnectionHandler(socketserver.BaseRequestHandler):
    """One connection: read frames, dispatch, write responses."""

    server: ThreadedVaultProtocolServer

    def handle(self) -> None:
        sock: socket.socket = self.request
        srv = self.server
        srv._t_connections.inc()
        tenant: Optional[str] = None
        authed = not srv.tenants

        def counted_recv(n: int) -> bytes:
            block = sock.recv(n)
            srv._t_bytes_in.inc(len(block))
            return block

        while True:
            try:
                frame = read_frame(counted_recv)
            except FrameError:
                # Closed, truncated or desynchronized stream: drop the
                # connection; the client's retry layer reconnects.
                return
            except OSError:
                return
            if frame.msg_type == m.HELLO and srv.tenants:
                try:
                    tenant = srv.authenticate(m.decode_json(frame.payload))
                    authed = True
                except (AuthError, m.MessageError) as exc:
                    self._send(sock, _error_frame(
                        frame.request_id, "AuthError", str(exc)
                    ))
                    return
            elif not authed:
                srv._t_auth_failures.inc()
                self._send(sock, _error_frame(
                    frame.request_id, "AuthError",
                    "authenticate first (HELLO with client + token)",
                ))
                return
            if not srv.begin_request():
                return  # draining: refuse post-drain work, drop the line
            try:
                response = srv.handle_request_frame(frame, tenant)
            except ProtocolError as exc:
                response = _error_frame(
                    frame.request_id, "ProtocolError", str(exc)
                )
                self._send(sock, response)
                return
            finally:
                srv.end_request()
            srv._t_requests.labels(type=m.msg_name(frame.msg_type)).inc()
            if not self._send(sock, response):
                return

    def _send(self, sock: socket.socket, response: Frame) -> bool:
        blob = response.encode()
        try:
            sock.sendall(blob)
        except OSError:
            return False
        self.server._t_bytes_out.inc(len(blob))
        return True


def serve_vault(
    vault: DebarVault,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    node_name: str = "node",
    threaded: bool = False,
    **limits,
) -> VaultServerCore:
    """Build a protocol server on ``host:port`` (port 0 = ephemeral).

    The caller runs ``serve_forever()`` (or a background thread does, in
    tests) and ``shutdown()`` + ``server_close()`` — or
    ``shutdown_gracefully()`` — when done.  ``threaded=True`` selects the
    legacy thread-per-connection core (benchmark baseline); ``limits``
    forwards admission-control knobs (``max_inflight``,
    ``max_buffered_bytes``, ``session_ttl``, ``tenants``).
    """
    cls = ThreadedVaultProtocolServer if threaded else VaultProtocolServer
    return cls(
        vault, host=host, port=port, registry=registry, node_name=node_name,
        **limits,
    )
