"""``repro serve`` — a threaded daemon hosting a DebarVault on a socket.

One :class:`VaultProtocolServer` (a stdlib ``ThreadingTCPServer``) owns a
:class:`~repro.system.vault.DebarVault` and speaks the frame protocol of
:mod:`repro.net.framing` / :mod:`repro.net.messages`.  Each connection is a
thread; a single vault lock serializes store mutations, matching the
single-server paper deployment (one File Store / Chunk Store pipeline).

**Sessions.**  A backup session (``SESSION_BEGIN`` .. ``SESSION_COMMIT``)
lives in the *server*, keyed by session id, not in the connection — a
client that lost its connection mid-backup reconnects and continues the
same session.  The session captures the job's filtering fingerprints at
begin time and answers batched ``FILTER_QUERY`` messages from its own
preliminary filter in stream order; commit replays the buffered stream
through the vault's standard dedup-1 path with the *same* filtering set,
so the admission decisions the client acted on are reproduced exactly.

**Idempotency.**  Every mutating request type is answered through a
response cache keyed by request id: a retried frame (duplicate on the
wire, or a client resend after a drop/timeout) returns the cached
response instead of executing twice.  This is what makes a retried
``CHUNK_APPEND`` unable to double-log a chunk and a retried
``SESSION_COMMIT`` unable to record a run twice (DESIGN.md §9.3).
"""

from __future__ import annotations

import socket
import socketserver
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.preliminary_filter import FilterDecision, PreliminaryFilter
from repro.director.metadata import FileMetadata
from repro.net import messages as m
from repro.durability.errors import MediaError
from repro.net.framing import Frame, FrameError, ProtocolError, read_frame
from repro.system.vault import DebarVault, VaultError
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Request types whose responses are cached by request id (the mutators).
IDEMPOTENT_CACHED = frozenset({
    m.SESSION_BEGIN,
    m.FILTER_QUERY,
    m.CHUNK_APPEND,
    m.META_PUT,
    m.SESSION_COMMIT,
    m.DEDUP2,
    m.GC,
    m.FORGET,
})

#: Response-cache capacity (entries); old responses fall off the end.
RESPONSE_CACHE_SIZE = 4096


class _RemoteSession:
    """Server-side state of one remote backup session."""

    def __init__(self, session_id: int, job: str, vault: DebarVault) -> None:
        self.session_id = session_id
        self.job = job
        self.filtering = vault.filtering_for(job)
        self.filter = PreliminaryFilter(vault.tpds.filter_capacity)
        if self.filtering:
            self.filter.preload(self.filtering)
        #: Payloads received for admitted chunks (fp -> bytes).  Keyed by
        #: fingerprint, so a replayed CHUNK_APPEND cannot duplicate data.
        self.payloads: Dict[bytes, bytes] = {}
        #: Completed files in arrival order: (metadata, [(fp, size)...]).
        self.files: List[Tuple[FileMetadata, List[Tuple[bytes, int]]]] = []
        self.committed_run: Optional[dict] = None

    def query(self, entries: List[Tuple[bytes, int]]) -> List[bool]:
        """Answer one batched preliminary-filter query in stream order."""
        return [self.filter.check(fp) is FilterDecision.NEW for fp, _ in entries]

    def stream_files(self):
        """The buffered backup stream, payloads attached where transferred."""
        for metadata, sized in self.files:
            yield metadata, [
                (fp, size, self.payloads.get(fp)) for fp, size in sized
            ]


class VaultProtocolServer(socketserver.ThreadingTCPServer):
    """The daemon: a vault behind the wire protocol on a TCP socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        vault: DebarVault,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.vault = vault
        self.vault_lock = threading.Lock()
        self._sessions: Dict[int, _RemoteSession] = {}
        self._next_session = 1
        self._response_cache: "OrderedDict[int, Frame]" = OrderedDict()
        self._cache_lock = threading.Lock()
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._t_bytes_in = registry.counter(
            "net.bytes_received", "protocol bytes received, by role"
        ).labels(role="server")
        self._t_bytes_out = registry.counter(
            "net.bytes_sent", "protocol bytes sent, by role"
        ).labels(role="server")
        self._t_requests = registry.counter(
            "net.requests", "protocol requests handled, by message type"
        )
        self._t_replays = registry.counter(
            "net.request_replays", "requests answered from the idempotency cache"
        ).labels()
        self._t_latency = registry.histogram(
            "net.rpc_latency", "server-side request handling seconds, by type"
        )
        self._t_connections = registry.counter(
            "net.connections", "connections accepted by the daemon"
        ).labels()
        super().__init__((host, port), _ConnectionHandler)

    # -- addressing ---------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- idempotency cache --------------------------------------------------------
    def cached_response(self, request_id: int) -> Optional[Frame]:
        with self._cache_lock:
            return self._response_cache.get(request_id)

    def cache_response(self, request_id: int, frame: Frame) -> None:
        with self._cache_lock:
            self._response_cache[request_id] = frame
            while len(self._response_cache) > RESPONSE_CACHE_SIZE:
                self._response_cache.popitem(last=False)

    # -- dispatch -----------------------------------------------------------------
    def handle_request_frame(self, frame: Frame) -> Frame:
        """Execute one request frame; returns the response frame."""
        handler = _HANDLERS.get(frame.msg_type)
        if handler is None:
            raise ProtocolError(f"unknown message type {m.msg_name(frame.msg_type)}")
        if frame.msg_type in IDEMPOTENT_CACHED:
            cached = self.cached_response(frame.request_id)
            if cached is not None:
                self._t_replays.inc()
                return cached
        t0 = wall_now()
        try:
            msg_type, payload = handler(self, frame.payload)
        except (VaultError, MediaError, KeyError, ValueError, OSError) as exc:
            # Application-level failure: report it, keep the connection.
            return Frame(m.ERROR, frame.request_id, m.encode_json({
                "error": type(exc).__name__,
                "message": str(exc),
            }))
        finally:
            self._t_latency.labels(type=m.msg_name(frame.msg_type)).observe(
                wall_now() - t0
            )
        response = Frame(msg_type, frame.request_id, payload)
        if frame.msg_type in IDEMPOTENT_CACHED:
            self.cache_response(frame.request_id, response)
        return response

    # -- handlers -----------------------------------------------------------------
    def _on_hello(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        return m.HELLO_OK, m.encode_json({
            "server": "repro",
            "vault": str(self.vault.root),
            "client": doc.get("client", ""),
        })

    def _on_ping(self, payload: bytes) -> Tuple[int, bytes]:
        return m.PONG, payload

    def _on_session_begin(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        job = doc.get("job", "")
        if not job:
            raise VaultError("job name required")
        with self.vault_lock:
            session_id = self._next_session
            self._next_session += 1
            session = _RemoteSession(session_id, job, self.vault)
            self._sessions[session_id] = session
        return m.SESSION_OK, m.encode_json({
            "session": session_id,
            "filtering_fingerprints": len(session.filtering or ()),
        })

    def _session(self, session_id: int) -> _RemoteSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise VaultError(f"no open session {session_id}")
        return session

    def _on_filter_query(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        entries, _ = m.decode_sized_fps(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            decisions = session.query(entries)
        return m.FILTER_RESULT, m.encode_bitmap(decisions)

    def _on_chunk_append(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        chunks, _ = m.decode_chunk_batch(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            appended = 0
            for fp, data in chunks:
                if fp not in session.payloads:
                    appended += 1
                session.payloads[fp] = data
        return m.APPEND_OK, m.encode_json({"appended": appended, "received": len(chunks)})

    def _on_meta_put(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        meta_len, offset = m._take_u32(payload, offset)
        meta_blob, offset = m._take(payload, offset, meta_len)
        meta = m.decode_json(meta_blob)
        sized, _ = m.decode_sized_fps(payload, offset)
        metadata = FileMetadata(
            path=str(meta.get("path", "<remote>")),
            size=int(meta.get("size", sum(s for _, s in sized))),
            mode=int(meta.get("mode", 0o644)),
            mtime=float(meta.get("mtime", 0.0)),
        )
        with self.vault_lock:
            session = self._session(session_id)
            session.files.append((metadata, sized))
        return m.META_OK, m.encode_json({"files": len(session.files)})

    def _on_session_commit(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        session_id = int(doc.get("session", 0))
        with self.vault_lock:
            session = self._session(session_id)
            if session.committed_run is None:
                run = self.vault.backup_stream(
                    session.job,
                    session.stream_files(),
                    timestamp=doc.get("timestamp"),
                    # Replay the decisions the client acted on, even if
                    # another run of the job committed since session begin.
                    filtering=session.filtering if session.filtering is not None else [],
                )
                session.committed_run = {
                    "run_id": run.run_id,
                    "job": run.job,
                    "timestamp": run.timestamp,
                    "files": len(run.files),
                    "logical_bytes": run.logical_bytes,
                    "transferred_bytes": run.transferred_bytes,
                }
            summary = session.committed_run
            del self._sessions[session_id]
        return m.RUN_OK, m.encode_json(summary)

    def _on_dedup2(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        force = doc.get("force_siu")
        with self.vault_lock:
            stats = self.vault.chunk_store.run_dedup2(force_siu=force)
        return m.DEDUP2_OK, m.encode_json({
            "new_chunks_stored": stats.new_chunks_stored,
            "new_bytes_stored": stats.new_bytes_stored,
            "duplicate_chunks": stats.duplicate_chunks,
            "containers_written": stats.containers_written,
            "siu_performed": stats.siu_performed,
        })

    def _on_chunk_read(self, payload: bytes) -> Tuple[int, bytes]:
        fps, _ = m.decode_fps(payload)
        with self.vault_lock:
            chunks = [(fp, self.vault.chunk_store.read_chunk(fp)) for fp in fps]
        return m.CHUNK_DATA, m.encode_chunk_batch(chunks)

    def _run_payload(self, run) -> List[Tuple[dict, List[bytes]]]:
        return [
            (
                {
                    "path": e.metadata.path,
                    "size": e.metadata.size,
                    "mode": e.metadata.mode,
                    "mtime": e.metadata.mtime,
                },
                list(e.fingerprints),
            )
            for e in run.files
        ]

    def _on_meta_get(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        run_id = int(doc["run_id"])
        with self.vault_lock:
            for run in self.vault.runs():
                if run.run_id == run_id:
                    return m.META_ENTRIES, m.encode_file_entries(self._run_payload(run))
        raise VaultError(f"no run {run_id} in this vault")

    def _on_runs(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            runs = self.vault.runs(job=doc.get("job"))
            out = [
                {
                    "run_id": r.run_id,
                    "job": r.job,
                    "timestamp": r.timestamp,
                    "files": len(r.files),
                    "logical_bytes": r.logical_bytes,
                    "transferred_bytes": r.transferred_bytes,
                }
                for r in runs
            ]
        return m.RUNS_OK, m.encode_json(out)

    def _on_stats(self, payload: bytes) -> Tuple[int, bytes]:
        with self.vault_lock:
            stats = self.vault.stats()
        stats = {
            k: (None if v == float("inf") else v) for k, v in stats.items()
        }
        return m.STATS_OK, m.encode_json(stats)

    def _on_gc(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        threshold = float(doc.get("rewrite_threshold", 0.5))
        with self.vault_lock:
            report = self.vault.gc(rewrite_threshold=threshold)
        return m.GC_OK, m.encode_json(vars(report))

    def _on_verify(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            try:
                report = self.vault.verify(deep=bool(doc.get("deep", False)))
            except VaultError as exc:
                # Corruption is a *finding*, not a transport failure: report
                # it in-band so the client can exit EXIT_CORRUPTION.
                return m.VERIFY_OK, m.encode_json({"ok": False, "finding": str(exc)})
        return m.VERIFY_OK, m.encode_json({"ok": True, **report})

    def _on_forget(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            self.vault.forget(int(doc["run_id"]))
        return m.FORGET_OK, m.encode_json({"forgotten": int(doc["run_id"])})

    def _on_exchange(self, payload: bytes) -> Tuple[int, bytes]:
        # The daemon is single-vault; EXCHANGE belongs to the cluster
        # loopback transport (repro.net.exchange), which runs its own
        # acceptor.  Answer with an empty ack so probes don't hang.
        sender, parts, _ = m.decode_exchange(payload)
        return m.EXCHANGE_OK, m.encode_json({"sender": sender, "parts": len(parts)})


_HANDLERS: Dict[int, Callable[[VaultProtocolServer, bytes], Tuple[int, bytes]]] = {
    m.HELLO: VaultProtocolServer._on_hello,
    m.PING: VaultProtocolServer._on_ping,
    m.SESSION_BEGIN: VaultProtocolServer._on_session_begin,
    m.FILTER_QUERY: VaultProtocolServer._on_filter_query,
    m.CHUNK_APPEND: VaultProtocolServer._on_chunk_append,
    m.META_PUT: VaultProtocolServer._on_meta_put,
    m.SESSION_COMMIT: VaultProtocolServer._on_session_commit,
    m.DEDUP2: VaultProtocolServer._on_dedup2,
    m.CHUNK_READ: VaultProtocolServer._on_chunk_read,
    m.META_GET: VaultProtocolServer._on_meta_get,
    m.RUNS: VaultProtocolServer._on_runs,
    m.STATS: VaultProtocolServer._on_stats,
    m.GC: VaultProtocolServer._on_gc,
    m.VERIFY: VaultProtocolServer._on_verify,
    m.FORGET: VaultProtocolServer._on_forget,
    m.EXCHANGE: VaultProtocolServer._on_exchange,
}


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One connection: read frames, dispatch, write responses."""

    server: VaultProtocolServer

    def handle(self) -> None:
        sock: socket.socket = self.request
        srv = self.server
        srv._t_connections.inc()

        def counted_recv(n: int) -> bytes:
            block = sock.recv(n)
            srv._t_bytes_in.inc(len(block))
            return block

        while True:
            try:
                frame = read_frame(counted_recv)
            except FrameError:
                # Closed, truncated or desynchronized stream: drop the
                # connection; the client's retry layer reconnects.
                return
            except OSError:
                return
            try:
                response = srv.handle_request_frame(frame)
            except ProtocolError as exc:
                response = Frame(m.ERROR, frame.request_id, m.encode_json({
                    "error": "ProtocolError",
                    "message": str(exc),
                }))
                self._send(sock, frame, response)
                return
            srv._t_requests.labels(type=m.msg_name(frame.msg_type)).inc()
            if not self._send(sock, frame, response):
                return

    def _send(self, sock: socket.socket, request: Frame, response: Frame) -> bool:
        blob = response.encode()
        try:
            sock.sendall(blob)
        except OSError:
            return False
        self.server._t_bytes_out.inc(len(blob))
        return True


def serve_vault(
    vault: DebarVault,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> VaultProtocolServer:
    """Build a protocol server on ``host:port`` (port 0 = ephemeral).

    The caller runs ``serve_forever()`` (or a background thread does, in
    tests) and ``shutdown()`` + ``server_close()`` when done.
    """
    return VaultProtocolServer(vault, host=host, port=port, registry=registry)
