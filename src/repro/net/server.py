"""``repro serve`` — a threaded daemon hosting a DebarVault on a socket.

One :class:`VaultProtocolServer` (a stdlib ``ThreadingTCPServer``) owns a
:class:`~repro.system.vault.DebarVault` and speaks the frame protocol of
:mod:`repro.net.framing` / :mod:`repro.net.messages`.  Each connection is a
thread; a single vault lock serializes store mutations, matching the
single-server paper deployment (one File Store / Chunk Store pipeline).

**Sessions.**  A backup session (``SESSION_BEGIN`` .. ``SESSION_COMMIT``)
lives in the *server*, keyed by session id, not in the connection — a
client that lost its connection mid-backup reconnects and continues the
same session.  The session captures the job's filtering fingerprints at
begin time and answers batched ``FILTER_QUERY`` messages from its own
preliminary filter in stream order; commit replays the buffered stream
through the vault's standard dedup-1 path with the *same* filtering set,
so the admission decisions the client acted on are reproduced exactly.

**Idempotency.**  Every mutating request type is answered through a
response cache keyed by request id: a retried frame (duplicate on the
wire, or a client resend after a drop/timeout) returns the cached
response instead of executing twice.  This is what makes a retried
``CHUNK_APPEND`` unable to double-log a chunk and a retried
``SESSION_COMMIT`` unable to record a run twice (DESIGN.md §9.3).
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.preliminary_filter import FilterDecision, PreliminaryFilter
from repro.director.metadata import FileMetadata
from repro.net import messages as m
from repro.durability.errors import MediaError
from repro.net.framing import Frame, FrameError, ProtocolError, read_frame
from repro.replication.store import ReplicaStore
from repro.system.vault import DebarVault, VaultError
from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Request types whose responses are cached by request id (the mutators).
IDEMPOTENT_CACHED = frozenset({
    m.SESSION_BEGIN,
    m.FILTER_QUERY,
    m.CHUNK_APPEND,
    m.META_PUT,
    m.SESSION_COMMIT,
    m.DEDUP2,
    m.GC,
    m.FORGET,
    m.CONTAINER_PUSH,
    m.CATALOG_PUSH,
})

#: Response-cache capacity (entries); old responses fall off the end.
RESPONSE_CACHE_SIZE = 4096


class _RemoteSession:
    """Server-side state of one remote backup session."""

    def __init__(self, session_id: int, job: str, vault: DebarVault) -> None:
        self.session_id = session_id
        self.job = job
        self.filtering = vault.filtering_for(job)
        self.filter = PreliminaryFilter(vault.tpds.filter_capacity)
        if self.filtering:
            self.filter.preload(self.filtering)
        #: Payloads received for admitted chunks (fp -> bytes).  Keyed by
        #: fingerprint, so a replayed CHUNK_APPEND cannot duplicate data.
        self.payloads: Dict[bytes, bytes] = {}
        #: Completed files in arrival order: (metadata, [(fp, size)...]).
        self.files: List[Tuple[FileMetadata, List[Tuple[bytes, int]]]] = []
        self.committed_run: Optional[dict] = None

    def query(self, entries: List[Tuple[bytes, int]]) -> List[bool]:
        """Answer one batched preliminary-filter query in stream order."""
        return [self.filter.check(fp) is FilterDecision.NEW for fp, _ in entries]

    def stream_files(self):
        """The buffered backup stream, payloads attached where transferred."""
        for metadata, sized in self.files:
            yield metadata, [
                (fp, size, self.payloads.get(fp)) for fp, size in sized
            ]


class VaultProtocolServer(socketserver.ThreadingTCPServer):
    """The daemon: a vault behind the wire protocol on a TCP socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        vault: DebarVault,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        node_name: str = "node",
    ) -> None:
        self.vault = vault
        self.vault_lock = threading.Lock()
        self.node_name = node_name
        #: Containers pushed by peer nodes (vault/replicas/<origin>/...).
        self.replica_store = ReplicaStore(
            Path(vault.root) / "replicas",
            container_bytes=vault.container_bytes,
            fs=vault.fs,
        )
        #: Outbound replicator, attached by the CLI when --replicate-to is
        #: given; None on a standalone daemon.
        self.replicator = None
        self._sessions: Dict[int, _RemoteSession] = {}
        self._next_session = 1
        self._response_cache: "OrderedDict[int, Frame]" = OrderedDict()
        self._cache_lock = threading.Lock()
        # Graceful-drain state: in-flight request count + drain flag.
        self._active_cond = threading.Condition()
        self._active_requests = 0
        self._draining = False
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._t_bytes_in = registry.counter(
            "net.bytes_received", "protocol bytes received, by role"
        ).labels(role="server")
        self._t_bytes_out = registry.counter(
            "net.bytes_sent", "protocol bytes sent, by role"
        ).labels(role="server")
        self._t_requests = registry.counter(
            "net.requests", "protocol requests handled, by message type"
        )
        self._t_replays = registry.counter(
            "net.request_replays", "requests answered from the idempotency cache"
        ).labels()
        self._t_latency = registry.histogram(
            "net.rpc_latency", "server-side request handling seconds, by type"
        )
        self._t_connections = registry.counter(
            "net.connections", "connections accepted by the daemon"
        ).labels()
        self._t_replica_served = registry.counter(
            "repl.chunks_served_from_replicas",
            "chunk reads answered from the replica store (failover serving)",
        ).labels()
        self._t_pushes = registry.counter(
            "repl.containers_received", "container images accepted by push"
        )
        super().__init__((host, port), _ConnectionHandler)

    # -- addressing ---------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- graceful shutdown --------------------------------------------------------
    def begin_request(self) -> bool:
        """Register one in-flight request; False once draining started."""
        with self._active_cond:
            if self._draining:
                return False
            self._active_requests += 1
            return True

    def end_request(self) -> None:
        with self._active_cond:
            self._active_requests -= 1
            self._active_cond.notify_all()

    def shutdown_gracefully(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting, drain in-flight requests and the replication
        queue, then close the listening socket.  Returns True on a clean
        drain, False when the timeout forced the exit (sockets still close).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        self.shutdown()  # stop the accept loop; live connections continue
        drained = True
        if self.replicator is not None:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            drained = self.replicator.close(drain=True, timeout=remaining)
        with self._active_cond:
            while self._active_requests > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    drained = False
                    break
                self._active_cond.wait(
                    0.1 if remaining is None else min(0.1, remaining)
                )
            # Requests arriving on persistent connections after this point
            # are refused (their connection closes; a client would retry
            # against a peer).
            self._draining = True
        self.server_close()
        return drained

    # -- idempotency cache --------------------------------------------------------
    def cached_response(self, request_id: int) -> Optional[Frame]:
        with self._cache_lock:
            return self._response_cache.get(request_id)

    def cache_response(self, request_id: int, frame: Frame) -> None:
        with self._cache_lock:
            self._response_cache[request_id] = frame
            while len(self._response_cache) > RESPONSE_CACHE_SIZE:
                self._response_cache.popitem(last=False)

    # -- dispatch -----------------------------------------------------------------
    def handle_request_frame(self, frame: Frame) -> Frame:
        """Execute one request frame; returns the response frame."""
        handler = _HANDLERS.get(frame.msg_type)
        if handler is None:
            raise ProtocolError(f"unknown message type {m.msg_name(frame.msg_type)}")
        if frame.msg_type in IDEMPOTENT_CACHED:
            cached = self.cached_response(frame.request_id)
            if cached is not None:
                self._t_replays.inc()
                return cached
        t0 = wall_now()
        try:
            msg_type, payload = handler(self, frame.payload)
        except (VaultError, MediaError, KeyError, ValueError, OSError) as exc:
            # Application-level failure: report it, keep the connection.
            return Frame(m.ERROR, frame.request_id, m.encode_json({
                "error": type(exc).__name__,
                "message": str(exc),
            }))
        finally:
            self._t_latency.labels(type=m.msg_name(frame.msg_type)).observe(
                wall_now() - t0
            )
        response = Frame(msg_type, frame.request_id, payload)
        if frame.msg_type in IDEMPOTENT_CACHED:
            self.cache_response(frame.request_id, response)
        return response

    # -- handlers -----------------------------------------------------------------
    def _on_hello(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        return m.HELLO_OK, m.encode_json({
            "server": "repro",
            "vault": str(self.vault.root),
            "client": doc.get("client", ""),
        })

    def _on_ping(self, payload: bytes) -> Tuple[int, bytes]:
        return m.PONG, payload

    def _on_session_begin(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        job = doc.get("job", "")
        if not job:
            raise VaultError("job name required")
        with self.vault_lock:
            session_id = self._next_session
            self._next_session += 1
            session = _RemoteSession(session_id, job, self.vault)
            self._sessions[session_id] = session
        return m.SESSION_OK, m.encode_json({
            "session": session_id,
            "filtering_fingerprints": len(session.filtering or ()),
        })

    def _session(self, session_id: int) -> _RemoteSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise VaultError(f"no open session {session_id}")
        return session

    def _on_filter_query(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        entries, _ = m.decode_sized_fps(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            decisions = session.query(entries)
        return m.FILTER_RESULT, m.encode_bitmap(decisions)

    def _on_chunk_append(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        chunks, _ = m.decode_chunk_batch(payload, offset)
        with self.vault_lock:
            session = self._session(session_id)
            appended = 0
            for fp, data in chunks:
                if fp not in session.payloads:
                    appended += 1
                session.payloads[fp] = data
        return m.APPEND_OK, m.encode_json({"appended": appended, "received": len(chunks)})

    def _on_meta_put(self, payload: bytes) -> Tuple[int, bytes]:
        session_id, offset = m._take_u32(payload, 0)
        meta_len, offset = m._take_u32(payload, offset)
        meta_blob, offset = m._take(payload, offset, meta_len)
        meta = m.decode_json(meta_blob)
        sized, _ = m.decode_sized_fps(payload, offset)
        metadata = FileMetadata(
            path=str(meta.get("path", "<remote>")),
            size=int(meta.get("size", sum(s for _, s in sized))),
            mode=int(meta.get("mode", 0o644)),
            mtime=float(meta.get("mtime", 0.0)),
        )
        with self.vault_lock:
            session = self._session(session_id)
            session.files.append((metadata, sized))
        return m.META_OK, m.encode_json({"files": len(session.files)})

    def _on_session_commit(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        session_id = int(doc.get("session", 0))
        with self.vault_lock:
            session = self._session(session_id)
            if session.committed_run is None:
                run = self.vault.backup_stream(
                    session.job,
                    session.stream_files(),
                    timestamp=doc.get("timestamp"),
                    # Replay the decisions the client acted on, even if
                    # another run of the job committed since session begin.
                    filtering=session.filtering if session.filtering is not None else [],
                )
                session.committed_run = {
                    "run_id": run.run_id,
                    "job": run.job,
                    "timestamp": run.timestamp,
                    "files": len(run.files),
                    "logical_bytes": run.logical_bytes,
                    "transferred_bytes": run.transferred_bytes,
                }
            summary = session.committed_run
            del self._sessions[session_id]
        return m.RUN_OK, m.encode_json(summary)

    def _on_dedup2(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        force = doc.get("force_siu")
        with self.vault_lock:
            stats = self.vault.chunk_store.run_dedup2(force_siu=force)
        return m.DEDUP2_OK, m.encode_json({
            "new_chunks_stored": stats.new_chunks_stored,
            "new_bytes_stored": stats.new_bytes_stored,
            "duplicate_chunks": stats.duplicate_chunks,
            "containers_written": stats.containers_written,
            "siu_performed": stats.siu_performed,
        })

    def _on_chunk_read(self, payload: bytes) -> Tuple[int, bytes]:
        fps, _ = m.decode_fps(payload)
        chunks: List[Tuple[bytes, bytes]] = []
        with self.vault_lock:
            for fp in fps:
                try:
                    chunks.append((fp, self.vault.chunk_store.read_chunk(fp)))
                except KeyError:
                    # Not in the local store: serve it out of the replica
                    # store if some peer replicated it here (failover reads
                    # keep working after the chunk's origin node died).
                    chunks.append((fp, self.replica_store.read_chunk(fp)))
                    self._t_replica_served.inc()
        return m.CHUNK_DATA, m.encode_chunk_batch(chunks)

    def _run_payload(self, run) -> List[Tuple[dict, List[bytes]]]:
        return [
            (
                {
                    "path": e.metadata.path,
                    "size": e.metadata.size,
                    "mode": e.metadata.mode,
                    "mtime": e.metadata.mtime,
                },
                list(e.fingerprints),
            )
            for e in run.files
        ]

    def _on_meta_get(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        run_id = int(doc["run_id"])
        with self.vault_lock:
            for run in self.vault.runs():
                if run.run_id == run_id:
                    return m.META_ENTRIES, m.encode_file_entries(self._run_payload(run))
        raise VaultError(f"no run {run_id} in this vault")

    def _on_runs(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            runs = self.vault.runs(job=doc.get("job"))
            out = [
                {
                    "run_id": r.run_id,
                    "job": r.job,
                    "timestamp": r.timestamp,
                    "files": len(r.files),
                    "logical_bytes": r.logical_bytes,
                    "transferred_bytes": r.transferred_bytes,
                }
                for r in runs
            ]
        return m.RUNS_OK, m.encode_json(out)

    def _on_stats(self, payload: bytes) -> Tuple[int, bytes]:
        with self.vault_lock:
            stats = self.vault.stats()
        stats = {
            k: (None if v == float("inf") else v) for k, v in stats.items()
        }
        return m.STATS_OK, m.encode_json(stats)

    def _on_gc(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        threshold = float(doc.get("rewrite_threshold", 0.5))
        with self.vault_lock:
            report = self.vault.gc(rewrite_threshold=threshold)
        return m.GC_OK, m.encode_json(vars(report))

    def _on_verify(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            try:
                report = self.vault.verify(deep=bool(doc.get("deep", False)))
            except VaultError as exc:
                # Corruption is a *finding*, not a transport failure: report
                # it in-band so the client can exit EXIT_CORRUPTION.
                return m.VERIFY_OK, m.encode_json({"ok": False, "finding": str(exc)})
        return m.VERIFY_OK, m.encode_json({"ok": True, **report})

    def _on_forget(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        with self.vault_lock:
            self.vault.forget(int(doc["run_id"]))
        return m.FORGET_OK, m.encode_json({"forgotten": int(doc["run_id"])})

    # -- replication (DESIGN.md §11) ----------------------------------------------
    def _on_container_push(self, payload: bytes) -> Tuple[int, bytes]:
        envelope, image = m.decode_container_image(payload)
        origin = str(envelope.get("origin", ""))
        container_id = int(envelope.get("container_id", -1))
        if container_id < 0:
            raise ValueError("container push lacks a container_id")
        if origin == self.node_name:
            raise ValueError(
                f"refusing a replica of this node's own container ({origin!r})"
            )
        stored = self.replica_store.put(origin, container_id, image)
        if stored:
            self._t_pushes.labels(origin=origin).inc()
        return m.CONTAINER_PUSH_OK, m.encode_json({
            "origin": origin,
            "container_id": container_id,
            "stored": stored,
        })

    def _on_catalog_push(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        catalog = doc.get("catalog")
        if not isinstance(catalog, dict):
            raise ValueError("catalog push lacks a catalog object")
        self.replica_store.put_catalog(origin, catalog)
        return m.CATALOG_OK, m.encode_json({
            "origin": origin,
            "runs": len(catalog.get("runs", [])),
        })

    def _on_repl_status(self, payload: bytes) -> Tuple[int, bytes]:
        status = {
            "node": self.node_name,
            "replicas": self.replica_store.status(),
            "outbound": (
                self.replicator.status() if self.replicator is not None else None
            ),
        }
        return m.REPL_STATUS_OK, m.encode_json(status)

    def _on_container_fetch(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        container_id = int(doc.get("container_id", -1))
        if origin == self.node_name:
            # Our own container: serve the primary copy (re-replication and
            # peer-driven repair pull from the origin like any replica).
            with self.vault_lock:
                image = self.vault.fs.read_file(
                    self.vault.repository.path_for(container_id)
                )
        else:
            image = self.replica_store.fetch_image(origin, container_id)
        return m.CONTAINER_IMAGE, m.encode_container_image(
            {"origin": origin, "container_id": container_id, "bytes": len(image)},
            image,
        )

    def _on_catalog_fetch(self, payload: bytes) -> Tuple[int, bytes]:
        doc = m.decode_json(payload)
        origin = str(doc.get("origin", ""))
        if origin == self.node_name:
            with self.vault_lock:
                catalog = self.vault._catalog
        else:
            catalog = self.replica_store.catalog(origin)
        return m.CATALOG_DATA, m.encode_json({"origin": origin, "catalog": catalog})

    def _on_exchange(self, payload: bytes) -> Tuple[int, bytes]:
        # The daemon is single-vault; EXCHANGE belongs to the cluster
        # loopback transport (repro.net.exchange), which runs its own
        # acceptor.  Answer with an empty ack so probes don't hang.
        sender, parts, _ = m.decode_exchange(payload)
        return m.EXCHANGE_OK, m.encode_json({"sender": sender, "parts": len(parts)})


_HANDLERS: Dict[int, Callable[[VaultProtocolServer, bytes], Tuple[int, bytes]]] = {
    m.HELLO: VaultProtocolServer._on_hello,
    m.PING: VaultProtocolServer._on_ping,
    m.SESSION_BEGIN: VaultProtocolServer._on_session_begin,
    m.FILTER_QUERY: VaultProtocolServer._on_filter_query,
    m.CHUNK_APPEND: VaultProtocolServer._on_chunk_append,
    m.META_PUT: VaultProtocolServer._on_meta_put,
    m.SESSION_COMMIT: VaultProtocolServer._on_session_commit,
    m.DEDUP2: VaultProtocolServer._on_dedup2,
    m.CHUNK_READ: VaultProtocolServer._on_chunk_read,
    m.META_GET: VaultProtocolServer._on_meta_get,
    m.RUNS: VaultProtocolServer._on_runs,
    m.STATS: VaultProtocolServer._on_stats,
    m.GC: VaultProtocolServer._on_gc,
    m.VERIFY: VaultProtocolServer._on_verify,
    m.FORGET: VaultProtocolServer._on_forget,
    m.EXCHANGE: VaultProtocolServer._on_exchange,
    m.CONTAINER_PUSH: VaultProtocolServer._on_container_push,
    m.CATALOG_PUSH: VaultProtocolServer._on_catalog_push,
    m.REPL_STATUS: VaultProtocolServer._on_repl_status,
    m.CONTAINER_FETCH: VaultProtocolServer._on_container_fetch,
    m.CATALOG_FETCH: VaultProtocolServer._on_catalog_fetch,
}


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One connection: read frames, dispatch, write responses."""

    server: VaultProtocolServer

    def handle(self) -> None:
        sock: socket.socket = self.request
        srv = self.server
        srv._t_connections.inc()

        def counted_recv(n: int) -> bytes:
            block = sock.recv(n)
            srv._t_bytes_in.inc(len(block))
            return block

        while True:
            try:
                frame = read_frame(counted_recv)
            except FrameError:
                # Closed, truncated or desynchronized stream: drop the
                # connection; the client's retry layer reconnects.
                return
            except OSError:
                return
            if not srv.begin_request():
                return  # draining: refuse post-drain work, drop the line
            try:
                response = srv.handle_request_frame(frame)
            except ProtocolError as exc:
                response = Frame(m.ERROR, frame.request_id, m.encode_json({
                    "error": "ProtocolError",
                    "message": str(exc),
                }))
                self._send(sock, frame, response)
                return
            finally:
                srv.end_request()
            srv._t_requests.labels(type=m.msg_name(frame.msg_type)).inc()
            if not self._send(sock, frame, response):
                return

    def _send(self, sock: socket.socket, request: Frame, response: Frame) -> bool:
        blob = response.encode()
        try:
            sock.sendall(blob)
        except OSError:
            return False
        self.server._t_bytes_out.inc(len(blob))
        return True


def serve_vault(
    vault: DebarVault,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[MetricsRegistry] = None,
    node_name: str = "node",
) -> VaultProtocolServer:
    """Build a protocol server on ``host:port`` (port 0 = ephemeral).

    The caller runs ``serve_forever()`` (or a background thread does, in
    tests) and ``shutdown()`` + ``server_close()`` — or
    ``shutdown_gracefully()`` — when done.
    """
    return VaultProtocolServer(
        vault, host=host, port=port, registry=registry, node_name=node_name
    )
