"""``repro.net`` — the wire protocol between backup clients and servers.

DEBAR's architecture (Section 3) is a director plus backup servers plus
client backup engines talking over a network; this package makes those node
boundaries real.  It provides, bottom up:

- :mod:`repro.net.framing` — a length-prefixed, versioned binary frame
  layer with a handshake (DESIGN.md §9.1).
- :mod:`repro.net.messages` — the typed message catalogue: batched
  preliminary-filter queries, chunk appends into the chunk log, metadata
  put/get, the dedup-2 trigger, PSIL/PSIU fingerprint exchange and
  LPC-backed chunk reads (DESIGN.md §9.2).
- :mod:`repro.net.server` — ``repro serve``: an async multiplexed event
  loop hosting a :class:`~repro.system.vault.DebarVault` behind the
  protocol, with admission control and per-tenant auth/quotas
  (DESIGN.md §12; a legacy threaded core remains as the benchmark
  baseline).
- :mod:`repro.net.client` — :class:`RemoteBackupClient` and
  :class:`RemoteChunkReader`, mirroring the in-process vault API so the
  CLI runs against ``--connect host:port`` unchanged.
- :mod:`repro.net.faults` — deterministic frame-level fault injection
  (drop / truncate / duplicate), the network face of
  :mod:`repro.audit.faults`.
- :mod:`repro.net.exchange` — a loopback all-to-all fingerprint exchange
  so :class:`~repro.system.cluster.DebarCluster` PSIL/PSIU volumes are
  measured on a real wire.

Every byte in or out is counted under the ``net.*`` telemetry names
(DESIGN.md §8): ``net.bytes_sent`` / ``net.bytes_received`` (labelled by
role), ``net.requests`` / ``net.responses`` per message type,
``net.rpc_latency`` histograms and ``net.retries``.
"""

from repro.net.client import NetClient, RemoteBackupClient, RemoteChunkReader, RetryPolicy
from repro.net.framing import (
    FRAME_HEADER_SIZE,
    MAX_PAYLOAD,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    BadFrame,
    Frame,
    FrameError,
    ProtocolError,
    TruncatedFrame,
)
from repro.net.server import (
    TenantConfig,
    ThreadedVaultProtocolServer,
    VaultProtocolServer,
    serve_vault,
)

__all__ = [
    "BadFrame",
    "Frame",
    "FrameError",
    "FRAME_HEADER_SIZE",
    "MAX_PAYLOAD",
    "NetClient",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBackupClient",
    "RemoteChunkReader",
    "RetryPolicy",
    "TenantConfig",
    "ThreadedVaultProtocolServer",
    "TruncatedFrame",
    "VaultProtocolServer",
    "serve_vault",
]
