"""The metrics registry: counters, gauges and histograms with labels.

DEBAR's argument is throughput arithmetic — filter hit rates, SIL/SIU scan
times, container packing rates, PSIL/PSIU exchange volumes — so every phase
of the pipeline reports to a :class:`MetricsRegistry` under a stable,
catalogued name (DESIGN.md §8).  The registry is process-wide by default
(:func:`get_registry`) but injectable: every instrumented component accepts
an explicit registry, and the global can be swapped with
:func:`set_registry`.

Telemetry is *disabled* by default.  The disabled registry is a
:class:`NullRegistry` whose instruments are shared no-op singletons, so an
uninstrumented run pays one no-op method call per event and allocates
nothing — and its snapshot is always empty.

Metric names are dotted (``sil.index_bytes_read``); the Prometheus exporter
(:meth:`MetricsRegistry.render_prometheus`) rewrites them to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset on the way out.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Histogram bucket bounds used when the caller does not pass any: tuned for
#: seconds-scale phase durations (microseconds through minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (one labelled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labelled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A bucketed distribution (one labelled child of a family)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs ending at +Inf."""
        out, running = [], 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((repr(bound), running))
        out.append(("+Inf", self.count))
        return out


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by their label sets."""

    __slots__ = ("name", "type", "help", "buckets", "_children")

    def __init__(self, name: str, type_: str, help_: str = "",
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.buckets = buckets if buckets is not None else DEFAULT_BUCKETS
        self._children: Dict[_LabelKey, object] = {}

    def labels(self, **labels: object):
        """The child instrument for one label set (created on first use)."""
        key = _label_key(labels)  # type: ignore[arg-type]
        child = self._children.get(key)
        if child is None:
            if self.type == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _CHILD_TYPES[self.type]()
            self._children[key] = child
        return child

    # Unlabelled convenience: family.inc() == family.labels().inc() etc.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> Iterable[Tuple[Dict[str, str], object]]:
        for key, child in sorted(self._children.items()):
            yield dict(key), child


class MetricsRegistry:
    """A live, collecting registry of metric families."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- instrument factories -----------------------------------------------------
    def _family(self, name: str, type_: str, help_: str,
                buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(name, type_, help_, buckets)
        elif family.type != type_:
            raise ValueError(
                f"metric {name!r} already registered as a {family.type}, "
                f"not a {type_}"
            )
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        return self._family(name, "histogram", help, buckets)

    # -- introspection -------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, **labels: object) -> float:
        """The current value of one counter/gauge sample (0.0 if absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family._children.get(_label_key(labels))  # type: ignore[arg-type]
        if child is None:
            return 0.0
        return child.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of one counter/gauge family across all label sets."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(child.value for _, child in family.samples())  # type: ignore[union-attr]

    def __len__(self) -> int:
        return len(self._families)

    # -- export ---------------------------------------------------------------------
    def snapshot_metrics(self) -> List[dict]:
        """JSON-able dump of every family (the ``metrics`` section of the
        snapshot document; see :mod:`repro.telemetry.export`)."""
        out = []
        for family in self.families():
            samples = []
            for labels, child in family.samples():
                if family.type == "histogram":
                    samples.append({
                        "labels": labels,
                        "count": child.count,        # type: ignore[union-attr]
                        "sum": child.sum,            # type: ignore[union-attr]
                        "buckets": dict(child.cumulative()),  # type: ignore[union-attr]
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})  # type: ignore[union-attr]
            out.append({
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "samples": samples,
            })
        return out

    def merge_snapshot_metrics(self, metrics: List[dict]) -> None:
        """Fold a previously exported ``metrics`` section back in.

        Counters and histograms accumulate; gauges take the imported value.
        Lets CLI invocations in separate processes build one cumulative
        picture (the vault persists its snapshot across runs).
        """
        for metric in metrics:
            name, type_ = metric["name"], metric["type"]
            if type_ == "counter":
                family = self.counter(name, metric.get("help", ""))
                for s in metric["samples"]:
                    family.labels(**s["labels"]).inc(s["value"])
            elif type_ == "gauge":
                family = self.gauge(name, metric.get("help", ""))
                for s in metric["samples"]:
                    family.labels(**s["labels"]).set(s["value"])
            elif type_ == "histogram":
                family = self.histogram(name, metric.get("help", ""))
                for s in metric["samples"]:
                    child = family.labels(**s["labels"])
                    child.count += s["count"]
                    child.sum += s["sum"]
            else:
                raise ValueError(f"unknown metric type {type_!r}")

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            name = prometheus_name(family.name)
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.type}")
            for labels, child in family.samples():
                if family.type == "histogram":
                    for le, count in child.cumulative():  # type: ignore[union-attr]
                        lines.append(
                            f"{name}_bucket{_prom_labels({**labels, 'le': le})} {count}"
                        )
                    lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_num(child.sum)}")   # type: ignore[union-attr]
                    lines.append(f"{name}_count{_prom_labels(labels)} {child.count}")          # type: ignore[union-attr]
                else:
                    lines.append(
                        f"{name}{_prom_labels(labels)} {_prom_num(child.value)}"  # type: ignore[union-attr]
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def prometheus_name(name: str) -> str:
    """Rewrite a dotted metric name into the Prometheus charset."""
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{prometheus_name(k)}="{str(v).replace(chr(92), chr(92)*2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prom_num(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


# ---------------------------------------------------------------- no-op mode
class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram/family."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out no-op instruments, records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "") -> _NullInstrument:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> _NullInstrument:  # type: ignore[override]
        return _NULL_INSTRUMENT


# ---------------------------------------------------------------- the global
_registry: MetricsRegistry = NullRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (a :class:`NullRegistry` until enabled)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the new one."""
    global _registry
    _registry = registry
    return registry
