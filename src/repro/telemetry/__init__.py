"""``repro.telemetry``: metrics registry + pipeline tracing (DESIGN.md §8).

The observability layer every perf PR measures itself against: a
process-wide but injectable :class:`MetricsRegistry` (counters, gauges,
histograms with labels), :func:`trace_span` pipeline tracing over wall and
simulated time, a JSON snapshot exporter with a validated schema, and a
Prometheus text exporter.

Disabled by default at zero cost — the global registry and tracer are
no-op singletons until :func:`enable` swaps live ones in::

    from repro import telemetry

    registry, tracer = telemetry.enable()
    ... run a backup ...
    print(registry.render_prometheus())
    print(tracer.render())
    telemetry.disable()

Components bind their instruments at construction time, so enable
telemetry *before* building the vault/system/cluster being observed (the
CLI's ``--telemetry`` flag and the benchmark harness both do).
"""

from __future__ import annotations

from typing import Tuple

from repro.telemetry.clock import monotonic, reset_time_source, set_time_source, wall_now
from repro.telemetry.export import (
    SNAPSHOT_VERSION,
    build_snapshot,
    load_snapshot,
    merge_snapshot_file,
    save_snapshot,
)
from repro.telemetry.registry import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.tracing import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
)


def enable() -> Tuple[MetricsRegistry, Tracer]:
    """Install a live registry and tracer as the process-wide defaults.

    Idempotent: already-enabled telemetry keeps its collected state.
    """
    registry = get_registry()
    if not registry.enabled:
        registry = set_registry(MetricsRegistry())
    tracer = get_tracer()
    if not tracer.enabled:
        tracer = set_tracer(Tracer())
    return registry, tracer


def disable() -> None:
    """Return to the zero-cost no-op registry and tracer."""
    set_registry(NullRegistry())
    set_tracer(NullTracer())


def enabled() -> bool:
    """Is a live registry currently installed?"""
    return get_registry().enabled


__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "Span",
    "SNAPSHOT_VERSION",
    "get_registry",
    "set_registry",
    "get_tracer",
    "set_tracer",
    "trace_span",
    "enable",
    "disable",
    "enabled",
    "build_snapshot",
    "save_snapshot",
    "load_snapshot",
    "merge_snapshot_file",
    "wall_now",
    "monotonic",
    "set_time_source",
    "reset_time_source",
]
