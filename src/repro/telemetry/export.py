"""Snapshot assembly and persistence.

The *snapshot document* is the one JSON artifact every surface shares: the
CLI prints it (``repro stats --telemetry``), the vault persists it across
process restarts (``<vault>/telemetry.json``), the CI smoke job validates
and uploads it, and the benchmark harness embeds it in bench results.  Its
shape is validated by :mod:`repro.telemetry.schema` and documented in
DESIGN.md §8.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.telemetry.clock import wall_now
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.tracing import Tracer, get_tracer

#: Snapshot document version (bumped on incompatible shape changes).
SNAPSHOT_VERSION = 1

PathLike = Union[str, Path]


def build_snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """The full snapshot document for a registry (+ optional trace forest)."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    return {
        "version": SNAPSHOT_VERSION,
        "enabled": registry.enabled,
        "generated_at": wall_now(),
        "metrics": registry.snapshot_metrics(),
        "traces": tracer.to_dict_list() if tracer.enabled else [],
    }


def save_snapshot(doc: dict, path: PathLike) -> Path:
    """Write a snapshot document to ``path`` (atomic temp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=1, default=float))
    tmp.replace(path)
    return path


def load_snapshot(path: PathLike) -> Optional[dict]:
    """Read a snapshot document back; ``None`` if the file does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def merge_snapshot_file(path: PathLike, registry: MetricsRegistry) -> bool:
    """Fold a persisted snapshot's metrics into ``registry`` (if present).

    Returns True when a snapshot was found and merged.  Counters and
    histograms accumulate across processes; gauges take the persisted value
    until live code overwrites them.
    """
    doc = load_snapshot(path)
    if doc is None:
        return False
    registry.merge_snapshot_metrics(doc.get("metrics", []))
    return True
